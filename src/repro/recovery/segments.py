"""The on-disk checkpoint format: manifest plus fingerprinted segments.

A checkpoint is a directory:

    MANIFEST.json        format name/version, job identity, segment index
    <name>.seg           one pickle blob per segment

Every segment's bytes are content-fingerprinted
(:func:`repro.common.hashing.fingerprint_bytes`) at write time; the digest
lives in the manifest, and every read re-hashes the bytes before
unpickling.  A mismatch raises :class:`~repro.common.errors.CorruptionError`
— a truncated or bit-flipped checkpoint can never be silently applied.
Structural problems (missing files, unknown format, version skew) raise
:class:`~repro.common.errors.CheckpointError` instead.

Alias-sensitive state must live inside one segment: pickle preserves
object identity only within a single blob, and the engine's state graph
(tree memo entries aliasing distributed-cache copies, map-memo partitions
aliasing tree leaves) depends on that identity.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any

from repro.common.errors import CheckpointError, CorruptionError
from repro.common.hashing import fingerprint_bytes

FORMAT_NAME = "slider-checkpoint"
FORMAT_VERSION = 1
MANIFEST_FILE = "MANIFEST.json"
#: Pinned so checkpoints written by one interpreter restore on another.
PICKLE_PROTOCOL = 4


def write_segments(
    path: str | Path, segments: dict[str, Any], meta: dict[str, Any]
) -> Path:
    """Serialize ``segments`` under ``path`` and write the manifest.

    ``meta`` is embedded verbatim in the manifest (job identity, run
    index, ...).  Returns the checkpoint directory path.
    """
    root = Path(path)
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CheckpointError(
            f"cannot create checkpoint directory {root}: {exc}"
        ) from exc
    index: dict[str, Any] = {}
    for name, payload in segments.items():
        try:
            blob = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"segment {name!r} is not picklable: {exc!r} — checkpoints "
                "capture engine state only; jobs (which carry user "
                "functions) are re-supplied at restore time"
            ) from exc
        filename = f"{name}.seg"
        (root / filename).write_bytes(blob)
        index[name] = {
            "file": filename,
            "digest": fingerprint_bytes(blob),
            "bytes": len(blob),
        }
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": meta,
        "segments": index,
    }
    (root / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return root


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load and structurally validate a checkpoint manifest."""
    root = Path(path)
    manifest_path = root / MANIFEST_FILE
    if not manifest_path.exists():
        raise CheckpointError(
            f"no checkpoint at {root}: {MANIFEST_FILE} is missing "
            "(was the directory written by Slider.checkpoint?)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {manifest_path}: {exc}"
        ) from exc
    if manifest.get("format") != FORMAT_NAME:
        raise CheckpointError(
            f"{manifest_path} is not a {FORMAT_NAME} "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint version {manifest.get('version')!r} is not "
            f"supported (this build reads version {FORMAT_VERSION})"
        )
    if not isinstance(manifest.get("segments"), dict):
        raise CheckpointError(f"{manifest_path} has no segment index")
    return manifest


def read_segment(
    path: str | Path, manifest: dict[str, Any], name: str
) -> Any:
    """Verify one segment's fingerprint and unpickle it."""
    root = Path(path)
    entry = manifest["segments"].get(name)
    if entry is None:
        raise CheckpointError(
            f"checkpoint {root} has no segment {name!r} "
            f"(has: {sorted(manifest['segments'])})"
        )
    segment_path = root / entry["file"]
    if not segment_path.exists():
        raise CheckpointError(
            f"checkpoint segment file {segment_path} is missing"
        )
    blob = segment_path.read_bytes()
    digest = fingerprint_bytes(blob)
    if digest != entry["digest"]:
        raise CorruptionError(
            f"checkpoint segment {name!r} failed fingerprint verification "
            f"(expected {entry['digest']}, got {digest}); the file was "
            "modified or truncated after the checkpoint was written — "
            "refusing to restore from corrupt state"
        )
    try:
        return pickle.loads(blob)
    except Exception as exc:  # digest matched, so this is a format bug
        raise CheckpointError(
            f"checkpoint segment {name!r} failed to unpickle: {exc!r}"
        ) from exc

"""CLI entry point: ``python -m repro.recovery``.

Runs the kill-at-every-slide-boundary crash-restart sweep across the
tree variants, optionally writing the JSON report and retaining one
sample checkpoint directory — both published by CI as artifacts.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.recovery.sweep import SCENARIO_VARIANTS, run_sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.recovery",
        description="Kill/restore-at-every-boundary equivalence sweep.",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--keep-checkpoint",
        type=Path,
        default=None,
        help="retain one sample checkpoint directory here",
    )
    parser.add_argument(
        "--variant",
        action="append",
        choices=sorted({v for v, _ in SCENARIO_VARIANTS}),
        help="restrict the sweep to this variant (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    report = run_sweep(
        variants=args.variant, keep_checkpoint=args.keep_checkpoint
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {args.out}")
    if args.keep_checkpoint is not None:
        print(f"sample checkpoint retained at {args.keep_checkpoint}")

    for result in report["variants"]:
        status = "ok" if result["equivalent"] else "MISMATCH"
        print(
            f"{result['variant']:<11} ({result['mode']}): "
            f"{len(result['kill_points'])} kill points over "
            f"{result['runs']} runs — {status}"
        )
        for problem in result["mismatches"]:
            print(f"  MISMATCH {problem}")
    ok = report["equivalent"]
    print(
        f"{len(report['variants'])} variants: "
        + ("bit-identical under kill/restore" if ok else "DIVERGED")
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())

"""Corruption injection and the eager repair sweep.

The chaos layer's :class:`~repro.cluster.chaos.CorruptionEvent` flips
memoized entries; this module enumerates the flippable state, performs
the flips, and repairs them so that *wrong answers are impossible* —
corruption only costs work, charged inside a dedicated repair span.

Injection replaces the victim storage slot with a corrupted **copy**
(same recorded uid, mutated entries) rather than mutating the stored
object: memoized partitions are aliased across layers (a randomized
tree's memo entries are the distributed cache's memory copies; position
caches can hold pass-through references to map outputs), and corrupting
the shared object would poison state the repair does not own.  The copy
models bit rot of one stored replica — exactly what fingerprints detect.

Repair strategy per fault surface:

* folding/rotating position caches — recompute the node from the *same
  children in the same order* (bottom-up by level), so the repaired
  floats are bit-identical to the originals;
* rotating buckets — recombine the retained leaf chunk, then fix any
  cache path above it (same bottom-up sweep);
* strawman positions — drop the entry; the next run's positional walk
  recomputes it (the strawman end of the degradation ladder);
* randomized-tree memo entries — taint the uid; the next lookup
  verifies the fingerprint lazily, drops the bad local copy, and falls
  back to the (intact) backing replica or recomputes the group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import CorruptionError
from repro.core.folding import FoldingTree
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.telemetry import SpanKind

if TYPE_CHECKING:  # pragma: no cover - type-only facade references
    from repro.cluster.chaos import ChaosSchedule
    from repro.core.base import ContractionTree
    from repro.slider.system import Slider

#: Sentinel key spliced into a corrupted copy's entries.
_ROT_KEY = "\x00bitrot"

#: A corruption victim: (surface, tree index, position/uid).
Victim = tuple[str, int, Any]


def corruption_candidates(engine: "Slider") -> list[Victim]:
    """Deterministically ordered list of flippable storage slots.

    Coalescing roots and standalone fast-roots are excluded: their
    incremental history cannot be recomputed bit-identically from
    retained state, so they are not legal fault surfaces for an
    outputs-preserving repair.  Empty partitions are excluded because
    they share one global singleton.
    """
    candidates: list[Victim] = []
    for index, tree in enumerate(engine.trees):
        if isinstance(tree, (FoldingTree, RotatingTree)):
            for position in sorted(tree._cache):
                if tree._cache[position]:
                    candidates.append(("cache", index, position))
        if isinstance(tree, RotatingTree):
            for slot, bucket in enumerate(tree._buckets):
                if bucket:
                    candidates.append(("bucket", index, slot))
        if isinstance(tree, StrawmanTree):
            for position in sorted(tree._cache):
                if tree._cache[position][2]:
                    candidates.append(("straw", index, position))
        if isinstance(tree, RandomizedFoldingTree):
            for uid in sorted(tree.memo.entries):
                if tree.memo.entries[uid]:
                    candidates.append(("memo", index, uid))
    return candidates


def _corrupt_copy(value: Partition, salt: int) -> Partition:
    """A partition whose entries diverged from its recorded fingerprint."""
    entries = dict(value.entries)
    entries[_ROT_KEY] = salt
    return Partition(entries, uid=value.uid)


def _inject(tree: "ContractionTree", victim: Victim, salt: int) -> None:
    kind, _, key = victim
    if kind == "cache":
        tree._cache[key] = _corrupt_copy(tree._cache[key], salt)
    elif kind == "bucket":
        tree._buckets[key] = _corrupt_copy(tree._buckets[key], salt)
    elif kind == "straw":
        left_uid, right_uid, value = tree._cache[key]
        tree._cache[key] = (left_uid, right_uid, _corrupt_copy(value, salt))
    elif kind == "memo":
        tree.memo.entries[key] = _corrupt_copy(tree.memo.entries[key], salt)
        tree.memo.taint({key})
    else:  # pragma: no cover - enumerated above
        raise ValueError(f"unknown corruption surface {kind!r}")


def inject_and_repair(
    engine: "Slider", schedule: "ChaosSchedule"
) -> dict[str, float]:
    """Flip the schedule's victims, then repair eagerly.

    Runs inside the window-update span (before the run's plan opens), so
    every recompute lands in the run's phase delta: corruption costs
    work, never correctness.  Returns the repair statistics merged into
    ``engine.last_recovery`` by the lifecycle layer.
    """
    candidates = corruption_candidates(engine)
    victims: list[Victim] = []
    seen: set[Victim] = set()
    for event in schedule.corruptions:
        for victim in event.choose(candidates, schedule.seed):
            if victim not in seen:
                seen.add(victim)
                victims.append(victim)
    if not victims:
        return {}

    work_before = engine.meter.total()
    with engine.telemetry.span(
        "repair", SpanKind.PHASE, reason="corruption", victims=len(victims)
    ):
        for victim in victims:
            _inject(engine.trees[victim[1]], victim, schedule.seed)
            engine.telemetry.count("recovery.corruptions_injected")
            engine.telemetry.instant(
                "recovery.corruption",
                surface=victim[0],
                tree=victim[1],
            )
        repaired = _repair(engine, victims)
    return {
        "corruptions_injected": float(len(victims)),
        "corruptions_repaired": float(repaired),
        "corruption_repair_work": engine.meter.total() - work_before,
    }


def _repair(engine: "Slider", victims: list[Victim]) -> int:
    """Recompute/drop every flipped slot; bit-identical by construction."""
    repaired = 0
    # Buckets first: they are the level-0 inputs of the cache sweep.
    for kind, index, slot in victims:
        if kind != "bucket":
            continue
        tree = engine.trees[index]
        if tree._buckets[slot].verify_fingerprint():
            continue
        tree._buckets[slot] = tree._combine(
            tree._bucket_leaves[slot], node=f"repair:bucket.{slot}"
        )
        engine.telemetry.count("recovery.corruptions_repaired")
        repaired += 1
    # Position caches bottom-up: children are already clean (or repaired).
    cache_victims = sorted(
        (index, key) for kind, index, key in victims if kind == "cache"
    )
    for index, (level, node_index) in cache_victims:
        tree = engine.trees[index]
        if tree._cache[(level, node_index)].verify_fingerprint():
            continue
        tree._cache[(level, node_index)] = tree._combine(
            [
                tree._node_value(level - 1, node_index * 2),
                tree._node_value(level - 1, node_index * 2 + 1),
            ],
            node=f"repair:L{level}.{node_index}",
        )
        engine.telemetry.count("recovery.corruptions_repaired")
        repaired += 1
    # Strawman entries: drop; the next positional walk recomputes them.
    for kind, index, position in victims:
        if kind != "straw":
            continue
        tree = engine.trees[index]
        if not tree._cache[position][2].verify_fingerprint():
            del tree._cache[position]
            engine.telemetry.count("recovery.corruptions_repaired")
            repaired += 1
    # Memo entries stay tainted: the next lookup verifies lazily, drops
    # the bad copy, and heals from the backing replica or a recompute.
    return repaired


def verify_restored(engine: "Slider") -> int:
    """Eager fingerprint sweep over all restored partitions.

    Checkpoint segments are digest-verified byte-for-byte before this
    runs, so a failure here means in-memory corruption slipped into the
    checkpointed object graph itself; refusing loudly beats recomputing
    silently in that case.  Returns the number of partitions checked.
    """
    checked = 0

    def check(partition: Partition, where: str) -> None:
        nonlocal checked
        checked += 1
        if not partition.verify_fingerprint():
            raise CorruptionError(
                f"restored state failed fingerprint verification at "
                f"{where}: entries diverged from recorded uid "
                f"{partition.uid:#x} — the checkpoint holds corrupt state"
            )

    for uid in sorted(engine.map_memo):
        for reducer, partition in enumerate(engine.map_memo[uid]):
            check(partition, f"map_memo[{uid:#x}][{reducer}]")
    for index, tree in enumerate(engine.trees):
        for uid in sorted(tree.memo.entries):
            check(tree.memo.entries[uid], f"tree[{index}].memo[{uid:#x}]")
        cache = getattr(tree, "_cache", None)
        if isinstance(cache, dict):
            for position in sorted(cache):
                value = cache[position]
                if isinstance(value, tuple):  # strawman (l, r, value) triple
                    value = value[2]
                check(value, f"tree[{index}].cache[{position}]")
        for name in ("_buckets", "_leaves", "_slots"):
            values = getattr(tree, name, None)
            if isinstance(values, list):
                for slot, value in enumerate(values):
                    if isinstance(value, Partition):
                        check(value, f"tree[{index}].{name}[{slot}]")
        for name in ("_root", "_reduce_input", "_intermediate", "_pending_delta"):
            value = getattr(tree, name, None)
            if isinstance(value, Partition):
                check(value, f"tree[{index}].{name}")
    return checked

"""Durability and recovery: checkpoint/restore, corruption repair.

The recovery subsystem makes the whole Slider pipeline restartable and
self-healing:

* :mod:`repro.recovery.segments` — the on-disk checkpoint format: a
  manifest plus content-fingerprinted pickle segments, verified eagerly
  on restore (tampering raises
  :class:`~repro.common.errors.CorruptionError`);
* :mod:`repro.recovery.state` — capture/apply of every piece of cross-run
  engine state: window, memo tables, tree internals, distributed cache,
  block placement, and the telemetry backbone (replayed so float
  accounting stays bit-identical);
* :mod:`repro.recovery.checkpoint` — ``Slider.checkpoint``/``restore``
  and the :class:`~repro.slider.driver.StreamDriver` resume path that
  replays only the unacknowledged record tail;
* :mod:`repro.recovery.repair` — corruption injection (the chaos layer's
  :class:`~repro.cluster.chaos.CorruptionEvent`) and the eager repair
  sweep that recomputes poisoned subtrees so corruption costs work but
  never changes outputs;
* :mod:`repro.recovery.sweep` — the kill-at-every-boundary restore sweep
  behind ``python -m repro.recovery``, CI's crash-restart gate.
"""

from repro.recovery.checkpoint import (
    restore_driver,
    restore_slider,
    write_checkpoint,
    write_driver_checkpoint,
)
from repro.recovery.repair import corruption_candidates, inject_and_repair
from repro.recovery.segments import read_segment, write_segments

__all__ = [
    "corruption_candidates",
    "inject_and_repair",
    "read_segment",
    "restore_driver",
    "restore_slider",
    "write_checkpoint",
    "write_driver_checkpoint",
    "write_segments",
]

"""Durable checkpoints for Slider engines and stream drivers.

A checkpoint captures everything a continuation needs *except* the job
(user functions are not serialized; the same job object is re-supplied at
restore time and validated against the manifest).  Restoring rebuilds
the cluster from its config — consuming the cluster RNG exactly as the
original construction did, so the stream position matches — then
constructs a fresh Slider and applies the captured state on top.

Checkpoints are only legal between runs: an open plan or unclosed spans
mean a window update is mid-flight, and a checkpoint taken there could
never be continued bit-identically.

``write_driver_checkpoint``/``restore_driver`` extend the format with a
``stream`` segment holding the :class:`~repro.slider.driver.StreamDriver`
cursor: the pending (unacknowledged) record tail, live slide batches,
and the next boundary.  Restore replays only that tail — records already
folded into a completed slide are never re-fed.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.common.errors import CheckpointError
from repro.recovery.segments import (
    read_manifest,
    read_segment,
    write_segments,
)
from repro.recovery.state import (
    apply_engine_state,
    apply_telemetry,
    capture_engine_state,
    capture_telemetry,
)

if TYPE_CHECKING:  # pragma: no cover - type-only facade references
    from repro.mapreduce.job import MapReduceJob
    from repro.slider.driver import StreamDriver, TimestampFn
    from repro.slider.system import Slider


def _check_idle(engine: "Slider") -> None:
    if engine.executor.active:
        raise CheckpointError(
            "cannot checkpoint mid-run: the executor has an open plan — "
            "checkpoint between window updates (after initial_run/advance "
            "returns)"
        )
    open_spans = engine.telemetry.unclosed_spans()
    if open_spans:
        names = [span.name for span in open_spans[:3]]
        raise CheckpointError(
            f"cannot checkpoint mid-run: {len(open_spans)} telemetry "
            f"span(s) still open (e.g. {names}) — checkpoint between "
            "window updates"
        )


def write_checkpoint(
    engine: "Slider",
    path: str | Path,
    extra_segments: dict[str, Any] | None = None,
) -> Path:
    """Write a fingerprinted checkpoint of an idle engine to ``path``."""
    _check_idle(engine)
    segments: dict[str, Any] = {
        "config": {
            "slider_config": engine.config,
            "mode": engine.mode,
            "cluster_config": (
                engine.cluster.config if engine.cluster is not None else None
            ),
            "cache_config": (
                engine.cache.config if engine.cache is not None else None
            ),
            "blocks_replication": (
                engine.blocks.replication if engine.blocks is not None else None
            ),
            "chaos": engine.chaos,
            "scheduler": engine.scheduler,
            "executor_config": engine.executor_config,
        },
        "state": capture_engine_state(engine),
        "telemetry": capture_telemetry(engine.telemetry),
    }
    if extra_segments:
        segments.update(extra_segments)
    meta = {
        "job": engine.job.name,
        "num_reducers": engine.job.num_reducers,
        "run_index": engine.run_index,
    }
    return write_segments(path, segments, meta)


def restore_slider(path: str | Path, job: "MapReduceJob") -> "Slider":
    """Rebuild a Slider from a checkpoint, verifying every fingerprint."""
    from repro.cluster.machine import Cluster
    from repro.recovery.repair import verify_restored
    from repro.slider.system import Slider

    manifest = read_manifest(path)
    meta = manifest["meta"]
    if meta.get("job") != job.name or meta.get("num_reducers") != job.num_reducers:
        raise CheckpointError(
            f"checkpoint at {path} was written for job "
            f"{meta.get('job')!r} with {meta.get('num_reducers')} reducers; "
            f"got job {job.name!r} with {job.num_reducers} — restore with "
            "the same job the checkpoint was taken from"
        )
    config = read_segment(path, manifest, "config")
    state = read_segment(path, manifest, "state")
    telemetry_state = read_segment(path, manifest, "telemetry")

    cluster = None
    if config["cluster_config"] is not None:
        # Reconstruction consumes the cluster RNG exactly as the original
        # __init__ did; the captured alive/straggle flags are applied on
        # top by apply_engine_state, so the stream position matches.
        cluster = Cluster(config["cluster_config"])
    engine = Slider(
        job,
        mode=config["mode"],
        config=config["slider_config"],
        cluster=cluster,
        scheduler=config["scheduler"],
        cache_config=config["cache_config"],
        chaos=config["chaos"],
        executor_config=config["executor_config"],
    )
    if engine.blocks is not None and config["blocks_replication"] is not None:
        engine.blocks.replication = config["blocks_replication"]
    apply_engine_state(engine, state)
    apply_telemetry(engine.telemetry, telemetry_state)
    verify_restored(engine)
    return engine


# -- stream drivers ----------------------------------------------------------


def write_driver_checkpoint(driver: "StreamDriver", path: str | Path) -> Path:
    """Checkpoint a StreamDriver: engine state plus the stream cursor."""
    stream = {
        "pending": list(driver._pending),
        "live_batches": [
            (batch.slide_index, batch.splits)
            for batch in driver._live_batches
        ],
        "boundary_index": driver._boundary_index,
        "slide_index": driver._slide_index,
        "ran_initial": driver._ran_initial,
        "slide": driver.slide,
        "window": driver.window,
        "split_size": driver.split_size,
        "completed_slides": len(driver.results),
    }
    return write_checkpoint(driver.slider, path, extra_segments={"stream": stream})


def restore_driver(
    path: str | Path, job: "MapReduceJob", timestamp_fn: "TimestampFn"
) -> "StreamDriver":
    """Rebuild a StreamDriver and its engine from a driver checkpoint.

    ``timestamp_fn`` is re-supplied like the job (functions are not
    serialized).  The restored driver's ``results`` list starts empty:
    only slides completed *after* the restore appear there; the pending
    record tail (fed but not yet closed into a slide) is replayed into
    the buffer so the next boundary crossing processes it exactly once.
    """
    from repro.slider.driver import StreamDriver, _SlideBatch

    manifest = read_manifest(path)
    stream = read_segment(path, manifest, "stream")
    slider = restore_slider(path, job)
    driver = StreamDriver.__new__(StreamDriver)
    driver.job = job
    driver.timestamp_fn = timestamp_fn
    driver.slide = stream["slide"]
    driver.window = stream["window"]
    driver.split_size = stream["split_size"]
    driver.mode = slider.mode
    driver.slider = slider
    driver._live_batches = [
        _SlideBatch(slide_index, splits)
        for slide_index, splits in stream["live_batches"]
    ]
    driver._pending = list(stream["pending"])
    driver._boundary_index = stream["boundary_index"]
    driver._slide_index = stream["slide_index"]
    driver._ran_initial = stream["ran_initial"]
    driver.results = []
    return driver

"""Capture/apply of every piece of cross-run Slider state.

``capture_engine_state`` flattens an idle engine into one plain-data
structure; ``apply_engine_state`` pushes it back onto a freshly
constructed engine.  The whole structure is pickled as a *single*
checkpoint segment because the state graph is alias-sensitive: a
randomized tree's memo entries are the same ``Partition`` objects as the
distributed cache's memory/disk copies, and the map memo's partitions
are the same objects as the trees' leaves.  Pickle preserves identity
within one blob, so restoring the single segment reconstructs the exact
sharing structure.

Telemetry is captured separately (it is plain floats, not aliased): the
root span's per-phase work dict is recorded as an *ordered* list and
replayed one lump charge per phase in original insertion order.  Dict
insertion order drives downstream float summation
(``WorkMeter.total()``), so both the values and the order must survive —
a lump charge of the exact prior total reproduces both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import CheckpointError
from repro.core.base import ContractionTree
from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.metrics import Phase
from repro.telemetry import SpanKind, Telemetry

if TYPE_CHECKING:  # pragma: no cover - type-only facade reference
    from repro.slider.system import Slider

#: Per-variant instance fields that constitute a tree's restorable state.
_TREE_FIELDS: dict[type, tuple[str, ...]] = {
    FoldingTree: ("_slots", "_start", "_end", "_height", "_cache"),
    RotatingTree: (
        "_buckets",
        "_bucket_leaves",
        "_oldest",
        "_height",
        "_cache",
        "_root",
        "_intermediate",
        "_intermediate_slot",
        "_pending",
    ),
    CoalescingTree: ("_leaves", "_root", "_reduce_input", "_pending_delta"),
    RandomizedFoldingTree: ("_leaves", "_root"),
    StrawmanTree: ("_cache", "_leaves", "_root"),
}


def _tree_fields(tree: ContractionTree) -> tuple[str, ...]:
    for klass, fields in _TREE_FIELDS.items():
        if isinstance(tree, klass):
            return fields
    raise CheckpointError(
        f"cannot checkpoint unknown tree variant {type(tree).__name__}"
    )


def capture_tree(tree: ContractionTree) -> dict[str, Any]:
    return {
        "class": type(tree).__name__,
        "ran_initial": tree._ran_initial,
        "stats": tree.stats,
        "fields": {name: getattr(tree, name) for name in _tree_fields(tree)},
        "memo": {
            # Drain the store into a plain dict: under the process
            # backend the entries live in a shared-memory segment that
            # must not (and cannot) be pickled, and a checkpoint taken
            # under one execution backend must restore under another.
            "entries": dict(tree.memo.entries.items()),
            "stats": tree.memo.stats,
            "degraded": tree.memo.degraded,
            "tainted": set(tree.memo._tainted),
        },
    }


def apply_tree(tree: ContractionTree, state: dict[str, Any]) -> None:
    if type(tree).__name__ != state["class"]:
        raise CheckpointError(
            f"checkpoint holds a {state['class']} tree but the engine "
            f"built a {type(tree).__name__} — the SliderConfig in the "
            "checkpoint must produce the same variant"
        )
    tree._ran_initial = state["ran_initial"]
    tree.stats = state["stats"]
    for name, value in state["fields"].items():
        setattr(tree, name, value)
    # Reattach through the table's own store (the fresh engine's backend
    # already supplied it — a DictMemoStore or a shared namespace), so
    # the restored entries land wherever this engine executes.
    tree.memo.replace_entries(state["memo"]["entries"])
    tree.memo.stats = state["memo"]["stats"]
    tree.memo.degraded = state["memo"]["degraded"]
    tree.memo._tainted = set(state["memo"]["tainted"])


def capture_engine_state(engine: "Slider") -> dict[str, Any]:
    """Flatten all cross-run state of an idle engine into plain data."""
    state: dict[str, Any] = {
        "window": list(engine.window.splits),
        "map_memo": engine.map_memo,
        "reduce_memo": engine.reduce_memo,
        "trees": [capture_tree(tree) for tree in engine.trees],
        "chaos_downed": list(engine.chaos_downed),
        "last_recovery": dict(engine.last_recovery),
        "run_index": engine.run_index,
        "ran_initial": engine._ran_initial,
        "last_changed_keys": engine._last_changed_keys,
        "last_removed_keys": engine._last_removed_keys,
        "machines": None,
        "cache": None,
        "gc": None,
        "blocks": None,
    }
    if engine.cluster is not None:
        state["machines"] = [
            (m.machine_id, m.alive, m.straggle)
            for m in engine.cluster.machines
        ]
    if engine.cache is not None:
        state["cache"] = {
            "memory": engine.cache._memory,
            "disk": engine.cache._disk,
            "index": engine.cache._index,
            "stats": engine.cache.stats,
        }
    if engine.gc is not None:
        state["gc"] = {
            "budget": engine.gc.budget,
            "collected": engine.gc.collected,
            "insertion_order": list(engine.gc._insertion_order),
        }
    if engine.blocks is not None:
        state["blocks"] = {
            "blocks": engine.blocks._blocks,
            "repair_traffic": engine.blocks.repair_traffic,
            "locality_hits": engine.blocks.locality_hits,
            "locality_misses": engine.blocks.locality_misses,
        }
    return state


def apply_engine_state(engine: "Slider", state: dict[str, Any]) -> None:
    """Push captured state onto a freshly constructed engine."""
    engine.window.splits = list(state["window"])
    engine.map_memo = state["map_memo"]
    engine.reduce_memo = state["reduce_memo"]
    if len(state["trees"]) != len(engine.trees):
        raise CheckpointError(
            f"checkpoint holds {len(state['trees'])} reducer trees but the "
            f"job declares {len(engine.trees)} reducers"
        )
    for tree, tree_state in zip(engine.trees, state["trees"]):
        apply_tree(tree, tree_state)
    engine.chaos_downed = list(state["chaos_downed"])
    engine.last_recovery = dict(state["last_recovery"])
    engine.run_index = state["run_index"]
    engine._ran_initial = state["ran_initial"]
    engine._last_changed_keys = state["last_changed_keys"]
    engine._last_removed_keys = state["last_removed_keys"]
    if state["machines"] is not None and engine.cluster is not None:
        for machine_id, alive, straggle in state["machines"]:
            machine = engine.cluster.machine(machine_id)
            machine.alive = alive
            machine.straggle = straggle
    if state["cache"] is not None and engine.cache is not None:
        engine.cache._memory = state["cache"]["memory"]
        engine.cache._disk = state["cache"]["disk"]
        engine.cache._index = state["cache"]["index"]
        engine.cache.stats = state["cache"]["stats"]
    if state["gc"] is not None and engine.gc is not None:
        engine.gc.budget = state["gc"]["budget"]
        engine.gc.collected = state["gc"]["collected"]
        engine.gc._insertion_order = list(state["gc"]["insertion_order"])
    if state["blocks"] is not None and engine.blocks is not None:
        engine.blocks._blocks = state["blocks"]["blocks"]
        engine.blocks.repair_traffic = state["blocks"]["repair_traffic"]
        engine.blocks.locality_hits = state["blocks"]["locality_hits"]
        engine.blocks.locality_misses = state["blocks"]["locality_misses"]


def capture_telemetry(telemetry: Telemetry) -> dict[str, Any]:
    """Record the accounting totals as ordered plain data."""
    return {
        "label": telemetry.root.name,
        "phases": [
            (phase.value, amount)
            for phase, amount in telemetry.root.work.items()
        ],
        "counters": list(telemetry.counters.items()),
    }


def apply_telemetry(telemetry: Telemetry, state: dict[str, Any]) -> None:
    """Replay captured totals onto a fresh telemetry backbone.

    One lump charge per phase, in the original insertion order, rebuilds
    ``by_phase`` with bit-identical values *and* dict order — both are
    load-bearing for downstream float summation.  The replay runs inside
    a dedicated restore span so the charges are attributed.
    """
    telemetry.root.name = state["label"]
    with telemetry.span("checkpoint-restore", SpanKind.PHASE):
        for phase_value, amount in state["phases"]:
            telemetry.charge(Phase(phase_value), amount)
    for name, value in state["counters"]:
        telemetry.counters[name] = value

"""The kill-at-every-boundary crash-restart sweep.

For each tree variant, runs the fixed equivalence scenario twice:

* the *baseline*: one uninterrupted engine driven through every slide;
* for every slide boundary ``k``: a fresh engine driven through the
  first ``k`` runs, checkpointed, *discarded* (the simulated kill), then
  restored from disk and driven through the remaining runs.

The resumed runs must reproduce the baseline's records **bit for bit** —
outputs fingerprint, per-phase work breakdown, simulated makespan, space,
and task-graph shape (the same record schema the plan-equivalence gate
uses).  Any divergence is reported as a mismatch and fails the sweep.

``python -m repro.recovery --out report.json --keep-checkpoint dir``
drives this from CI, which publishes both artifacts.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Any

from repro.cluster.machine import Cluster, ClusterConfig
from repro.mapreduce.types import Split
from repro.slider.equivalence import (
    SCENARIO_VARIANTS,
    _MODES,
    _run_record,
    _scenario_job,
    _scenario_split,
)
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def _scenario_steps(mode: WindowMode) -> list[tuple[list[Split], int]]:
    """The slide sequence of the shared equivalence scenario."""
    removed = 0 if mode is WindowMode.APPEND else 2
    single = 0 if mode is WindowMode.APPEND else 1
    steps: list[tuple[list[Split], int]] = [
        ([_scenario_split(i) for i in range(6)], 0),  # initial window
        ([_scenario_split(10), _scenario_split(11)], removed),
        ([_scenario_split(12)], single),
    ]
    if mode is not WindowMode.FIXED:
        steps.append(([], 0))
    return steps


def _make_slider(variant: str, mode: WindowMode) -> Slider:
    cluster = Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0))
    return Slider(
        _scenario_job(),
        mode,
        config=SliderConfig(mode=mode, tree=variant),
        cluster=cluster,
    )


def _drive(slider: Slider, steps: list[tuple[list[Split], int]], start: int):
    records = []
    for added, removed in steps[start:]:
        if start == 0 and not records and not slider._ran_initial:
            result = slider.initial_run(added)
        else:
            result = slider.advance(added, removed)
        records.append(_run_record(result))
    return records


def _diff_records(expected: list[dict], got: list[dict], where: str) -> list[str]:
    problems = []
    if len(expected) != len(got):
        return [f"{where}: {len(got)} runs vs {len(expected)} baseline"]
    for baseline, resumed in zip(expected, got):
        label = baseline.get("label", "?")
        for field in sorted(set(baseline) | set(resumed)):
            if baseline.get(field) != resumed.get(field):
                problems.append(
                    f"{where}/{label}.{field}: baseline="
                    f"{baseline.get(field)!r} resumed={resumed.get(field)!r}"
                )
    return problems


def sweep_variant(
    variant: str,
    mode_name: str,
    keep_checkpoint: Path | None = None,
) -> dict[str, Any]:
    """Kill/restore at every slide boundary for one variant."""
    mode = _MODES[mode_name]
    steps = _scenario_steps(mode)
    job = _scenario_job()

    baseline_slider = _make_slider(variant, mode)
    baseline = _drive(baseline_slider, steps, 0)
    baseline_slider.verify_outputs()

    mismatches: list[str] = []
    kill_points = list(range(1, len(steps)))
    workdir = Path(tempfile.mkdtemp(prefix="slider-sweep-"))
    try:
        for kill_at in kill_points:
            victim = _make_slider(variant, mode)
            prefix = _drive(victim, steps[:kill_at], 0)
            mismatches.extend(
                _diff_records(
                    baseline[:kill_at], prefix, f"{variant}@k{kill_at}/prefix"
                )
            )
            # Checkpoint at the boundary, then discard the engine (the kill).
            ckpt = workdir / f"{variant}-k{kill_at}"
            victim.checkpoint(ckpt)
            del victim

            resumed = Slider.restore(ckpt, job)
            tail = _drive(resumed, steps, kill_at)
            mismatches.extend(
                _diff_records(
                    baseline[kill_at:], tail, f"{variant}@k{kill_at}"
                )
            )
            resumed.verify_outputs()
            if keep_checkpoint is not None and kill_at == kill_points[-1]:
                if keep_checkpoint.exists():
                    shutil.rmtree(keep_checkpoint)
                shutil.copytree(ckpt, keep_checkpoint)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "variant": variant,
        "mode": mode_name,
        "kill_points": kill_points,
        "runs": len(steps),
        "equivalent": not mismatches,
        "mismatches": mismatches,
    }


def run_sweep(
    variants: list[str] | None = None,
    keep_checkpoint: Path | None = None,
) -> dict[str, Any]:
    """Sweep every (or the selected) tree variant."""
    selected = [
        (variant, mode_name)
        for variant, mode_name in SCENARIO_VARIANTS
        if variants is None or variant in variants
    ]
    results = [
        sweep_variant(variant, mode_name, keep_checkpoint=keep_checkpoint)
        for variant, mode_name in selected
    ]
    return {
        "scenario": "kill-restore-sweep",
        "variants": results,
        "equivalent": all(r["equivalent"] for r in results),
        "mismatch_count": sum(len(r["mismatches"]) for r in results),
    }

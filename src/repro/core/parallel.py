"""The persistent worker pool behind the multi-process execution backend.

One :class:`WorkerPool` owns N forked daemon processes, each holding one
end of a dedicated pipe.  Workers are forked *after* the parent created
the :class:`~repro.core.sharedmem.SharedMemoStore`, so the segment and
its lock arrive by inheritance — no attach-by-name, no Manager proxies.
Dispatch is one pickled payload per reducer; results come back over the
same pipe, so per-worker FIFO plus the backend's reducer-ordered merge
loop gives a deterministic receive order without any sequencing
metadata.

The payload protocol (:func:`build_payload` → :func:`_execute_payload`)
ships a contraction tree by *state*, not by reference: the tree's
``__dict__`` minus its process-local collaborators (meter, memo table,
executor).  The worker rebuilds those around its own
:class:`~repro.telemetry.merge.CaptureTelemetry` — charges, counters,
spans, task-graph nodes, and probe events are all captured in order and
shipped back for the parent to replay, which is what keeps the merged
run bit-identical to an in-process one (see
:mod:`repro.telemetry.merge`).  The memo table is rebuilt over the
fork-inherited shared store's namespace for that reducer, so memo hits
and misses resolve against exactly the state the parent sees.

Failure ladder: a worker that dies or errors costs nothing but work —
the parent falls back to executing that reducer in-process (the shared
store's writes are content-addressed and idempotent, so a half-finished
worker leaves no wrong state, only warm cache) and marks the pool
broken so later runs stop dispatching.
"""

from __future__ import annotations

import pickle
import weakref
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any

from repro.core.execute import PlanExecutor
from repro.core.memo import MemoStats, MemoTable
from repro.core.sharedmem import SharedMemoStore
from repro.metrics import WorkMeter
from repro.telemetry.merge import CaptureTelemetry

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.core.base import ContractionTree
    from repro.core.compile.compiler import CompiledPlan
    from repro.core.partition import Partition

_SHUTDOWN = b"\x00shutdown\x00"

#: Tree attributes that are process-local collaborators, rebuilt worker-
#: side, never shipped.  ``combiner`` ships out (the worker needs it) but
#: never back (the parent keeps its own instance).
_LOCAL_ATTRS = ("meter", "memo", "executor")


class _ProbeCapture:
    """Worker-side stand-in for the executor's dynamic-analysis probe.

    Records ``on_step`` events in execution order so the parent can
    replay them into its real probe (when one is attached) — this is how
    the vector-clock cross-check observes real worker processes.
    """

    def __init__(self) -> None:
        self.events: list[tuple[str, dict[str, Any]]] = []

    def on_begin_run(self, label: str) -> None:
        # The parent's probe already saw the run begin; don't replay it.
        pass

    def on_step(self, op: str, **kwargs: Any) -> None:
        self.events.append((op, kwargs))


def build_payload(
    tree: "ContractionTree",
    reducer: int,
    leaves: "list[Partition]",
    removed: int,
    template: "CompiledPlan",
    externals: list[tuple[int, int]],
    label: str,
) -> dict[str, Any]:
    """Everything one worker needs to run ``tree.advance`` remotely."""
    state = {
        key: value
        for key, value in tree.__dict__.items()
        if key not in _LOCAL_ATTRS
    }
    return {
        "tree_class": type(tree),
        "state": state,
        "reducer": reducer,
        "leaves": leaves,
        "removed": removed,
        "template": template,
        "externals": externals,
        "label": label,
        "verify_mode": tree.memo.verify_mode,
        "capacity": tree.memo.capacity,
        "tainted": set(tree.memo._tainted),
    }


def _execute_payload(
    payload: dict[str, Any], store: SharedMemoStore
) -> dict[str, Any]:
    """Rebuild the tree around worker-local collaborators and advance it."""
    telemetry = CaptureTelemetry(label=payload["label"])
    meter = WorkMeter(telemetry=telemetry)
    executor = PlanExecutor(meter=meter)
    probe = _ProbeCapture()

    tree: "ContractionTree" = object.__new__(payload["tree_class"])
    tree.__dict__.update(payload["state"])
    tree.meter = meter
    tree.executor = executor
    tree.memo = MemoTable(
        entries=store.namespace(payload["reducer"]),
        stats=MemoStats(),
        telemetry=telemetry,
        verify_mode=payload["verify_mode"],
        capacity=payload["capacity"],
    )
    tree.memo._tainted = set(payload["tainted"])

    executor.begin_run(payload["label"], compiled=payload["template"])
    # Attach the probe only after begin_run: the parent's probe already
    # observed this run's begin event.
    executor.probe = probe
    graph = executor.recorder.graph
    assert graph is not None
    graph.allow_external = True
    for content_uid, parent_uid in payload["externals"]:
        graph.seed_external_producer(content_uid, parent_uid)

    root = tree.advance(payload["leaves"], payload["removed"])
    run = executor.end_run()

    state = {
        key: value
        for key, value in tree.__dict__.items()
        if key not in _LOCAL_ATTRS and key != "combiner"
    }
    return {
        "root": root,
        "state": state,
        "events": telemetry.events,
        "spans": telemetry.root.children,
        "graph": run.graph,
        "memo_stats": tree.memo.stats,
        "tainted": set(tree.memo._tainted),
        "probe_events": probe.events,
    }


def _worker_main(conn: Any, store: SharedMemoStore) -> None:
    """The worker process loop: recv payload, execute, send result."""
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            break
        if blob == _SHUTDOWN:
            break
        try:
            payload = pickle.loads(blob)
            result: tuple[str, Any] = ("ok", _execute_payload(payload, store))
        except Exception as exc:  # noqa: BLE001 - errors travel to the parent
            result = ("error", f"{type(exc).__name__}: {exc}")
        try:
            reply = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # noqa: BLE001 - unpicklable result payload
            reply = pickle.dumps(
                ("error", f"unpicklable result: {type(exc).__name__}: {exc}"),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        try:
            conn.send_bytes(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerPool:
    """N persistent forked workers over one inherited shared memo store."""

    def __init__(self, workers: int, store: SharedMemoStore) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.store = store
        self.broken = False
        ctx = get_context("fork")
        self.pipes = []
        self.procs = []
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, store),
                daemon=True,
                name=f"repro-worker-{index}",
            )
            proc.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.procs.append(proc)
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self.pipes), list(self.procs)
        )

    def __len__(self) -> int:
        return len(self.procs)

    def submit(self, worker: int, blob: bytes) -> None:
        """Queue one pre-pickled payload on a worker's pipe."""
        try:
            self.pipes[worker].send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            self.broken = True
            raise RuntimeError(f"worker {worker} is gone") from exc

    def receive(self, worker: int) -> Any:
        """Block for the next result from a worker; raises if it died."""
        try:
            status, value = pickle.loads(self.pipes[worker].recv_bytes())
        except (EOFError, OSError) as exc:
            self.broken = True
            raise RuntimeError(f"worker {worker} died mid-task") from exc
        if status != "ok":
            raise RuntimeError(f"worker {worker} failed: {value}")
        return value

    def close(self) -> None:
        """Shut the workers down (idempotent); the store stays up."""
        self._finalizer()


def _shutdown(pipes: list, procs: list) -> None:
    for pipe in pipes:
        try:
            pipe.send_bytes(_SHUTDOWN)
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
        except ValueError:
            continue  # already closed elsewhere
    for pipe in pipes:
        try:
            pipe.close()
        except Exception:
            pass

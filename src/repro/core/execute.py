"""The unified plan executor: one substrate runs every sub-computation.

Trees *plan*; this module *executes*.  Each planner call (a tree's
``_combine``/``_memo_visit``, the engine's map and reduce passes) emits a
:class:`~repro.core.plan.PlanStep` and hands it straight to the
:class:`PlanExecutor`, which resolves it in a single pass:

* consult the planner's memo table (plan-level cache edges become
  ``memo_read`` nodes on hit, ``combine`` + ``memo_write`` on miss);
* run the combiner over the live inputs (or forward a pass-through);
* charge the work meter, inside the step's telemetry task span;
* transcribe the executed node into the run's
  :class:`~repro.core.taskgraph.TaskGraph`.

Executing while planning (instead of batching the whole plan first) keeps
the semantics of the seed path bit-identical — planners may branch on the
*values* that flow through them (e.g. partition emptiness) — while the
plan artifact stays a pure description: step emission always precedes
resolution, so the plan never depends on what the cache held.

The executor also measures what the slider layer's time models consume:
per-reducer work (via :meth:`PlanExecutor.reducer_scope`) and the per-run
plan/graph pair (via :meth:`PlanExecutor.begin_run`/:meth:`end_run`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.common.errors import CompileError
from repro.core.compile.compiler import CompiledPlan
from repro.core.compile.kernels import fused_combine_partitions, kernel_for
from repro.core.partition import Partition, combine_partitions
from repro.core.plan import Plan
from repro.core.poison import PoisonContext
from repro.core.taskgraph import GraphRecorder, TaskGraph
from repro.metrics import Phase, WorkMeter
from repro.telemetry import SpanKind

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids a runtime cycle
    from repro.core.base import ContractionTree


@dataclass
class RunExecution:
    """Everything one executed run produced, for reports and time models."""

    plan: Plan
    graph: TaskGraph | None
    #: Per-split charged cost of fresh Map tasks (memo hits charge 0.0).
    map_costs: dict[int, float] = field(default_factory=dict)
    #: Per-reducer work measured while that reducer's scope was open.
    reducer_costs: dict[int, float] = field(default_factory=dict)
    #: The compiled plan the run replayed (None when planned fresh).
    compiled: CompiledPlan | None = None
    #: True when the run skipped replanning by replaying ``compiled``.
    replayed: bool = False

    def reducer_cost_list(self, num_reducers: int) -> list[float]:
        return [self.reducer_costs.get(r, 0.0) for r in range(num_reducers)]


class PlanExecutor:
    """Runs plan steps: memo resolution, combining, charging, recording.

    One executor is shared by an engine and all of its per-reducer trees;
    a standalone tree builds a private one.  Between :meth:`begin_run` and
    :meth:`end_run` an open :class:`~repro.core.plan.Plan` collects the
    emitted steps and the :class:`~repro.core.taskgraph.GraphRecorder`
    transcribes the executed nodes; outside a run (e.g. background
    pre-processing between windows) steps execute without being planned
    or recorded, exactly as the seed path behaved.
    """

    def __init__(self, meter: WorkMeter | None = None) -> None:
        self.meter = meter if meter is not None else WorkMeter()
        self.recorder = GraphRecorder()
        self.plan: Plan | None = None
        #: When set (engine configured a poison policy), combiner failures
        #: are retried and then quarantined instead of aborting the run.
        self.poison: PoisonContext | None = None
        #: Test-only dynamic race probe (duck-typed so core never imports
        #: the analysis layer).  When set, every executed step fires
        #: ``probe.on_step(op, reducer=..., memo_uid=..., hit=..., label=...)``
        #: and run boundaries fire ``probe.on_begin_run(label)`` — the
        #: vector-clock cross-check in :mod:`repro.analysis.dynamic`
        #: validates the static race verdicts against what actually ran.
        self.probe: Any | None = None
        self._map_costs: dict[int, float] = {}
        self._reducer_costs: dict[int, float] = {}
        #: Replay state: a plan-cache hit puts the executor in replay mode
        #: — step emission is skipped (the compiled template already holds
        #: the plan) and a cursor validates each executed op against it.
        self._replay: CompiledPlan | None = None
        self._replay_cursor = 0

    # -- run lifecycle -------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.plan is not None or self._replay is not None

    def begin_run(
        self, label: str = "", compiled: CompiledPlan | None = None
    ) -> Plan:
        """Open a run: a fresh plan plus a fresh task graph.

        With ``compiled`` (a plan-cache hit), the run replays the compiled
        template instead of assembling a plan: planners still drive
        execution — values flow, memos resolve, work is charged exactly as
        when planning fresh — but no steps are emitted, and combine steps
        carrying a kernel hint dispatch through the vectorized batch path.
        """
        if compiled is not None:
            self.plan = None
            self._replay = compiled
            self._replay_cursor = 0
        else:
            self.plan = Plan(label=label)
            self._replay = None
        self.recorder.begin_run(label)
        if self.probe is not None:
            self.probe.on_begin_run(label)
        self._map_costs = {}
        self._reducer_costs = {}
        return self.plan if self.plan is not None else compiled.plan

    def end_run(self) -> RunExecution:
        """Close the run; returns the plan/graph pair plus measurements."""
        compiled, self._replay = self._replay, None
        if compiled is not None:
            if self._replay_cursor != len(compiled.ops):
                raise CompileError(
                    f"replayed run ended after {self._replay_cursor} of "
                    f"{len(compiled.ops)} compiled steps — the plan-cache "
                    "key does not fully determine this run's structure"
                )
            return RunExecution(
                plan=compiled.plan,
                graph=self.recorder.end_run(),
                map_costs=self._map_costs,
                reducer_costs=self._reducer_costs,
                compiled=compiled,
                replayed=True,
            )
        plan, self.plan = self.plan, None
        if plan is None:
            raise RuntimeError("end_run called with no open run")
        graph = self.recorder.end_run()
        return RunExecution(
            plan=plan,
            graph=graph,
            map_costs=self._map_costs,
            reducer_costs=self._reducer_costs,
        )

    @property
    def replay_template(self) -> CompiledPlan | None:
        """The compiled template this run is replaying, if any.

        The execution backend seam keys off this: only a replayed run
        has a step-exact template whose contraction slice can be
        dispatched to a worker and skipped locally.
        """
        return self._replay

    def skip_replay(self, start: int, end: int) -> None:
        """Jump the replay cursor over ``[start, end)`` executed elsewhere.

        The multi-process backend dispatches a reducer's contraction
        slice to a worker, which replays exactly those template steps
        against its own cursor; on merge the parent accounts for them
        here instead of re-executing.  The cursor must sit at ``start``
        — anything else means the backend's slicing disagrees with the
        actual step order, which is a structural bug, not a data error.
        """
        compiled = self._replay
        if compiled is None:
            raise CompileError("skip_replay outside a replayed run")
        if not 0 <= start <= end <= len(compiled.ops):
            raise CompileError(
                f"skip_replay range [{start}, {end}) outside the "
                f"{len(compiled.ops)}-step template"
            )
        if self._replay_cursor != start:
            raise CompileError(
                f"skip_replay expected the cursor at {start}, "
                f"found it at {self._replay_cursor}"
            )
        self._replay_cursor = end

    def _consume(self, op: str) -> bool:
        """Advance the replay cursor past one executed step.

        Validates that execution emits exactly the compiled template's op
        sequence; returns the step's kernel hint.  A divergence means a
        planner's ``plan_structure_key`` missed a piece of structural
        state — fail loudly rather than execute against a stale template.
        """
        compiled = self._replay
        cursor = self._replay_cursor
        if cursor >= len(compiled.ops) or compiled.ops[cursor] != op:
            expected = (
                repr(compiled.ops[cursor])
                if cursor < len(compiled.ops)
                else "<end of plan>"
            )
            raise CompileError(
                f"replayed plan diverged at step {cursor}: compiled "
                f"template has {expected}, execution emitted {op!r}"
            )
        self._replay_cursor = cursor + 1
        return compiled.kernel_hints[cursor]

    @contextmanager
    def reducer_scope(self, reducer: int):
        """Attribute the enclosed work (and recorded nodes) to ``reducer``.

        The measured meter delta accumulates across scopes for the same
        reducer — a run opens one scope for the contraction pass and a
        second for the reduce pass — feeding the wave time model's
        per-reduce-task imbalance.
        """
        before = self.meter.total()
        with self.recorder.reducer_context(reducer):
            try:
                yield
            finally:
                self._reducer_costs[reducer] = self._reducer_costs.get(
                    reducer, 0.0
                ) + (self.meter.total() - before)

    def record_map_cost(self, split_uid: int, cost: float) -> None:
        """Record the charged cost of one Map step's resolution."""
        self._map_costs[split_uid] = cost

    # -- planning-facing emission -------------------------------------------

    def plan_step(self, op: str, **kwargs) -> None:
        """Emit a step into the open plan (no-op outside a run).

        In replay mode nothing is emitted — the compiled template is the
        plan — but the step is still validated against the template.
        """
        if self._replay is not None:
            self._consume(op)
        elif self.plan is not None:
            self.plan.step(op, **kwargs)
        else:
            return
        if self.probe is not None:
            self.probe.on_step(
                op,
                reducer=kwargs.get("reducer"),
                memo_uid=kwargs.get("memo_uid"),
                label=kwargs.get("label", ""),
            )

    # -- sub-computation execution ------------------------------------------

    def combine(
        self,
        tree: "ContractionTree",
        parts: Sequence[Partition],
        phase: Phase = Phase.CONTRACTION,
        memo_uid: int | None = None,
        cost_scale: float = 1.0,
        node: str = "",
    ) -> Partition:
        """Plan and run one (possibly memoized) combiner invocation.

        ``cost_scale`` discounts the charged cost when the merge
        piggybacks on work another task performs anyway (e.g. the Reduce
        task's own merge pass consuming a root-and-delta union in split
        processing).  ``node`` names the sub-computation's position in
        the planner's level structure.
        """
        use_kernel = False
        if self._replay is not None:
            use_kernel = self._consume("combine")
        elif self.plan is not None:
            self.plan.step(
                "combine",
                label=node,
                phase=phase,
                n_inputs=len(parts),
                memo_uid=memo_uid,
                reducer=self.recorder.reducer,
                cost_scale=cost_scale,
            )
        reuses_before = tree.stats.combiner_reuses
        with self.meter.telemetry.span(node or "combine", SpanKind.TASK):
            result = self._resolve_combine(
                tree, parts, phase, memo_uid, cost_scale, node, use_kernel
            )
        if self.probe is not None and self.active:
            self.probe.on_step(
                "combine",
                reducer=self.recorder.reducer,
                memo_uid=memo_uid,
                hit=tree.stats.combiner_reuses > reuses_before,
                label=node,
            )
        return result

    def _resolve_combine(  # analysis: charge-in-caller-span (combine's task span)
        self,
        tree: "ContractionTree",
        parts: Sequence[Partition],
        phase: Phase,
        memo_uid: int | None,
        cost_scale: float,
        node: str,
        use_kernel: bool = False,
    ) -> Partition:
        recorder = self.recorder if self.recorder.active else None
        meter = self.meter
        if memo_uid is not None:
            cached = tree.memo.lookup(memo_uid)
            if cached is not None:
                tree.stats.combiner_reuses += 1
                if tree.memo_read_cost:
                    meter.charge(Phase.MEMO_READ, tree.memo_read_cost)
                if recorder is not None:
                    recorder.memo_read(
                        cached,
                        cost=tree.memo_read_cost,
                        label=node or f"memo:{memo_uid:#x}",
                        memo_uid=memo_uid,
                    )
                return cached
        tree.stats.combiner_invocations += 1
        non_empty = sum(1 for p in parts if p)
        if non_empty == 1:
            # A pass-through node (single live child): no merge runs, but
            # the child's data still moves through the tree position — on a
            # real cluster every tree node spills and copies its input, so
            # an overly tall tree is not free even where siblings are void.
            value = next(p for p in parts if p)
            charge = cost_scale * (
                0.5 * tree.invocation_overhead
                + tree.PASS_THROUGH_WEIGHT * value.record_weight(tree.combiner)
            )
            meter.charge(phase, charge)
            if recorder is not None:
                recorder.combine(
                    parts, value, phase, charge, label=node, pass_through=True
                )
            return value
        before = meter.by_phase.get(phase, 0.0) if recorder else 0.0
        # The compiled plan's kernel hint is bit-identity-safe by the
        # kernel contract; poison handling stays on the scalar path.
        kernel = (
            kernel_for(tree.combiner)
            if use_kernel and self.poison is None
            else None
        )
        if kernel is not None:
            result = fused_combine_partitions(
                parts,
                tree.combiner,
                kernel,
                meter=meter,
                phase=phase,
                cost_factor=tree.combine_cost_factor * cost_scale,
                invocation_overhead=tree.invocation_overhead * cost_scale,
            )
        else:
            result = combine_partitions(
                parts,
                tree.combiner,
                meter=meter,
                phase=phase,
                cost_factor=tree.combine_cost_factor * cost_scale,
                invocation_overhead=tree.invocation_overhead * cost_scale,
                on_poison=(
                    self.poison.combine_handler(tree.combiner)
                    if self.poison is not None
                    else None
                ),
            )
        combine_node = None
        if recorder is not None:
            combine_node = recorder.combine(
                parts,
                result,
                phase,
                cost=meter.by_phase.get(phase, 0.0) - before,
                label=node,
                memo_uid=memo_uid,
            )
        if memo_uid is not None:
            tree.memo.store(memo_uid, result)
            if tree.memo_write_cost:
                meter.charge(Phase.MEMO_WRITE, tree.memo_write_cost)
                if recorder is not None:
                    recorder.memo_write(
                        combine_node,
                        result,
                        cost=tree.memo_write_cost,
                        memo_uid=memo_uid,
                    )
        return result

    def memo_visit(
        self, value: Partition, cost: float, node: str = ""
    ) -> None:
        """Plan and charge a memoized result moving through the tree —
        the strawman's per-node visit cost on positional reuse."""
        if self._replay is not None:
            self._consume("visit")
        elif self.plan is not None:
            self.plan.step(
                "visit",
                label=node,
                phase=Phase.MEMO_READ,
                n_inputs=1,
                reducer=self.recorder.reducer,
            )
        with self.meter.telemetry.span(node or "memo-visit", SpanKind.TASK):
            self.meter.charge(Phase.MEMO_READ, cost)
            if self.recorder.active:
                self.recorder.memo_read(value, cost=cost, label=node)
        if self.probe is not None and self.active:
            self.probe.on_step(
                "visit", reducer=self.recorder.reducer, label=node
            )

"""The coalescing contraction tree (§4.2) for append-only windows.

Data is only ever appended, so the tree degenerates to a right spine: the
running root coalesces everything seen so far, and each run combines the new
Map outputs into a delta and folds the delta into the root.

In *split-processing* mode the foreground hands Reduce the union of the old
root and the delta directly (the extra merge is charged to the Reduce side),
and the combiner invocation that produces the next run's root is deferred to
the background phase — Figure 5(b).
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import WindowError
from repro.core.base import ContractionTree
from repro.core.partition import Partition
from repro.metrics import Phase


class CoalescingTree(ContractionTree):
    """Append-only tree: a running coalesced root plus per-run deltas."""

    supports_remove = False

    def __init__(self, *args, split_mode: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.split_mode = split_mode
        self._leaves: list[Partition] = []
        self._root = Partition.empty()
        self._reduce_input = Partition.empty()
        self._pending_delta: Partition | None = None

    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        self._check_initial(done=True)
        self._leaves = list(leaves)
        with self._level_span("coal", 1):
            self._root = self._combine(
                self._leaves, phase=Phase.CONTRACTION, node="coal:root"
            )
        self._reduce_input = self._root
        self.stats.leaves = len(self._leaves)
        self.stats.height = 1 if self._leaves else 0
        return self._reduce_input

    def advance(self, added: Sequence[Partition], removed: int) -> Partition:
        self._check_initial(done=False)
        if removed:
            raise WindowError("coalescing trees are append-only; cannot remove")
        added = list(added)
        self._leaves.extend(added)
        self.stats.leaves = len(self._leaves)
        if not added:
            self._reduce_input = self._effective_root()
            return self._reduce_input

        with self._level_span("coal", 1):
            delta = self._combine(added, phase=Phase.CONTRACTION, node="coal:delta")
        if self.split_mode:
            # Catch up if the background phase was skipped (best-effort).
            self._absorb_pending(Phase.CONTRACTION)
            # Foreground: Reduce consumes (root ∪ delta) directly — the
            # merge piggybacks on the Reduce task's own merge pass instead
            # of running (and materializing) a separate combiner, hence the
            # discounted cost (Figure 5b).
            self._reduce_input = self._combine(
                [self._root, delta],
                phase=Phase.REDUCE,
                cost_scale=0.5,
                node="coal:reduce-input",
            )
            self._pending_delta = delta
        else:
            self._root = self._combine(
                [self._root, delta], phase=Phase.CONTRACTION, node="coal:root"
            )
            self._reduce_input = self._root
        return self._reduce_input

    def background_preprocess(self) -> None:
        """Fold the last delta into the root, charged to BACKGROUND (§4.2)."""
        if not self.split_mode:
            return
        self._absorb_pending(Phase.BACKGROUND)

    def window_leaves(self) -> list[Partition]:
        return list(self._leaves)

    def root(self) -> Partition:
        return self._reduce_input

    def plan_structure_key(self) -> tuple | None:
        """The right spine has almost no structure: only the mode and an
        unabsorbed delta steer which combines the next advance emits."""
        return ("coal", self.split_mode, self._pending_delta is not None)

    # -- internals ---------------------------------------------------------

    def _absorb_pending(self, phase: Phase) -> None:
        if self._pending_delta is None:
            return
        delta, self._pending_delta = self._pending_delta, None
        self._root = self._combine(
            [self._root, delta], phase=phase, node="coal:absorb"
        )

    def _effective_root(self) -> Partition:
        if self._pending_delta is not None:
            return self._combine(
                [self._root, self._pending_delta],
                phase=Phase.REDUCE,
                cost_scale=0.5,
                node="coal:reduce-input",
            )
        return self._root

"""The rotating contraction tree (§4.1) for fixed-width windows.

``w`` splits are combined into a *bucket*; ``N`` buckets form the leaves of
a balanced binary tree.  Because the window width never changes, a slide
simply replaces the oldest bucket in round-robin order and recomputes the
replaced leaf's root path — ``log2(N)`` combiner invocations.  Rotation
reorders leaves relative to window order, so the combiner must be
commutative as well as associative.

In *split-processing* mode (§4), the predictable rotation lets the tree
pre-combine, in the background, every node that the next update will reuse
(the siblings along the next victim's root path) into a single intermediate
``I``.  The next foreground update then needs just one combiner invocation
(new bucket + ``I``) before Reduce, while the tree-path bookkeeping is
deferred to the following background phase.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CombinerContractError, WindowError
from repro.core.base import ContractionTree
from repro.core.partition import Partition
from repro.metrics import Phase


class RotatingTree(ContractionTree):
    """Fixed-width window tree with round-robin bucket rotation."""

    requires_commutative = True

    def __init__(
        self,
        *args,
        bucket_size: int = 1,
        split_mode: bool = False,
        **kwargs,
    ) -> None:
        """``bucket_size``: splits per bucket (the paper's ``w``).
        ``split_mode``: enable background pre-processing."""
        super().__init__(*args, **kwargs)
        if not self.combiner.commutative:
            raise CombinerContractError(
                "rotating contraction trees require a commutative combiner"
            )
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        self.bucket_size = bucket_size
        self.split_mode = split_mode
        self._buckets: list[Partition] = []  # physical slot -> bucket value
        self._bucket_leaves: list[list[Partition]] = []
        self._oldest = 0  # physical slot holding the oldest bucket
        self._height = 0
        self._cache: dict[tuple[int, int], Partition] = {}
        self._root = Partition.empty()
        # Split-processing state.
        self._intermediate: Partition | None = None  # pre-combined off-path I
        self._intermediate_slot: int | None = None
        self._pending: tuple[int, Partition] | None = None  # deferred path fix

    # -- lifecycle ---------------------------------------------------------

    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        self._check_initial(done=True)
        leaves = list(leaves)
        if not leaves:
            raise WindowError("rotating tree needs a non-empty initial window")
        if len(leaves) % self.bucket_size:
            raise WindowError(
                f"initial window of {len(leaves)} splits is not a whole number "
                f"of buckets of {self.bucket_size}"
            )
        for start in range(0, len(leaves), self.bucket_size):
            chunk = leaves[start : start + self.bucket_size]
            self._bucket_leaves.append(list(chunk))
            self._buckets.append(
                self._combine(
                    chunk,
                    phase=Phase.CONTRACTION,
                    node=f"rot:bucket.{len(self._buckets)}",
                )
            )
        count = len(self._buckets)
        self._height = max(0, (count - 1).bit_length())
        self._propagate(set(range(count)))
        self._root = self._tree_root()
        self.stats.leaves = len(leaves)
        self.stats.height = self._height
        return self._root

    def advance(self, added: Sequence[Partition], removed: int) -> Partition:
        self._check_initial(done=False)
        added = list(added)
        if removed != len(added):
            raise WindowError(
                f"fixed-width window: must remove exactly as many splits as "
                f"added (got add={len(added)}, remove={removed})"
            )
        if len(added) % self.bucket_size:
            raise WindowError(
                f"slide of {len(added)} splits is not a whole number of "
                f"buckets of {self.bucket_size}"
            )
        for start in range(0, len(added), self.bucket_size):
            chunk = added[start : start + self.bucket_size]
            self._replace_oldest(chunk)
        return self._root

    def window_leaves(self) -> list[Partition]:
        ordered: list[Partition] = []
        count = len(self._buckets)
        for offset in range(count):
            slot = (self._oldest + offset) % count
            ordered.extend(self._bucket_leaves[slot])
        return ordered

    def root(self) -> Partition:
        return self._root

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def plan_structure_key(self) -> tuple | None:
        """Rotation is positional: the victim slot and the split-processing
        state (a pre-combined ``I`` for which slot, a deferred path fix)
        fully determine the next advance's combine sequence."""
        return (
            "rot",
            len(self._buckets),
            self._height,
            self._oldest,
            self.bucket_size,
            self.split_mode,
            self._intermediate_slot if self._intermediate is not None else None,
            self._pending[0] if self._pending is not None else None,
        )

    # -- the slide ---------------------------------------------------------

    def _replace_oldest(self, chunk: list[Partition]) -> None:
        slot = self._oldest
        bucket = self._combine(
            chunk, phase=Phase.CONTRACTION, node=f"rot:bucket.{slot}"
        )
        self._bucket_leaves[slot] = list(chunk)
        self._buckets[slot] = bucket

        if self._intermediate is not None and self._intermediate_slot == slot:
            # Fast foreground path: one combine against the precomputed I.
            self._root = self._combine(
                [bucket, self._intermediate],
                phase=Phase.CONTRACTION,
                node=f"rot:fast-root.{slot}",
            )
            self._intermediate = None
            self._intermediate_slot = None
            self._pending = (slot, bucket)
        else:
            self._apply_pending(Phase.CONTRACTION)
            self._propagate({slot})
            self._root = self._tree_root()
        self._oldest = (slot + 1) % len(self._buckets)

    def background_preprocess(self) -> None:
        """Run the best-effort background phase (§4.1).

        Applies any deferred tree-path update for the bucket replaced in the
        last foreground run, then pre-combines the off-path siblings of the
        *next* victim slot into the intermediate ``I``.  All work here is
        charged to the BACKGROUND phase.
        """
        if not self.split_mode:
            return
        self._apply_pending(Phase.BACKGROUND)
        slot = self._oldest
        siblings = self._off_path_values(slot)
        if siblings:
            self._intermediate = self._combine(
                siblings, phase=Phase.BACKGROUND, node=f"rot:I.{slot}"
            )
        else:
            self._intermediate = Partition.empty()
        self._intermediate_slot = slot

    def _apply_pending(self, phase: Phase) -> None:
        if self._pending is None:
            return
        slot, _bucket = self._pending
        self._pending = None
        self._propagate({slot}, phase=phase)

    # -- balanced-tree plumbing (same indexing as FoldingTree) -------------

    def _propagate(self, dirty_slots: set[int], phase: Phase = Phase.CONTRACTION) -> None:
        dirty = dirty_slots
        for level in range(1, self._height + 1):
            parents = {index // 2 for index in dirty}
            with self._level_span("rot", level):
                for parent in parents:
                    left = self._node_value(level - 1, parent * 2)
                    right = self._node_value(level - 1, parent * 2 + 1)
                    self._cache[(level, parent)] = self._combine(
                        [left, right], phase=phase, node=f"rot:L{level}.{parent}"
                    )
            dirty = parents

    def _node_value(self, level: int, index: int) -> Partition:
        if level == 0:
            if index < len(self._buckets):
                return self._buckets[index]
            return Partition.empty()
        return self._cache.get((level, index), Partition.empty())

    def _tree_root(self) -> Partition:
        if self._height == 0:
            return self._buckets[0] if self._buckets else Partition.empty()
        return self._cache.get((self._height, 0), Partition.empty())

    def _off_path_values(self, slot: int) -> list[Partition]:
        """Values of the sibling nodes along ``slot``'s root path."""
        siblings: list[Partition] = []
        index = slot
        for level in range(self._height):
            sibling_index = index ^ 1
            value = self._node_value(level, sibling_index)
            if value:
                siblings.append(value)
            index //= 2
        return siblings

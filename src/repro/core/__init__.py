"""Self-adjusting contraction trees — the paper's primary contribution.

Five tree variants share the :class:`~repro.core.base.ContractionTree`
interface:

* :class:`~repro.core.strawman.StrawmanTree` — the memoization-only baseline
  of §2: a left-aligned binary tree rebuilt over the current leaves each run.
* :class:`~repro.core.folding.FoldingTree` — §3.1, variable-width windows;
  a complete binary tree with void leaves that folds/unfolds by whole
  subtrees.
* :class:`~repro.core.randomized.RandomizedFoldingTree` — §3.2, a skip-list
  style tree whose expected height tracks the *current* window size.
* :class:`~repro.core.rotating.RotatingTree` — §4.1, fixed-width windows;
  buckets rotate round-robin and background pre-processing pre-combines the
  off-path nodes.
* :class:`~repro.core.coalescing.CoalescingTree` — §4.2, append-only
  windows; a right spine with background pre-computation of the next root.
"""

from repro.core.base import ContractionTree, TreeStats
from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.memo import MemoTable
from repro.core.partition import Partition, combine_partitions
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.core.taskgraph import GraphRecorder, TaskGraph, TaskNode

__all__ = [
    "ContractionTree",
    "TreeStats",
    "CoalescingTree",
    "FoldingTree",
    "GraphRecorder",
    "MemoTable",
    "Partition",
    "combine_partitions",
    "RandomizedFoldingTree",
    "RotatingTree",
    "StrawmanTree",
    "TaskGraph",
    "TaskNode",
]

"""Memo tables: content-addressed storage for sub-computation results.

Every contraction-tree node result is memoized under a stable content id
derived from its inputs.  A hit means the Combiner invocation is skipped
entirely (only a small memo-read cost is charged); a miss runs the combiner
and stores the result.  The cluster layer wraps this table with the
distributed in-memory cache and its fault-tolerant replicas (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Iterable, Iterator, Mapping, Protocol, runtime_checkable

from repro.common.errors import MemoStoreFull
from repro.core.partition import Partition
from repro.metrics import Phase, WorkMeter
from repro.telemetry import Telemetry

__all__ = [
    "DictMemoStore",
    "MemoBacking",
    "MemoStats",
    "MemoStore",
    "MemoStoreFull",
    "MemoTable",
]


@dataclass
class MemoStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries that failed fingerprint verification and were dropped.
    corruptions: int = 0
    #: Stores skipped because the memo budget was exhausted.
    skipped_stores: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def absorb(self, other: "MemoStats") -> "MemoStats":
        """Add another stats record into this one (cross-process merge).

        Every field is an integer count, so the merge is exact,
        associative, and order-independent — worker deltas can fold into
        the parent's table in any grouping and land on the same totals.
        """
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return self

    @classmethod
    def merge(cls, parts: Iterable["MemoStats"]) -> "MemoStats":
        """A fresh record holding the sum of ``parts``."""
        merged = cls()
        for part in parts:
            merged.absorb(part)
        return merged


@runtime_checkable
class MemoStore(Protocol):
    """The storage seam under a :class:`MemoTable`.

    A store is a mutable uid -> :class:`Partition` mapping plus an O(1)
    :meth:`space` summary.  Two implementations ship: the in-process
    :class:`DictMemoStore` (the default, bit-identical to the historical
    plain dict) and the cross-process
    :class:`~repro.core.sharedmem.SharedMemoStore` namespace view used by
    the multi-process execution backend.  A bounded store signals
    exhaustion by raising
    :class:`~repro.common.errors.MemoStoreFull` from ``__setitem__`` —
    the table degrades to recomputation instead of failing.
    """

    def __getitem__(self, uid: int) -> Partition: ...

    def __setitem__(self, uid: int, value: Partition) -> None: ...

    def __delitem__(self, uid: int) -> None: ...

    def __iter__(self) -> Iterator[int]: ...

    def __len__(self) -> int: ...

    def __contains__(self, uid: object) -> bool: ...

    def get(self, uid: int, default: "Partition | None" = None) -> "Partition | None": ...

    def pop(self, uid: int, default: "Partition | None" = None) -> "Partition | None": ...

    def items(self) -> Iterable[tuple[int, Partition]]: ...

    def values(self) -> Iterable[Partition]: ...

    def clear(self) -> None: ...

    def space(self) -> float: ...


class DictMemoStore(dict):
    """The default in-process store: a plain dict plus the store protocol.

    Subclassing ``dict`` keeps every historical access pattern (iteration
    order, ``clear``, direct item assignment by the repair layer) exactly
    as fast and exactly as ordered as the seed's bare dict.
    """

    def space(self) -> float:
        """Total abstract size (keys retained) of the stored results."""
        return float(sum(len(p) for p in self.values()))


@dataclass
class MemoTable:
    """A content-addressed result store with optional external backing.

    ``backing`` (when set by the cluster layer) is consulted on local miss
    and written through on store, letting one table transparently span the
    in-memory distributed cache and the persistent replicated layer.
    """

    entries: MemoStore = field(default_factory=DictMemoStore)
    stats: MemoStats = field(default_factory=MemoStats)
    backing: "MemoBacking | None" = None
    #: Telemetry backbone to mirror hit/miss/eviction counters into.
    telemetry: "Telemetry | None" = None
    #: Fingerprint checks on read: "off", "tainted" (only uids marked by
    #: :meth:`taint`, each verified once), or "paranoid" (every read).
    verify_mode: str = "tainted"
    #: Max retained entries; ``None`` is unbounded.  When the budget is
    #: exhausted new results are recomputed instead of memoized — the
    #: degradation ladder's strawman end.
    capacity: int | None = None
    #: True once the backing store failed; the table then runs local-only
    #: instead of failing the run.
    degraded: bool = False
    _tainted: set[int] = field(default_factory=set)

    def lookup(self, uid: int) -> Partition | None:
        found = self.entries.get(uid)
        if found is not None and not self._verified(uid, found):
            self.entries.pop(uid, None)
            self._backing_delete(uid)
            found = None
        if found is None and self.backing is not None and not self.degraded:
            found = self._backing_fetch(uid)
            if found is not None and not self._verified(uid, found):
                self._backing_delete(uid)
                found = None
            if found is not None:
                self.entries[uid] = found
        if found is None:
            self.stats.misses += 1
            if self.telemetry is not None:
                self.telemetry.count("memo.misses")
        else:
            self.stats.hits += 1
            if self.telemetry is not None:
                self.telemetry.count("memo.hits")
        return found

    def store(self, uid: int, value: Partition) -> None:
        if (
            self.capacity is not None
            and uid not in self.entries
            and len(self.entries) >= self.capacity
        ):
            self.stats.skipped_stores += 1
            if self.telemetry is not None:
                self.telemetry.count("memo.skipped_stores")
                if self.stats.skipped_stores == 1:
                    self.telemetry.instant(
                        "memo.budget_exhausted", capacity=self.capacity
                    )
            return
        try:
            self.entries[uid] = value
        except MemoStoreFull:
            # A bounded store (e.g. the shared-memory segment) is full:
            # same degradation ladder as budget exhaustion — recompute
            # next time instead of failing the run.
            self.stats.skipped_stores += 1
            if self.telemetry is not None:
                self.telemetry.count("memo.skipped_stores")
                if self.stats.skipped_stores == 1:
                    self.telemetry.instant(
                        "memo.store_full", capacity=self.capacity
                    )
            return
        if self.backing is not None and not self.degraded:
            try:
                self.backing.put(uid, value)
            except Exception as exc:
                self._degrade(exc)

    def discard(self, uid: int) -> None:
        if self.entries.pop(uid, None) is not None:
            self.stats.evictions += 1
            if self.telemetry is not None:
                self.telemetry.count("memo.evictions")
        self._tainted.discard(uid)
        self._backing_delete(uid)

    # -- corruption detection and degradation ------------------------------

    def taint(self, uids: "set[int] | None" = None) -> None:
        """Mark entries as suspect: each is fingerprint-verified on its
        next read (and the mark cleared if it passes).

        With no argument, every currently known uid is tainted — the
        eager-verification mode used right after a checkpoint restore.
        """
        if uids is None:
            self._tainted.update(self.entries)
        else:
            self._tainted.update(uids)

    def _verified(self, uid: int, value: Partition) -> bool:
        if self.verify_mode == "off":
            return True
        if self.verify_mode != "paranoid" and uid not in self._tainted:
            return True
        if value.verify_fingerprint():
            self._tainted.discard(uid)
            return True
        self._tainted.discard(uid)
        self.stats.corruptions += 1
        if self.telemetry is not None:
            self.telemetry.count("memo.corruptions")
            self.telemetry.instant("memo.corruption_dropped", uid=uid)
        return False

    def _degrade(self, exc: Exception) -> None:
        self.degraded = True
        if self.telemetry is not None:
            self.telemetry.count("memo.degraded")
            self.telemetry.instant("memo.backing_degraded", error=repr(exc))

    def reset_degraded(self) -> bool:
        """Re-arm a degraded table at the start of a fresh run.

        A backing-store failure flips :attr:`degraded` and the table runs
        local-only for the rest of the run; a new run should try the
        backing again (it may have been repaired or re-replicated in the
        meantime).  Returns True when a degraded table was reset.
        """
        if not self.degraded:
            return False
        self.degraded = False
        if self.telemetry is not None:
            self.telemetry.count("memo.degraded_resets")
            self.telemetry.instant("memo.degraded_reset")
        return True

    def _backing_fetch(self, uid: int) -> Partition | None:
        if self.backing is None or self.degraded:
            return None
        try:
            return self.backing.fetch(uid)
        except Exception as exc:
            self._degrade(exc)
            return None

    def _backing_delete(self, uid: int) -> None:
        if self.backing is None or self.degraded:
            return
        try:
            self.backing.delete(uid)
        except Exception as exc:
            self._degrade(exc)

    def get_or_compute(  # analysis: charge-in-caller-span (tree task span)
        self,
        uid: int,
        compute: Callable[[], Partition],
        meter: WorkMeter | None = None,
        read_cost: float = 0.0,
        write_cost: float = 0.0,
    ) -> Partition:
        """Return the memoized value for ``uid`` or compute and store it.

        ``compute`` is expected to charge its own combiner work to the
        meter; this helper only charges memo I/O.
        """
        found = self.lookup(uid)
        if found is not None:
            if meter is not None and read_cost:
                meter.charge(Phase.MEMO_READ, read_cost)
            return found
        value = compute()
        self.store(uid, value)
        if meter is not None and write_cost:
            meter.charge(Phase.MEMO_WRITE, write_cost)
        return value

    def __len__(self) -> int:
        return len(self.entries)

    def space(self) -> float:
        """Total abstract size of retained results (for space overheads)."""
        store_space = getattr(self.entries, "space", None)
        if store_space is not None:
            return float(store_space())
        # A bare dict passed by legacy callers/tests: summarize directly.
        return float(sum(len(p) for p in self.entries.values()))

    def replace_entries(self, mapping: Mapping[int, Partition]) -> None:
        """Reattach a drained entry snapshot onto this table's store.

        The recovery layer checkpoints entries as a plain dict (drained
        from whatever store backed the table when the checkpoint was
        written) and restores them through here, so a checkpoint taken
        under one execution backend reattaches cleanly under another.
        Bypasses capacity/stat accounting: this is state transfer, not
        computation.
        """
        self.entries.clear()
        for uid, value in mapping.items():
            self.entries[uid] = value

    def retain_only(self, live_uids: set[int]) -> int:
        """Garbage-collect entries outside ``live_uids``; returns count."""
        dead = [uid for uid in self.entries if uid not in live_uids]
        for uid in dead:
            self.discard(uid)
        return len(dead)


class MemoBacking:
    """Interface the cluster cache layer implements to back a MemoTable."""

    def fetch(self, uid: int) -> Partition | None:  # pragma: no cover - interface
        raise NotImplementedError

    def put(self, uid: int, value: Partition) -> None:  # pragma: no cover
        raise NotImplementedError

    def delete(self, uid: int) -> None:  # pragma: no cover
        raise NotImplementedError

"""The randomized folding tree (§3.2).

Instead of folding/unfolding whole binary subtrees, nodes at each level are
grouped probabilistically, skip-list style: every node ends a group with
probability 1/2, decided by a *deterministic* coin — a stable hash of the
node's content id, the level, and the tree seed.  The tree shape is
therefore a pure function of the current leaf sequence, so:

* the expected height is ``log2`` of the **current** window size (it adapts
  immediately when the window shrinks drastically — the Figure 12 case);
* an incremental run rebuilds the level structure, but every group whose
  membership is unchanged hits the memo table and costs only a memo read;
  only groups at the window edges are recomputed.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.hashing import stable_hash
from repro.core.base import ContractionTree
from repro.core.partition import Partition

_MAX_LEVELS = 128


class RandomizedFoldingTree(ContractionTree):
    """Skip-list-style contraction tree with deterministic coins."""

    def __init__(
        self,
        *args,
        seed: int = 0,
        auto_gc: bool = True,
        boundary_probability: float = 0.5,
        **kwargs,
    ) -> None:
        """``boundary_probability``: chance a node closes its group (the
        skip-list coin).  1/p is the expected group size; smaller values
        give shorter, wider trees."""
        super().__init__(*args, **kwargs)
        if not 0.0 < boundary_probability < 1.0:
            raise ValueError("boundary_probability must lie in (0, 1)")
        self.seed = seed
        self.auto_gc = auto_gc
        self.boundary_probability = boundary_probability
        self._boundary_threshold = int(boundary_probability * (1 << 32))
        self._leaves: list[Partition] = []
        self._root = Partition.empty()

    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        self._check_initial(done=True)
        self._leaves = list(leaves)
        self._root = self._build()
        return self._root

    def advance(self, added: Sequence[Partition], removed: int) -> Partition:
        self._check_initial(done=False)
        if removed < 0:
            raise ValueError("removed must be non-negative")
        if removed > len(self._leaves):
            raise ValueError(
                f"cannot remove {removed} of {len(self._leaves)} leaves"
            )
        self._leaves = self._leaves[removed:] + list(added)
        self._root = self._build()
        return self._root

    def window_leaves(self) -> list[Partition]:
        return list(self._leaves)

    def root(self) -> Partition:
        return self._root

    @property
    def height(self) -> int:
        return self.stats.height

    # -- internals ---------------------------------------------------------

    def _coin(self, uid: int, level: int) -> bool:
        """Deterministic biased coin: does this node end a group at
        ``level``?  Derived from the node's content id, so the tree shape
        is a pure function of the leaf sequence."""
        draw = stable_hash((uid, level, self.seed), salt="coin") & 0xFFFFFFFF
        return draw < self._boundary_threshold

    def _build(self) -> Partition:
        """(Re)build the level structure; memo hits skip group recomputation."""
        level: list[tuple[int, Partition]] = [(p.uid, p) for p in self._leaves]
        live_uids: set[int] = set()
        height = 0
        # Group probabilistically until at most two nodes remain, then
        # contract them into the root directly — coin-flipping the last few
        # nodes down would only add expensive near-root levels.
        while len(level) > 2 and height < _MAX_LEVELS:
            with self._level_span("rft", height + 1):
                next_level: list[tuple[int, Partition]] = []
                group: list[tuple[int, Partition]] = []
                for uid, value in level:
                    group.append((uid, value))
                    if self._coin(uid, height):
                        next_level.append(
                            self._contract_group(height, group, live_uids)
                        )
                        group = []
                if group:
                    next_level.append(self._contract_group(height, group, live_uids))
                if len(next_level) == len(level):
                    # No boundary fired (possible for tiny levels): force one
                    # merge so the construction always converges.
                    next_level = [self._contract_group(height, level, live_uids)]
            level = next_level
            height += 1
        if len(level) > 1:
            with self._level_span("rft", height + 1):
                level = [self._contract_group(height, level, live_uids)]
            height += 1

        self.stats.height = height
        self.stats.leaves = len(self._leaves)
        if self.auto_gc:
            self.memo.retain_only(live_uids)
        if not level:
            return Partition.empty()
        return level[0][1]

    def _contract_group(
        self,
        level: int,
        group: list[tuple[int, Partition]],
        live_uids: set[int],
    ) -> tuple[int, Partition]:
        child_uids = tuple(uid for uid, _ in group)
        group_uid = stable_hash((level, child_uids), salt="rft-group")
        live_uids.add(group_uid)
        if len(group) == 1:
            # Singleton groups pass through without a combiner invocation.
            return (group_uid, group[0][1])
        value = self._combine(
            [v for _, v in group],
            memo_uid=group_uid,
            node=f"rft:L{level}.g{group_uid & 0xFFFFFF:#x}",
        )
        return (group_uid, value)

"""The per-run plan IR: what a window update *will* compute.

The contraction trees are *planners*: walking their level structure, they
emit one :class:`PlanStep` per sub-computation a window update needs — Map
tasks, combiner invocations at tree positions, strawman node visits, and
per-reducer Reduce passes.  The unified executor
(:mod:`repro.core.execute`) resolves each step as it is emitted: a step
carrying a ``memo_uid`` is a **plan-level cache edge** — the plan says
"this position is memoizable under that id", and only execution decides
whether the edge is served from cache (a ``memo_read`` node in the
executed :class:`~repro.core.taskgraph.TaskGraph`) or recomputed
(``combine`` + ``memo_write`` nodes).

The split keeps two artifacts apart:

* the **plan** (this module) is independent of memo-cache state — two
  runs over the same window movement emit identical step sequences
  whether their caches are cold or warm (property-tested per variant);
* the **executed task graph** (:mod:`repro.core.taskgraph`) records what
  actually ran, with costs, and therefore *does* depend on cache state.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.metrics import Phase

#: Step kinds a plan is assembled from.
PLAN_OPS = (
    "map",      # one Map task over a split (cache edge: the split uid)
    "combine",  # a combiner invocation at a tree position
    "visit",    # a positional node visit (the strawman's reuse walk)
    "reduce",   # the per-key Reduce pass over one reducer's root
)

_LEVEL_RE = re.compile(r":L(\d+)\.")
_HEX_ID_RE = re.compile(r"0x[0-9a-f]+")

#: Fused-step kinds the compiler's fusion pass produces.
FUSED_KINDS = (
    "map-batch",    # a run of consecutive Map steps
    "map-combine",  # a Map batch plus the combine consuming all its outputs
    "combine-run",  # same-level consecutive combines for one reducer
    "visit-run",    # consecutive strawman node visits
)


@dataclass(frozen=True)
class PlanStep:
    """One planned sub-computation.

    ``memo_uid`` (when set) is the plan-level cache edge: the stable
    content id this step's result is memoizable under.  ``n_inputs``
    counts the partitions feeding the step; whether any are live (and
    hence whether a combine degenerates to a pass-through) is an
    execution-time property, not a plan property.
    """

    uid: int
    op: str
    label: str = ""
    phase: Phase | None = None
    n_inputs: int = 0
    memo_uid: int | None = None
    reducer: int | None = None
    cost_scale: float = 1.0

    @property
    def cache_edge(self) -> bool:
        """True when this step may be served by the memo cache."""
        return self.memo_uid is not None

    @property
    def level(self) -> int | None:
        """The tree level encoded in the step label (``...:L<n>....``)."""
        match = _LEVEL_RE.search(self.label)
        return int(match.group(1)) if match else None

    def signature(self) -> tuple:
        """The step's identity for plan-equality checks.

        Excludes nothing: every field of a step is a pure function of the
        planner's structural state and the window movement, never of the
        memo cache.
        """
        return (
            self.uid,
            self.op,
            self.label,
            self.phase.value if self.phase is not None else None,
            self.n_inputs,
            self.memo_uid,
            self.reducer,
            self.cost_scale,
        )

    def structural_signature(self) -> tuple:
        """The step's identity with content ids masked out.

        Map steps embed split content ids in their labels and memo uids, so
        two structurally identical runs over different data differ in
        :meth:`signature` but agree here: hex ids collapse to ``0x*`` and a
        cache edge reduces to its presence.  This is the view the plan
        cache's correctness contract is stated in.
        """
        return (
            self.uid,
            self.op,
            _HEX_ID_RE.sub("0x*", self.label),
            self.phase.value if self.phase is not None else None,
            self.n_inputs,
            self.memo_uid is not None,
            self.reducer,
            self.cost_scale,
        )


@dataclass(frozen=True)
class FusedStep:
    """A compile-time grouping of consecutive plan steps.

    Fusion never rewrites the member steps — their signatures and counts
    are preserved verbatim in ``steps`` — it only records that the group
    may be dispatched as one batch.  ``level``/``reducer``/``phase`` are
    the shared values all members agree on (``None`` where they vary, as
    in a map-combine chain crossing the map → contraction boundary).
    """

    kind: str
    start: int  # uid of the first member step
    count: int
    phase: Phase | None = None
    reducer: int | None = None
    level: int | None = None
    #: Total partitions feeding the group (sum of member ``n_inputs``).
    n_inputs: int = 0
    steps: tuple[PlanStep, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FUSED_KINDS:
            raise ValueError(f"unknown fused-step kind {self.kind!r}")

    def counts_by_op(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for planned in self.steps:
            counts[planned.op] = counts.get(planned.op, 0) + 1
        return counts

    def signature(self) -> tuple:
        return (
            self.kind,
            self.start,
            self.count,
            tuple(planned.signature() for planned in self.steps),
        )


@dataclass
class Plan:
    """The ordered step sequence of one Slider run."""

    label: str = ""
    steps: list[PlanStep] = field(default_factory=list)
    # Derived views below are cached per instance; ``step`` invalidates.
    _signature: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _structural: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _counts: dict[str, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def step(
        self,
        op: str,
        label: str = "",
        phase: Phase | None = None,
        n_inputs: int = 0,
        memo_uid: int | None = None,
        reducer: int | None = None,
        cost_scale: float = 1.0,
    ) -> PlanStep:
        if op not in PLAN_OPS:
            raise ValueError(f"unknown plan op {op!r}")
        planned = PlanStep(
            uid=len(self.steps),
            op=op,
            label=label,
            phase=phase,
            n_inputs=n_inputs,
            memo_uid=memo_uid,
            reducer=reducer,
            cost_scale=cost_scale,
        )
        self.steps.append(planned)
        self._signature = None
        self._structural = None
        self._counts = None
        return planned

    # -- derived views -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def counts_by_op(self) -> dict[str, int]:
        if self._counts is None:
            counts: dict[str, int] = {}
            for planned in self.steps:
                counts[planned.op] = counts.get(planned.op, 0) + 1
            self._counts = counts
        return dict(self._counts)

    def cache_edge_count(self) -> int:
        """How many steps carry a plan-level cache edge."""
        return sum(1 for planned in self.steps if planned.cache_edge)

    def level_structure(self) -> dict[int, int]:
        """Steps per tree level (steps without a level label are omitted)."""
        levels: dict[int, int] = {}
        for planned in self.steps:
            level = planned.level
            if level is not None:
                levels[level] = levels.get(level, 0) + 1
        return dict(sorted(levels.items()))

    def signature(self) -> tuple:
        """Order-sensitive identity of the whole plan."""
        if self._signature is None:
            self._signature = tuple(
                planned.signature() for planned in self.steps
            )
        return self._signature

    def structural_signature(self) -> tuple:
        """Order-sensitive identity with content ids masked out.

        Two runs over different window contents but the same structural
        state and motion agree here; see
        :meth:`PlanStep.structural_signature`.
        """
        if self._structural is None:
            self._structural = tuple(
                planned.structural_signature() for planned in self.steps
            )
        return self._structural

    def shape(self) -> dict:
        """The golden-test view: counts, cache edges, level structure."""
        return {
            "steps": len(self.steps),
            "ops": self.counts_by_op(),
            "cache_edges": self.cache_edge_count(),
            "levels": self.level_structure(),
        }

"""Poison-record quarantine: graceful degradation for user-code failures.

A *poison record* is an input whose ``map_fn`` raises, or a key whose
combiner merge raises.  Without a policy the exception aborts the whole
window update; with one, the failing unit is retried a bounded number of
times (with a modelled exponential backoff, charged as simulated delay
rather than wall-clock sleep) and then quarantined to a dead-letter
channel surfaced on the run result.  The rest of the window is unaffected:
a quarantined map record contributes nothing to its split's partition, and
a quarantined combine key is dropped from the merged output.

Quarantine is deterministic — the same inputs poison the same units in the
same order — so runs with a poison policy remain bit-identical across
checkpoint/restore like any other run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.mapreduce.combiners import Combiner
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class PoisonPolicy:
    """Bounded retry/backoff for user-code failures.

    ``max_retries`` is the number of *re*-invocations after the first
    failure; the backoff before retry ``n`` (1-based) is
    ``backoff_base * backoff_factor ** (n - 1)`` simulated seconds,
    recorded on the dead letter and in telemetry but never slept.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ValueError("backoff parameters must be non-negative")

    def total_backoff(self, attempts: int) -> float:
        """Simulated delay accumulated over ``attempts`` invocations."""
        return sum(
            self.backoff_base * self.backoff_factor**n
            for n in range(max(0, attempts - 1))
        )


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined unit of work, surfaced on ``SliderResult``."""

    #: Pipeline stage that failed: ``"map"`` or ``"combine"``.
    stage: str
    #: The poisoned unit: the raw input record (map) or the key (combine).
    unit: Any
    #: ``repr`` of the exception from the final attempt.
    error: str
    #: Total invocations, including retries.
    attempts: int
    #: Where it happened (split label or tree node label).
    context: str
    #: Simulated backoff delay accumulated before giving up.
    backoff: float = 0.0


class DeadLetterQueue:
    """Collects dead letters for the current run and mirrors telemetry."""

    def __init__(
        self,
        policy: PoisonPolicy,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.policy = policy
        self.telemetry = telemetry
        self.letters: list[DeadLetter] = []

    def __len__(self) -> int:
        return len(self.letters)

    def retry(
        self, fn: Callable[[], Any], first_exc: BaseException
    ) -> tuple[bool, Any, int, BaseException]:
        """Re-invoke ``fn`` under the retry budget after a first failure.

        Returns ``(ok, value, attempts, final_exception)`` where
        ``attempts`` counts the original invocation plus every retry.
        Pure user functions fail identically on each retry; the loop still
        runs so attempt counts and backoff match a real deployment.
        """
        attempts = 1
        last = first_exc
        while attempts <= self.policy.max_retries:
            attempts += 1
            try:
                return True, fn(), attempts, last
            except Exception as exc:
                last = exc
        return False, None, attempts, last

    def quarantine(
        self, stage: str, unit: Any, exc: BaseException, attempts: int, context: str
    ) -> DeadLetter:
        letter = DeadLetter(
            stage=stage,
            unit=unit,
            error=repr(exc),
            attempts=attempts,
            context=context,
            backoff=self.policy.total_backoff(attempts),
        )
        self.letters.append(letter)
        if self.telemetry is not None:
            self.telemetry.count("poison.dead_letters")
            self.telemetry.instant(
                "poison.quarantined",
                stage=stage,
                context=context,
                attempts=attempts,
                error=letter.error,
            )
        return letter

    def drain(self) -> tuple[DeadLetter, ...]:
        """Hand the accumulated letters to the run result and reset."""
        letters = tuple(self.letters)
        self.letters.clear()
        return letters


@dataclass
class PoisonContext:
    """Everything the executor and map path need to quarantine failures.

    Built by the engine when ``SliderConfig.poison_policy`` is set; absent
    (``None``) by default, in which case user-code exceptions propagate
    exactly as before.
    """

    queue: DeadLetterQueue
    #: Label describing the current unit of work, for dead-letter context.
    context: str = "run"

    def combine_handler(
        self, combiner: "Combiner"
    ) -> Callable[[Any, list[Any], BaseException], tuple[bool, Any]]:
        """Poison handler for combiner merges (``on_poison`` shape).

        Retries the merge under the policy; on success returns the
        recovered value, on exhaustion quarantines the key and signals the
        caller to drop it.
        """

        def handle(
            key: Any, values: list[Any], exc: BaseException
        ) -> tuple[bool, Any]:
            ok, value, attempts, last = self.queue.retry(
                lambda: combiner.merge(key, values), exc
            )
            if ok:
                return True, value
            self.queue.quarantine("combine", key, last, attempts, self.context)
            return False, None

        return handle

"""The per-run task-graph IR: every run reified as a DAG of sub-computations.

The paper's central object is the contraction tree as a *graph of
memoizable sub-computations* — its O(log n) update bound comes from the
depth of exactly that DAG.  This module records it explicitly: one
:class:`TaskNode` per Map task, combiner invocation, memo read/write, and
per-key Reduce, with dependency edges wired through the
:class:`~repro.core.partition.Partition` values that flow between them.

The :class:`GraphRecorder` is threaded by the Slider engine through
``_run_maps`` → tree ``advance`` → ``_reduce_all``; contraction trees feed
it from :meth:`~repro.core.base.ContractionTree._combine`, passing their
own level structure as node labels.  The graph is a pure *observation*: it
charges nothing to the :class:`~repro.metrics.WorkMeter`, and its per-phase
totals are asserted (in tests) to equal the legacy metering, making the
meter a derived view of the graph.

The cluster layer replays the graph at sub-computation granularity
(:func:`repro.cluster.executor.execute_dag`): topological readiness instead
of the coarse two-wave barrier, so the makespan tracks the critical path
rather than the per-reducer work sum.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro.core.partition import Partition
from repro.metrics import Phase

#: Node kinds, the taxonomy of sub-computations a run is made of.
NODE_KINDS = (
    "map",          # one Map task over a new split
    "shuffle",      # routing one Map task's emissions to reducers
    "combine",      # one real combiner invocation (>= 2 live inputs)
    "pass_through", # a tree position forwarding its single live child
    "memo_read",    # a memoized result served instead of recomputation
    "memo_write",   # persisting a fresh combiner result
    "reduce",       # the Reduce function on one changed key
)


@dataclass(frozen=True)
class TaskNode:
    """One sub-computation of a run.

    ``deps`` reference earlier nodes by uid (the graph is built append-only,
    so edges always point backwards and the graph is acyclic by
    construction).  ``data_size`` is the abstract size of the node's output
    (keys produced), the quantity a replay charges for network fetches.
    """

    uid: int
    kind: str
    phase: Phase
    label: str = ""
    cost: float = 0.0
    data_size: float = 0.0
    memo_hit: bool = False
    reducer: int | None = None
    split_uid: int | None = None
    memo_uid: int | None = None
    deps: tuple[int, ...] = ()


@dataclass
class TaskGraph:
    """The dependency graph of one Slider run."""

    label: str = ""
    nodes: list[TaskNode] = field(default_factory=list)
    #: Partition content id -> uid of the node that produced it this run.
    #: Negative values are *external references* (see :meth:`graft`).
    _producers: dict[int, int] = field(default_factory=dict)
    #: Permit negative deps — references to nodes of an enclosing parent
    #: graph, encoded ``-(parent_uid + 1)``.  Set on the worker-side
    #: fragment graphs the multi-process backend grafts back with
    #: :meth:`graft`; never on a run's own graph.
    allow_external: bool = False

    # -- construction --------------------------------------------------------

    @staticmethod
    def external_ref(parent_uid: int) -> int:
        """Encode a parent-graph node uid as a negative external dep."""
        return -(parent_uid + 1)

    def add(
        self,
        kind: str,
        phase: Phase,
        label: str = "",
        cost: float = 0.0,
        data_size: float = 0.0,
        memo_hit: bool = False,
        reducer: int | None = None,
        split_uid: int | None = None,
        memo_uid: int | None = None,
        deps: tuple[int, ...] = (),
    ) -> TaskNode:
        if kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind {kind!r}")
        for dep in deps:
            if 0 <= dep < len(self.nodes):
                continue
            if dep < 0 and self.allow_external:
                continue
            raise ValueError(f"dependency {dep} does not exist yet")
        node = TaskNode(
            uid=len(self.nodes),
            kind=kind,
            phase=phase,
            label=label,
            cost=cost,
            data_size=data_size,
            memo_hit=memo_hit,
            reducer=reducer,
            split_uid=split_uid,
            memo_uid=memo_uid,
            deps=tuple(sorted(set(deps))),
        )
        self.nodes.append(node)
        return node

    def set_producer(self, partition: Partition, node_uid: int) -> None:
        """Record that ``partition``'s content is produced by ``node_uid``.

        Empty partitions are never registered: the shared empty-partition
        content id would wire bogus edges between unrelated subtrees.
        """
        if partition:
            self._producers[partition.uid] = node_uid

    def producer_of(self, partition: Partition) -> int | None:
        """The node that produced ``partition`` this run, if any.

        ``None`` means the value is *initial state* for this run (carried
        over from a previous run's memoization), so no edge is needed.
        """
        if not partition:
            return None
        return self._producers.get(partition.uid)

    def deps_of(self, parts) -> tuple[int, ...]:
        """Producer uids for every partition in ``parts`` known to this run."""
        found = []
        for part in parts:
            uid = self.producer_of(part)
            if uid is not None:
                found.append(uid)
        return tuple(found)

    def seed_external_producer(self, content_uid: int, parent_uid: int) -> None:
        """Pre-register a partition produced by an *enclosing* graph's node.

        The multi-process backend seeds each worker's fragment graph with
        the parent-run producers (map/shuffle tails) its reducer consumes,
        so combine nodes built in the worker carry the same dependency
        edges an in-process run would have wired.  The reference is
        stored negative-encoded and translated back at :meth:`graft`.
        """
        if not self.allow_external:
            raise ValueError("external producers need allow_external=True")
        self._producers[content_uid] = self.external_ref(parent_uid)

    def graft(self, other: "TaskGraph") -> int:
        """Append another graph's nodes to this one; returns the uid offset.

        ``other`` is a worker-side fragment built with
        ``allow_external=True``: its internal uids are shifted by this
        graph's current length and its negative external deps translate
        back to parent uids — which always point backwards, because the
        referenced parent nodes existed before the fragment was
        dispatched.  Dep tuples are re-sorted after translation, so a
        grafted node is indistinguishable from one recorded in-process
        at the same position.  Producer registrations carry over (with
        the same shift) so later parent-side nodes (per-key reduces) can
        depend on worker-produced partitions.
        """
        offset = len(self.nodes)
        for node in other.nodes:
            deps = []
            for dep in node.deps:
                if dep < 0:
                    parent_uid = -dep - 1
                    if not 0 <= parent_uid < offset:
                        raise ValueError(
                            f"external dep {dep} of node {node.uid} does not "
                            f"name a node of the receiving graph"
                        )
                    deps.append(parent_uid)
                else:
                    deps.append(dep + offset)
            self.nodes.append(
                replace(node, uid=node.uid + offset, deps=tuple(sorted(deps)))
            )
        for content_uid, uid in other._producers.items():
            if uid >= 0:
                self._producers[content_uid] = uid + offset
        return offset

    # -- derived views -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, uid: int) -> TaskNode:
        return self.nodes[uid]

    def work_by_phase(self) -> dict[Phase, float]:
        """Per-phase work totals derived from the graph (the WorkMeter view)."""
        totals: dict[Phase, float] = {}
        for node in self.nodes:
            totals[node.phase] = totals.get(node.phase, 0.0) + node.cost
        return totals

    def total_work(self) -> float:
        return sum(node.cost for node in self.nodes)

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def dependents(self) -> dict[int, list[int]]:
        """Inverse edges: node uid -> uids that depend on it."""
        children: dict[int, list[int]] = {node.uid: [] for node in self.nodes}
        for node in self.nodes:
            for dep in node.deps:
                children[dep].append(node.uid)
        return children

    def topological_order(self) -> list[int]:
        """Node uids in dependency order.

        Append-only construction guarantees ``deps`` point backwards, so
        the natural order is already topological; this validates it.
        """
        for node in self.nodes:
            for dep in node.deps:
                if dep >= node.uid:
                    raise ValueError(
                        f"node {node.uid} depends on later node {dep}"
                    )
        return [node.uid for node in self.nodes]

    def critical_path_costs(self) -> dict[int, float]:
        """For each node, the heaviest cost chain from it to any sink
        (inclusive of the node itself) — the priority a critical-path-first
        replay schedules by."""
        downstream: dict[int, float] = {}
        children = self.dependents()
        for node in reversed(self.nodes):
            best_child = max(
                (downstream[c] for c in children[node.uid]), default=0.0
            )
            downstream[node.uid] = node.cost + best_child
        return downstream

    def critical_path_length(self) -> float:
        """The longest cost chain — a lower bound on any replay's makespan
        (before fetch penalties), however many machines are available."""
        if not self.nodes:
            return 0.0
        return max(self.critical_path_costs().values())


class GraphRecorder:
    """Builds one TaskGraph per Slider run.

    Lifecycle: ``begin_run`` opens a fresh graph, the engine and trees feed
    nodes while the run executes, ``end_run`` closes it and retains it as
    ``last_graph``.  Outside a run every recording call is a no-op, so
    background pre-processing (which runs between windows) never pollutes a
    run's graph.
    """

    def __init__(self) -> None:
        self.graph: TaskGraph | None = None
        self.last_graph: TaskGraph | None = None
        #: Reducer context set by the engine around per-tree work.
        self.reducer: int | None = None

    @property
    def active(self) -> bool:
        return self.graph is not None

    # -- lifecycle ---------------------------------------------------------

    def begin_run(self, label: str = "") -> TaskGraph:
        self.graph = TaskGraph(label=label)
        self.reducer = None
        return self.graph

    def end_run(self) -> TaskGraph | None:
        graph, self.graph = self.graph, None
        self.reducer = None
        if graph is not None:
            self.last_graph = graph
        return graph

    @contextmanager
    def reducer_context(self, reducer: int):
        previous, self.reducer = self.reducer, reducer
        try:
            yield
        finally:
            self.reducer = previous

    # -- recording ---------------------------------------------------------

    def map_task(
        self,
        split_uid: int,
        outputs: list[Partition],
        map_cost: float,
        shuffle_cost: float,
    ) -> None:
        """A fresh Map task: a map node plus a dependent shuffle node; the
        per-reducer output partitions are produced by the chain's tail."""
        if self.graph is None:
            return
        map_node = self.graph.add(
            kind="map",
            phase=Phase.MAP,
            label=f"map:{split_uid:#x}",
            cost=map_cost,
            data_size=float(sum(len(p) for p in outputs)),
            split_uid=split_uid,
        )
        tail = map_node
        if shuffle_cost > 0:
            tail = self.graph.add(
                kind="shuffle",
                phase=Phase.SHUFFLE,
                label=f"shuffle:{split_uid:#x}",
                cost=shuffle_cost,
                data_size=map_node.data_size,
                split_uid=split_uid,
                deps=(map_node.uid,),
            )
        for partition in outputs:
            self.graph.set_producer(partition, tail.uid)

    def map_reuse(
        self, split_uid: int, outputs: list[Partition], cost: float
    ) -> None:
        """A memoized Map task: its outputs are served by a memo read."""
        if self.graph is None:
            return
        node = self.graph.add(
            kind="memo_read",
            phase=Phase.MEMO_READ,
            label=f"map-memo:{split_uid:#x}",
            cost=cost,
            data_size=float(sum(len(p) for p in outputs)),
            memo_hit=True,
            split_uid=split_uid,
        )
        for partition in outputs:
            self.graph.set_producer(partition, node.uid)

    def memo_read(
        self,
        value: Partition,
        cost: float,
        label: str = "",
        memo_uid: int | None = None,
    ) -> None:
        """A memo hit inside a tree: the cached value enters the run here."""
        if self.graph is None:
            return
        node = self.graph.add(
            kind="memo_read",
            phase=Phase.MEMO_READ,
            label=label,
            cost=cost,
            data_size=float(len(value)),
            memo_hit=True,
            reducer=self.reducer,
            memo_uid=memo_uid,
        )
        self.graph.set_producer(value, node.uid)

    def combine(
        self,
        parts,
        result: Partition,
        phase: Phase,
        cost: float,
        label: str = "",
        pass_through: bool = False,
        memo_uid: int | None = None,
    ) -> TaskNode | None:
        """One combiner invocation (or pass-through) at a tree position."""
        if self.graph is None:
            return None
        node = self.graph.add(
            kind="pass_through" if pass_through else "combine",
            phase=phase,
            label=label,
            cost=cost,
            data_size=float(len(result)),
            reducer=self.reducer,
            memo_uid=memo_uid,
            deps=self.graph.deps_of(parts),
        )
        self.graph.set_producer(result, node.uid)
        return node

    def memo_write(
        self, combine_node: TaskNode | None, value: Partition, cost: float,
        memo_uid: int | None = None,
    ) -> None:
        if self.graph is None:
            return
        deps = (combine_node.uid,) if combine_node is not None else ()
        self.graph.add(
            kind="memo_write",
            phase=Phase.MEMO_WRITE,
            label=f"memo-write:{(memo_uid or 0):#x}",
            cost=cost,
            data_size=float(len(value)),
            reducer=self.reducer,
            memo_uid=memo_uid,
            deps=deps,
        )

    def reduce_key(self, root: Partition, key, cost: float) -> None:
        """The Reduce function applied to one changed key of a root."""
        if self.graph is None:
            return
        self.graph.add(
            kind="reduce",
            phase=Phase.REDUCE,
            label=f"reduce:{self.reducer}:{key!r:.32}",
            cost=cost,
            data_size=1.0,
            reducer=self.reducer,
            deps=self.graph.deps_of((root,)),
        )

    def reduce_reuse(self, root: Partition, keys: int, cost: float) -> None:
        """Memoized Reduce outputs for ``keys`` unchanged keys of a root."""
        if self.graph is None:
            return
        self.graph.add(
            kind="memo_read",
            phase=Phase.MEMO_READ,
            label=f"reduce-memo:{self.reducer}:{keys}keys",
            cost=cost,
            data_size=float(keys),
            memo_hit=True,
            reducer=self.reducer,
            deps=self.graph.deps_of((root,)),
        )

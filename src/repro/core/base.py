"""Common interface for contraction trees.

A contraction tree manages one reducer partition's sub-computations.  The
Slider engine drives it through the window lifecycle of Algorithm 1:
``initial_run`` builds the tree from all leaves, then each slide calls
``advance(added, removed)`` which deletes old leaves, inserts new ones,
propagates the change, and returns the new root partition to feed the
Reduce function.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import CombinerContractError
from repro.core.memo import MemoTable
from repro.core.partition import Partition, combine_partitions
from repro.metrics import Phase, WorkMeter
from repro.telemetry import SpanKind

if TYPE_CHECKING:  # avoid a runtime cycle with repro.mapreduce
    from repro.core.taskgraph import GraphRecorder
    from repro.mapreduce.combiners import Combiner


@dataclass
class TreeStats:
    """Counters that expose how much a tree recomputed versus reused."""

    combiner_invocations: int = 0
    combiner_reuses: int = 0
    height: int = 0
    leaves: int = 0

    def reuse_rate(self) -> float:
        total = self.combiner_invocations + self.combiner_reuses
        return self.combiner_reuses / total if total else 0.0


class ContractionTree(ABC):
    """Base class: a per-reducer incremental combiner tree.

    Subclasses implement ``initial_run`` and ``advance``.  All combiner
    work must flow through :meth:`_combine` so that work metering, memo
    I/O costs, and the invocation counters stay consistent across
    variants.
    """

    #: Set by subclasses that only support restricted slides.
    supports_remove: bool = True
    requires_commutative: bool = False

    #: Fixed work charged per real combiner invocation: the task-launch and
    #: data-movement constant a sub-computation costs on a real cluster.
    DEFAULT_INVOCATION_OVERHEAD = 2.0
    #: Per-record data-movement charge when a node passes a single live
    #: child through (relative to a real merge's per-record cost of ~1).
    PASS_THROUGH_WEIGHT = 0.2

    def __init__(
        self,
        combiner: Combiner,
        meter: WorkMeter | None = None,
        memo: MemoTable | None = None,
        combine_cost_factor: float = 1.0,
        memo_read_cost: float = 0.01,
        memo_write_cost: float = 0.02,
        invocation_overhead: float | None = None,
    ) -> None:
        if not combiner.associative:
            raise CombinerContractError(
                "contraction trees require an associative combiner"
            )
        self.combiner = combiner
        self.meter = meter if meter is not None else WorkMeter()
        self.memo = memo if memo is not None else MemoTable()
        self.combine_cost_factor = combine_cost_factor
        self.memo_read_cost = memo_read_cost
        self.memo_write_cost = memo_write_cost
        self.invocation_overhead = (
            invocation_overhead
            if invocation_overhead is not None
            else self.DEFAULT_INVOCATION_OVERHEAD
        )
        self.stats = TreeStats()
        self._ran_initial = False
        #: Task-graph recorder (set by the engine); every sub-computation
        #: flowing through :meth:`_combine` records a node while a run's
        #: graph is open.
        self.recorder: GraphRecorder | None = None

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        """Build the tree over ``leaves`` and return the root partition."""

    @abstractmethod
    def advance(
        self, added: Sequence[Partition], removed: int
    ) -> Partition:
        """Slide the window: drop ``removed`` leaves from the front, append
        ``added`` at the back, propagate, and return the new root."""

    @abstractmethod
    def window_leaves(self) -> list[Partition]:
        """The current window's leaf partitions, in window order."""

    @abstractmethod
    def root(self) -> Partition:
        """The current root partition (after the last run)."""

    # -- shared machinery ----------------------------------------------------

    def _active_recorder(self) -> GraphRecorder | None:
        """The recorder, iff a run's graph is currently open."""
        recorder = self.recorder
        if recorder is not None and recorder.active:
            return recorder
        return None

    def _level_span(self, tree: str, level: int):
        """Open a TREE_LEVEL span around one level's contraction sweep.

        The per-level work table (:mod:`repro.telemetry.worktable`)
        aggregates these spans to check the asymptotic-analysis bounds.
        """
        return self.meter.telemetry.span(
            f"{tree}:L{level}", SpanKind.TREE_LEVEL, tree=tree, level=level
        )

    def _combine(
        self,
        parts: Sequence[Partition],
        phase: Phase = Phase.CONTRACTION,
        memo_uid: int | None = None,
        cost_scale: float = 1.0,
        node: str = "",
    ) -> Partition:
        """One (possibly memoized) combiner invocation over ``parts``.

        ``cost_scale`` discounts the charged cost when the merge piggybacks
        on work another task performs anyway (e.g. the Reduce task's own
        merge pass consuming a root-and-delta union in split processing).

        ``node`` names this sub-computation's position in the tree's own
        level structure; it labels the task-graph node when a run's graph
        is being recorded.
        """
        with self.meter.telemetry.span(node or "combine", SpanKind.TASK):
            return self._combine_inner(parts, phase, memo_uid, cost_scale, node)

    def _combine_inner(  # analysis: charge-in-caller-span (_combine's task span)
        self,
        parts: Sequence[Partition],
        phase: Phase,
        memo_uid: int | None,
        cost_scale: float,
        node: str,
    ) -> Partition:
        recorder = self._active_recorder()
        if memo_uid is not None:
            cached = self.memo.lookup(memo_uid)
            if cached is not None:
                self.stats.combiner_reuses += 1
                if self.memo_read_cost:
                    self.meter.charge(Phase.MEMO_READ, self.memo_read_cost)
                if recorder is not None:
                    recorder.memo_read(
                        cached,
                        cost=self.memo_read_cost,
                        label=node or f"memo:{memo_uid:#x}",
                        memo_uid=memo_uid,
                    )
                return cached
        self.stats.combiner_invocations += 1
        non_empty = sum(1 for p in parts if p)
        if non_empty == 1:
            # A pass-through node (single live child): no merge runs, but
            # the child's data still moves through the tree position — on a
            # real cluster every tree node spills and copies its input, so
            # an overly tall tree is not free even where siblings are void.
            value = next(p for p in parts if p)
            charge = cost_scale * (
                0.5 * self.invocation_overhead
                + self.PASS_THROUGH_WEIGHT * value.record_weight(self.combiner)
            )
            self.meter.charge(phase, charge)
            if recorder is not None:
                recorder.combine(
                    parts, value, phase, charge, label=node, pass_through=True
                )
            return value
        before = self.meter.by_phase.get(phase, 0.0) if recorder else 0.0
        result = combine_partitions(
            parts,
            self.combiner,
            meter=self.meter,
            phase=phase,
            cost_factor=self.combine_cost_factor * cost_scale,
            invocation_overhead=self.invocation_overhead * cost_scale,
        )
        combine_node = None
        if recorder is not None:
            combine_node = recorder.combine(
                parts,
                result,
                phase,
                cost=self.meter.by_phase.get(phase, 0.0) - before,
                label=node,
                memo_uid=memo_uid,
            )
        if memo_uid is not None:
            self.memo.store(memo_uid, result)
            if self.memo_write_cost:
                self.meter.charge(Phase.MEMO_WRITE, self.memo_write_cost)
                if recorder is not None:
                    recorder.memo_write(
                        combine_node,
                        result,
                        cost=self.memo_write_cost,
                        memo_uid=memo_uid,
                    )
        return result

    def _memo_visit(
        self, value: Partition, cost: float, node: str = ""
    ) -> None:
        """Charge (and record) a memoized result moving through the tree —
        the strawman's per-node visit cost on reuse."""
        with self.meter.telemetry.span(node or "memo-visit", SpanKind.TASK):
            self.meter.charge(Phase.MEMO_READ, cost)
            recorder = self._active_recorder()
            if recorder is not None:
                recorder.memo_read(value, cost=cost, label=node)

    def _check_initial(self, done: bool) -> None:
        if done and self._ran_initial:
            raise RuntimeError("initial_run may only be called once")
        if not done and not self._ran_initial:
            raise RuntimeError("advance called before initial_run")
        self._ran_initial = True

    def reference_root(self) -> Partition:
        """Recompute the root non-incrementally (for verification only).

        Charges no work; used by tests and invariant checks to confirm
        that incremental maintenance matches batch recomputation.
        """
        return combine_partitions(self.window_leaves(), self.combiner, meter=None)

"""Common interface for contraction trees.

A contraction tree manages one reducer partition's sub-computations.  The
Slider engine drives it through the window lifecycle of Algorithm 1:
``initial_run`` builds the tree from all leaves, then each slide calls
``advance(added, removed)`` which deletes old leaves, inserts new ones,
propagates the change, and returns the new root partition to feed the
Reduce function.

Trees are *planners*: every sub-computation flows through
:meth:`ContractionTree._combine`, which emits a plan step and hands it to
the shared :class:`~repro.core.execute.PlanExecutor` — the single place
where memo resolution, combiner execution, work charging, and task-graph
transcription happen.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import CombinerContractError
from repro.core.execute import PlanExecutor
from repro.core.memo import MemoTable
from repro.core.partition import Partition, combine_partitions
from repro.metrics import Phase, WorkMeter
from repro.telemetry import SpanKind

if TYPE_CHECKING:  # avoid a runtime cycle with repro.mapreduce
    from repro.mapreduce.combiners import Combiner


@dataclass
class TreeStats:
    """Counters that expose how much a tree recomputed versus reused."""

    combiner_invocations: int = 0
    combiner_reuses: int = 0
    height: int = 0
    leaves: int = 0

    def reuse_rate(self) -> float:
        total = self.combiner_invocations + self.combiner_reuses
        return self.combiner_reuses / total if total else 0.0


class ContractionTree(ABC):
    """Base class: a per-reducer incremental combiner tree.

    Subclasses implement ``initial_run`` and ``advance``.  All combiner
    work must flow through :meth:`_combine` so that work metering, memo
    I/O costs, and the invocation counters stay consistent across
    variants.
    """

    #: Set by subclasses that only support restricted slides.
    supports_remove: bool = True
    requires_commutative: bool = False

    #: Fixed work charged per real combiner invocation: the task-launch and
    #: data-movement constant a sub-computation costs on a real cluster.
    DEFAULT_INVOCATION_OVERHEAD = 2.0
    #: Per-record data-movement charge when a node passes a single live
    #: child through (relative to a real merge's per-record cost of ~1).
    PASS_THROUGH_WEIGHT = 0.2

    def __init__(
        self,
        combiner: Combiner,
        meter: WorkMeter | None = None,
        memo: MemoTable | None = None,
        combine_cost_factor: float = 1.0,
        memo_read_cost: float = 0.01,
        memo_write_cost: float = 0.02,
        invocation_overhead: float | None = None,
        executor: PlanExecutor | None = None,
    ) -> None:
        if not combiner.associative:
            raise CombinerContractError(
                "contraction trees require an associative combiner"
            )
        self.combiner = combiner
        self.meter = meter if meter is not None else WorkMeter()
        self.memo = memo if memo is not None else MemoTable()
        self.combine_cost_factor = combine_cost_factor
        self.memo_read_cost = memo_read_cost
        self.memo_write_cost = memo_write_cost
        self.invocation_overhead = (
            invocation_overhead
            if invocation_overhead is not None
            else self.DEFAULT_INVOCATION_OVERHEAD
        )
        self.stats = TreeStats()
        self._ran_initial = False
        #: The unified plan executor every sub-computation flows through.
        #: The engine injects its shared executor; a standalone tree runs
        #: on a private one over its own meter.
        self.executor = (
            executor if executor is not None else PlanExecutor(meter=self.meter)
        )

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        """Build the tree over ``leaves`` and return the root partition."""

    @abstractmethod
    def advance(
        self, added: Sequence[Partition], removed: int
    ) -> Partition:
        """Slide the window: drop ``removed`` leaves from the front, append
        ``added`` at the back, propagate, and return the new root."""

    @abstractmethod
    def window_leaves(self) -> list[Partition]:
        """The current window's leaf partitions, in window order."""

    @abstractmethod
    def root(self) -> Partition:
        """The current root partition (after the last run)."""

    def plan_structure_key(self) -> tuple | None:
        """A hashable key for the tree state the next plan's shape depends on.

        Together with the window motion ``(len(added), removed)``, the key
        must *fully* determine the step sequence the next ``advance`` will
        emit — it feeds the slider layer's plan cache, and an incomplete
        key surfaces as a :class:`~repro.common.errors.CompileError` when
        a replayed run diverges from its compiled template.

        The default ``None`` declares the variant's plans data-dependent
        (randomized coins hash leaf *content*; the strawman branches on
        positional cache hits against content uids) and therefore
        uncacheable.
        """
        return None

    # -- shared machinery ----------------------------------------------------

    def _level_span(self, tree: str, level: int):
        """Open a TREE_LEVEL span around one level's contraction sweep.

        The per-level work table (:mod:`repro.telemetry.worktable`)
        aggregates these spans to check the asymptotic-analysis bounds.
        """
        return self.meter.telemetry.span(
            f"{tree}:L{level}", SpanKind.TREE_LEVEL, tree=tree, level=level
        )

    def _combine(
        self,
        parts: Sequence[Partition],
        phase: Phase = Phase.CONTRACTION,
        memo_uid: int | None = None,
        cost_scale: float = 1.0,
        node: str = "",
    ) -> Partition:
        """Plan one (possibly memoized) combiner invocation over ``parts``.

        The step is emitted into the run's plan and resolved by the
        unified executor (memo lookup, combine, charge, record) — the
        tree itself never computes.

        ``cost_scale`` discounts the charged cost when the merge piggybacks
        on work another task performs anyway (e.g. the Reduce task's own
        merge pass consuming a root-and-delta union in split processing).

        ``node`` names this sub-computation's position in the tree's own
        level structure; it labels both the plan step and the task-graph
        node the executor records.
        """
        return self.executor.combine(
            self,
            parts,
            phase=phase,
            memo_uid=memo_uid,
            cost_scale=cost_scale,
            node=node,
        )

    def _memo_visit(
        self, value: Partition, cost: float, node: str = ""
    ) -> None:
        """Plan a memoized result moving through the tree — the strawman's
        per-node visit cost on reuse; the executor charges and records it."""
        self.executor.memo_visit(value, cost, node=node)

    def _check_initial(self, done: bool) -> None:
        if done and self._ran_initial:
            raise RuntimeError("initial_run may only be called once")
        if not done and not self._ran_initial:
            raise RuntimeError("advance called before initial_run")
        self._ran_initial = True

    def reference_root(self) -> Partition:
        """Recompute the root non-incrementally (for verification only).

        Charges no work; used by tests and invariant checks to confirm
        that incremental maintenance matches batch recomputation.
        """
        return combine_partitions(self.window_leaves(), self.combiner, meter=None)

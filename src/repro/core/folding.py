"""The self-adjusting folding tree (§3.1) for variable-width windows.

A complete binary tree of capacity ``2^H`` leaves.  Live leaves occupy a
contiguous index range; slots outside it are *void* and act as the
combiner's identity.  New Map outputs fill void slots on the right; dropped
leaves become void on the left.  When the right side runs out of room the
tree *unfolds* (doubles, the old tree becoming the left child of a new
root), and when the entire left half becomes void it *folds* (the right
child is promoted to root) — exactly the expand/contract moves of Figure 2.

Change propagation recomputes only the internal nodes on root paths of
changed leaves, so an incremental run performs O(delta * log window) work.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import ContractionTree
from repro.core.partition import Partition
from repro.metrics import Phase


class FoldingTree(ContractionTree):
    """Array-backed complete binary tree with void-leaf folding."""

    def __init__(self, *args, rebuild_factor: int | None = None, **kwargs) -> None:
        """``rebuild_factor``: if set, a window more than this factor smaller
        than the tree capacity triggers a from-scratch rebuild (the paper's
        simple rebalancing strategy for rare large shrinks, §3.2)."""
        super().__init__(*args, **kwargs)
        if rebuild_factor is not None and rebuild_factor < 2:
            raise ValueError("rebuild_factor must be >= 2 when given")
        self.rebuild_factor = rebuild_factor
        self._slots: list[Partition | None] = []
        self._start = 0  # first live slot
        self._end = 0  # one past the last live slot
        self._height = 0
        self._cache: dict[tuple[int, int], Partition] = {}

    # -- public lifecycle ----------------------------------------------------

    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        self._check_initial(done=True)
        self._build_fresh(list(leaves))
        return self.root()

    def advance(self, added: Sequence[Partition], removed: int) -> Partition:
        self._check_initial(done=False)
        if removed < 0:
            raise ValueError("removed must be non-negative")
        if removed > self.size:
            raise ValueError(f"cannot remove {removed} of {self.size} leaves")

        dirty: set[int] = set()
        self._delete_front(removed, dirty)
        self._insert_back(list(added), dirty)
        self._propagate(dirty)
        self._maybe_fold()

        if self._needs_rebuild():
            self._rebuild()

        self.stats.height = self._height
        self.stats.leaves = self.size
        return self.root()

    def window_leaves(self) -> list[Partition]:
        return [p for p in self._slots[self._start : self._end] if p is not None]

    def root(self) -> Partition:
        if self.size == 0:
            return Partition.empty()
        if self._height == 0:
            leaf = self._slots[self._start]
            assert leaf is not None
            return leaf
        return self._cache.get((self._height, 0), Partition.empty())

    def plan_structure_key(self) -> tuple | None:
        """Plans are a pure function of ``(height, start, end)`` plus motion.

        Dirty-leaf propagation, unfold/fold moves, and the rebuild check
        all derive from the live index range and capacity (``2^height``);
        under a constant slide this state recurs with period ≈ the window
        size, which is what makes steady-state advances cache-hit.
        """
        return ("fold", self._height, self._start, self._end, self.rebuild_factor)

    # -- inspection ----------------------------------------------------------

    @property
    def size(self) -> int:
        return self._end - self._start

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def height(self) -> int:
        return self._height

    # -- construction --------------------------------------------------------

    def _build_fresh(self, leaves: list[Partition]) -> None:
        count = len(leaves)
        self._height = _ceil_log2(max(count, 1))
        capacity = 1 << self._height
        self._slots = list(leaves) + [None] * (capacity - count)
        self._start, self._end = 0, count
        self._cache = {}
        self._propagate(set(range(count)))
        self.stats.height = self._height
        self.stats.leaves = count

    def _rebuild(self) -> None:
        """From-scratch rebalance: garbage-collect voids, rebuild compact."""
        live = self.window_leaves()
        for key in list(self._cache):
            self._cache.pop(key)
        self._build_fresh(live)

    def _needs_rebuild(self) -> bool:
        if self.rebuild_factor is None or self.size == 0:
            return False
        return self.capacity > self.rebuild_factor * self.size

    # -- slides ----------------------------------------------------------------

    def _delete_front(self, removed: int, dirty: set[int]) -> None:
        for index in range(self._start, self._start + removed):
            self._slots[index] = None
            dirty.add(index)
        self._start += removed
        if self._start == self._end:
            # Window emptied entirely; reset to a fresh minimal tree.
            self._slots = []
            self._start = self._end = 0
            self._height = 0
            self._cache = {}
            dirty.clear()

    def _insert_back(self, added: list[Partition], dirty: set[int]) -> None:
        if not added:
            return
        if not self._slots:
            self._build_fresh(added)
            dirty.clear()
            return
        for leaf in added:
            if self._end == self.capacity:
                self._unfold()
            self._slots[self._end] = leaf
            dirty.add(self._end)
            self._end += 1

    def _unfold(self) -> None:
        """Double capacity: the current tree becomes the left child."""
        self._slots.extend([None] * self.capacity)
        self._height += 1
        # Array indexing keeps (level, index) valid for the old (left) half,
        # so the cache carries over untouched; only the new root levels will
        # be recomputed when dirty paths propagate.

    def _maybe_fold(self) -> None:
        """Halve the tree while the whole left half is void (Figure 2, T3)."""
        while self._height > 0 and self._start >= self.capacity // 2:
            half = self.capacity // 2
            self._slots = self._slots[half:]
            self._start -= half
            self._end -= half
            old_height = self._height
            self._height -= 1
            shifted: dict[tuple[int, int], Partition] = {}
            for (level, index), value in self._cache.items():
                if level >= old_height:
                    continue  # old root level disappears
                offset = 1 << (old_height - 1 - level)
                if index >= offset:
                    shifted[(level, index - offset)] = value
            self._cache = shifted

    # -- change propagation ------------------------------------------------

    def _propagate(self, dirty_leaves: set[int]) -> None:
        """Recompute internal nodes on the root paths of dirty leaves."""
        dirty = dirty_leaves
        for level in range(1, self._height + 1):
            parents = {index // 2 for index in dirty}
            with self._level_span("fold", level):
                for parent in parents:
                    left = self._node_value(level - 1, parent * 2)
                    right = self._node_value(level - 1, parent * 2 + 1)
                    self._cache[(level, parent)] = self._combine(
                        [left, right],
                        phase=Phase.CONTRACTION,
                        node=f"fold:L{level}.{parent}",
                    )
            dirty = parents

    def _node_value(self, level: int, index: int) -> Partition:
        if level == 0:
            if index >= self.capacity:
                return Partition.empty()
            leaf = self._slots[index]
            return leaf if leaf is not None else Partition.empty()
        return self._cache.get((level, index), Partition.empty())


def _ceil_log2(n: int) -> int:
    return max(0, (n - 1).bit_length())

"""The strawman contraction tree (§2).

The strawman design memoizes the output of every sub-computation and, on
each run, walks the whole contraction tree over the current window: every
node is *visited*, its memoized output reused when its inputs are unchanged
at that position, and recomputed otherwise.  Two properties make it the
paper's linear-time baseline (§9, "Incremental Computation"):

* memoization is **positional** (task identity = tree position): a window
  slide that drops leaves from the front shifts every surviving leaf's
  position, so almost every internal node sees "changed" inputs and is
  recomputed;
* even a memo hit costs data movement proportional to the node's output
  (the memoized result must be transferred to the contraction phase), so a
  run is never cheaper than a linear visit of the window — "time
  proportional to the size of the whole data, albeit with a small
  constant".

Figure 8 measures self-adjusting contraction trees against exactly this
baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import ContractionTree
from repro.core.partition import Partition


class StrawmanTree(ContractionTree):
    """Left-aligned binary tree with positional memoization."""

    def __init__(self, *args, visit_cost: float = 0.15, **kwargs) -> None:
        """``visit_cost``: work units charged per key of a *reused* node's
        output — the data-movement constant of the strawman design."""
        super().__init__(*args, **kwargs)
        self.visit_cost = visit_cost
        #: (level, index) -> (left_uid, right_uid, value)
        self._cache: dict[tuple[int, int], tuple[int, int, Partition]] = {}
        self._leaves: list[Partition] = []
        self._root = Partition.empty()

    def initial_run(self, leaves: Sequence[Partition]) -> Partition:
        self._check_initial(done=True)
        self._leaves = list(leaves)
        self._root = self._build()
        return self._root

    def advance(self, added: Sequence[Partition], removed: int) -> Partition:
        self._check_initial(done=False)
        if removed < 0:
            raise ValueError("removed must be non-negative")
        if removed > len(self._leaves):
            raise ValueError(
                f"cannot remove {removed} of {len(self._leaves)} leaves"
            )
        self._leaves = self._leaves[removed:] + list(added)
        self._root = self._build()
        return self._root

    def window_leaves(self) -> list[Partition]:
        return list(self._leaves)

    def root(self) -> Partition:
        return self._root

    # -- internals ---------------------------------------------------------

    def _build(self) -> Partition:
        """Walk the whole tree; reuse positionally-unchanged nodes."""
        level = list(self._leaves)
        height = 0
        fresh: dict[tuple[int, int], tuple[int, int, Partition]] = {}
        while len(level) > 1:
            next_level: list[Partition] = []
            with self._level_span("straw", height + 1):
                for i in range(0, len(level) - 1, 2):
                    left, right = level[i], level[i + 1]
                    position = (height, i // 2)
                    cached = self._cache.get(position)
                    if cached is not None and cached[:2] == (left.uid, right.uid):
                        value = cached[2]
                        self.stats.combiner_reuses += 1
                        # Data movement for the memoized output (the strawman's
                        # linear visit cost).
                        self._memo_visit(
                            value,
                            self.visit_cost * max(1, len(value)),
                            node=f"straw:L{height}.{i // 2}",
                        )
                    else:
                        value = self._combine(
                            [left, right], node=f"straw:L{height}.{i // 2}"
                        )
                    fresh[position] = (left.uid, right.uid, value)
                    next_level.append(value)
            if len(level) % 2:
                next_level.append(level[-1])  # odd node promotes unchanged
            level = next_level
            height += 1
        self._cache = fresh
        self.stats.height = height
        self.stats.leaves = len(self._leaves)
        return level[0] if level else Partition.empty()

    def live_memo_uids(self) -> set[int]:
        """Positional caching is self-pruning; nothing extra to GC."""
        return set()

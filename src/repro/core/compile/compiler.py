"""The plan compiler: explicit passes from a Plan to a CompiledPlan.

The pipeline has three passes, each pure over the plan IR:

1. **template extraction** — the op sequence and structural signature the
   executor's replay mode validates live execution against;
2. **fusion** — maximal runs of consecutive steps sharing
   ``(op, phase, reducer, level)`` collapse into
   :class:`~repro.core.plan.FusedStep` groups (same-level combine runs,
   map batches, strawman visit runs), and a map batch that feeds exactly
   one combine absorbs it as a ``map-combine`` chain;
3. **kernel-hint assignment** — combine members of a fused group are
   marked for vectorized batch dispatch *iff* the job's combiner is
   fusion-legal (:func:`~repro.core.compile.kernels.fusion_legal`:
   registered kernel + declared associative and commutative algebra).

Fusion preserves the member steps verbatim — a CompiledPlan's shape,
counts, and signatures are exactly its source plan's — so golden plan
fixtures gate the compiler for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.compile.kernels import fusion_legal
from repro.core.plan import FusedStep, Plan, PlanStep
from repro.metrics import Phase

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.mapreduce.combiners import Combiner

#: Ops whose consecutive runs the fusion pass may group.
_FUSABLE_OPS = ("map", "combine", "visit")
_RUN_KINDS = {"map": "map-batch", "combine": "combine-run", "visit": "visit-run"}


@dataclass(frozen=True)
class CompiledPlan:
    """A reusable, optimized form of one run's Plan.

    ``ops``/``kernel_hints`` are the executor's replay template: one entry
    per plan step, in emission order.  ``fused`` is the fusion pass's
    grouping; ``plan`` is the source plan, served verbatim on cache hits
    so downstream consumers (shape goldens, reports) see the identical
    artifact.
    """

    plan: Plan
    ops: tuple[str, ...]
    kernel_hints: tuple[bool, ...]
    fused: tuple[FusedStep, ...] = ()
    #: Whether the job's combiner admitted batch dispatch at compile time.
    fusion_legal: bool = False

    def __len__(self) -> int:
        return len(self.ops)

    def shape(self) -> dict:
        return self.plan.shape()

    def structural_signature(self) -> tuple:
        return self.plan.structural_signature()

    def fused_counts(self) -> dict[str, int]:
        """Fused groups per kind — the compile telemetry's summary view."""
        counts: dict[str, int] = {}
        for group in self.fused:
            counts[group.kind] = counts.get(group.kind, 0) + 1
        return counts

    def batched_step_count(self) -> int:
        """Steps that will dispatch through a batch kernel on replay."""
        return sum(1 for hint in self.kernel_hints if hint)


def _group_key(step: PlanStep) -> tuple:
    return (step.op, step.phase, step.reducer, step.level)


def _segments(steps: list[PlanStep]) -> list[tuple[int, int, tuple]]:
    """Maximal runs of consecutive steps sharing a group key."""
    segments: list[tuple[int, int, tuple]] = []
    start = 0
    while start < len(steps):
        key = _group_key(steps[start])
        end = start + 1
        while end < len(steps) and _group_key(steps[end]) == key:
            end += 1
        segments.append((start, end - start, key))
        start = end
    return segments


def compile_plan(
    plan: Plan,
    combiner: "Combiner | None" = None,
    fusion: bool = True,
) -> CompiledPlan:
    """Run the pass pipeline over ``plan``."""
    steps = plan.steps
    ops = tuple(step.op for step in steps)
    legal = bool(fusion and combiner is not None and fusion_legal(combiner))

    fused: list[FusedStep] = []
    hinted: set[int] = set()
    segments = _segments(steps) if fusion else []
    consumed: set[int] = set()  # segment indices absorbed into a chain
    for index, (start, count, key) in enumerate(segments):
        if index in consumed:
            continue
        op = key[0]
        if op not in _FUSABLE_OPS:
            continue
        members = list(steps[start : start + count])
        kind = _RUN_KINDS[op]
        if op == "map" and index + 1 < len(segments):
            # A map batch feeding exactly one combine of all its outputs
            # fuses across the map → contraction edge (the coalescing
            # delta, a rotating bucket build).
            next_start, next_count, next_key = segments[index + 1]
            if (
                next_key[0] == "combine"
                and next_count == 1
                and steps[next_start].n_inputs == count
            ):
                members.append(steps[next_start])
                kind = "map-combine"
                consumed.add(index + 1)
        if len(members) < 2:
            continue
        group = FusedStep(
            kind=kind,
            start=members[0].uid,
            count=len(members),
            phase=key[1] if kind != "map-combine" else None,
            reducer=key[2],
            level=key[3],
            n_inputs=sum(member.n_inputs for member in members),
            steps=tuple(members),
        )
        fused.append(group)
        if legal:
            hinted.update(
                member.uid for member in members if member.op == "combine"
            )

    kernel_hints = tuple(uid in hinted for uid in range(len(steps)))
    return CompiledPlan(
        plan=plan,
        ops=ops,
        kernel_hints=kernel_hints,
        fused=tuple(fused),
        fusion_legal=legal,
    )


#: Step shapes that make up one reducer's contraction pass: combiner
#: invocations plus the strawman's positional memo visits.
_CONTRACTION_OPS = ("combine", "visit")
_CONTRACTION_PHASES = (Phase.CONTRACTION, Phase.MEMO_READ)


def contraction_slices(
    compiled: CompiledPlan, num_reducers: int
) -> dict[int, tuple[int, int]]:
    """Per-reducer ``[start, end)`` template ranges of the contraction pass.

    The multi-process backend dispatches each reducer's contraction as
    one unit: the worker replays exactly ``compiled.ops[start:end]`` and
    the parent skips the same range.  A reducer appears in the result
    only when its contraction steps form one *contiguous* run of the
    template (they always do for the planners that declare structure
    keys — maps first, then reducer 0..R-1 in order, then reduces — but
    this is verified, not assumed); a reducer with scattered steps, or
    none, simply stays on the in-process path.
    """
    indices: dict[int, list[int]] = {}
    for i, step in enumerate(compiled.plan.steps):
        if (
            step.op in _CONTRACTION_OPS
            and step.phase in _CONTRACTION_PHASES
            and step.reducer is not None
            and 0 <= step.reducer < num_reducers
        ):
            indices.setdefault(step.reducer, []).append(i)
    slices: dict[int, tuple[int, int]] = {}
    for reducer, found in indices.items():
        start, end = found[0], found[-1] + 1
        if found == list(range(start, end)):
            slices[reducer] = (start, end)
    return slices


def slice_template(compiled: CompiledPlan, start: int, end: int) -> CompiledPlan:
    """A standalone mini-template covering ``compiled``'s ``[start, end)``.

    The worker-side executor replays this slice exactly as the parent
    would have replayed those steps in place: same ops, same kernel
    hints, cursor starting at zero.  Fused groups are not carried — the
    per-step hints are what the replay path consumes.
    """
    if not 0 <= start <= end <= len(compiled.ops):
        raise ValueError(
            f"slice [{start}, {end}) outside the {len(compiled.ops)}-step plan"
        )
    plan = Plan(label=f"{compiled.plan.label}[{start}:{end}]")
    plan.steps.extend(compiled.plan.steps[start:end])
    return CompiledPlan(
        plan=plan,
        ops=compiled.ops[start:end],
        kernel_hints=compiled.kernel_hints[start:end],
        fused=(),
        fusion_legal=compiled.fusion_legal,
    )

"""Vectorized batch kernels for the numeric combiners.

A kernel replaces the per-key Python ``combiner.merge`` loop of
:func:`~repro.core.partition.combine_partitions` with numpy array sums
batched *across the key dimension* — the payoff of dispatching a fused
combine through the compiled plan.  The contract is strict bit-identity
with the scalar path:

* **summation order** — Python's ``sum`` is a sequential left fold, and
  numpy's ``ndarray.sum`` is pairwise, which rounds differently.  Float
  columns are therefore accumulated column-by-column (``acc = acc +
  mat[:, j]``), reproducing the scalar fold's exact IEEE operation
  sequence per key.
* **type preservation** — all-int value lists sum through int64 (exact
  under the registration bounds) back to Python ints, so ``5`` never
  becomes ``5.0`` — repr-based output fingerprints and stable content
  hashes depend on it.  Mixed or unexpected types fall back to the
  combiner's own ``merge`` per key.
* **cost parity** — per-key costs accumulate through the combiner's own
  ``value_size``/``merge_cost`` hooks, in the scalar path's dict order.

Kernels register against *exact* combiner types: a subclass may override
any hook, so it never inherits its parent's kernel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.partition import Partition
from repro.metrics import Phase, WorkMeter

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids a runtime cycle
    from repro.mapreduce.combiners import Combiner

try:  # pragma: no cover - numpy is a baked-in dependency everywhere we run
    import numpy as _np
except Exception:  # pragma: no cover - kernels degrade to scalar execution
    _np = None

#: int64 column sums are exact while every value fits in 2**40 and a key
#: merges fewer than 2**20 values: |total| < 2**60 < 2**63 at every prefix.
_INT_VALUE_BOUND = 1 << 40
_INT_COUNT_BOUND = 1 << 20


class BatchKernel(ABC):
    """One combiner type's vectorized key-batched merge."""

    name: str = "batch"

    @abstractmethod
    def batch(
        self, merged_lists: dict[Any, list[Any]], combiner: "Combiner"
    ) -> tuple[dict[Any, Any], float]:
        """Merge every key's value list; return ``(entries, cost)``.

        Must reproduce the scalar loop of ``combine_partitions`` exactly:
        same entry values *and types*, same dict order, same float cost
        accumulation sequence.
        """


def _cost_pass(
    merged_lists: dict[Any, list[Any]],
    results: dict[Any, Any],
    combiner: "Combiner",
) -> tuple[dict[Any, Any], float]:
    """Assemble entries and fold costs in the scalar path's dict order."""
    entries: dict[Any, Any] = {}
    cost = 0.0
    for key, values in merged_lists.items():
        if len(values) == 1:
            entries[key] = values[0]
            cost += combiner.value_size(values[0]) * 0.1  # copy-through cost
        else:
            entries[key] = results[key]
            cost += combiner.merge_cost(key, values)
    return entries, cost


def _left_fold_columns(mat: "Any", count: int) -> "Any":
    """Sequential per-column accumulation matching Python's ``sum`` fold."""
    acc = _np.zeros(mat.shape[0], dtype=_np.float64)
    for j in range(count):
        acc = acc + mat[:, j]
    return acc


class SumKernel(BatchKernel):
    """Batched ``sum(values)`` for :class:`SumCombiner`/:class:`CountCombiner`."""

    name = "sum"

    def batch(
        self, merged_lists: dict[Any, list[Any]], combiner: "Combiner"
    ) -> tuple[dict[Any, Any], float]:
        results: dict[Any, Any] = {}
        int_groups: dict[int, tuple[list[Any], list[list[int]]]] = {}
        float_groups: dict[int, tuple[list[Any], list[list[float]]]] = {}
        for key, values in merged_lists.items():
            if len(values) == 1:
                continue
            if (
                len(values) < _INT_COUNT_BOUND
                and all(type(v) is int for v in values)
                and all(-_INT_VALUE_BOUND < v < _INT_VALUE_BOUND for v in values)
            ):
                keys, rows = int_groups.setdefault(len(values), ([], []))
            elif all(type(v) is float for v in values):
                keys, rows = float_groups.setdefault(len(values), ([], []))
            else:
                results[key] = combiner.merge(key, values)
                continue
            keys.append(key)
            rows.append(values)
        for _count, (keys, rows) in int_groups.items():
            sums = _np.array(rows, dtype=_np.int64).sum(axis=1).tolist()
            for key, total in zip(keys, sums):
                results[key] = total
        for count, (keys, rows) in float_groups.items():
            mat = _np.array(rows, dtype=_np.float64)
            for key, total in zip(keys, _left_fold_columns(mat, count).tolist()):
                results[key] = total
        return _cost_pass(merged_lists, results, combiner)


class VectorSumKernel(BatchKernel):
    """Batched ``(count, vector)`` accumulation for :class:`VectorSumCombiner`."""

    name = "vector-sum"

    def batch(
        self, merged_lists: dict[Any, list[Any]], combiner: "Combiner"
    ) -> tuple[dict[Any, Any], float]:
        results: dict[Any, Any] = {}
        groups: dict[tuple[int, int], tuple[list, list, list]] = {}
        for key, values in merged_lists.items():
            if len(values) == 1:
                continue
            if not self._vectorizable(values):
                results[key] = combiner.merge(key, values)
                continue
            dim = len(values[0][1])
            keys, count_rows, cubes = groups.setdefault(
                (len(values), dim), ([], [], [])
            )
            keys.append(key)
            count_rows.append([v[0] for v in values])
            cubes.append([v[1] for v in values])
        for (count, _dim), (keys, count_rows, cubes) in groups.items():
            counts = _np.array(count_rows, dtype=_np.int64).sum(axis=1).tolist()
            cube = _np.array(cubes, dtype=_np.float64)  # (keys, values, dim)
            acc = cube[:, 0, :].copy()
            for j in range(1, count):
                acc = acc + cube[:, j, :]
            totals = acc.tolist()
            for key, total_count, total in zip(keys, counts, totals):
                results[key] = (total_count, tuple(total))
        return _cost_pass(merged_lists, results, combiner)

    @staticmethod
    def _vectorizable(values: Sequence[Any]) -> bool:
        if len(values) >= _INT_COUNT_BOUND:
            return False
        first = values[0]
        if type(first) is not tuple or len(first) != 2:
            return False
        dim = len(first[1]) if type(first[1]) is tuple else -1
        if dim <= 0:
            return False
        for count, vec in values:
            if type(count) is not int or not (
                -_INT_VALUE_BOUND < count < _INT_VALUE_BOUND
            ):
                return False
            if type(vec) is not tuple or len(vec) != dim:
                return False
            if not all(type(x) is float for x in vec):
                return False
        return True


# -- the registry ------------------------------------------------------------

_KERNELS: dict[type, BatchKernel] = {}


def register_kernel(combiner_type: type, kernel: BatchKernel) -> None:
    """Register ``kernel`` for the *exact* type ``combiner_type``."""
    _KERNELS[combiner_type] = kernel


def unregister_kernel(combiner_type: type) -> None:
    _KERNELS.pop(combiner_type, None)


def kernel_for(combiner: "Combiner") -> BatchKernel | None:
    """The registered kernel for this combiner's exact type, if usable."""
    if _np is None:
        return None
    return _KERNELS.get(type(combiner))


def registered_kernel_types() -> tuple[type, ...]:
    """Every combiner type carrying a kernel — the law gate's extra corpus."""
    return tuple(_KERNELS)


def fusion_legal(combiner: "Combiner") -> bool:
    """May combines of this combiner be batched into a FusedStep?

    Legality is tied to the declared algebra the contract checker's law
    gate falsifies: batching re-associates the merge over the key
    dimension (``associative``) and a batch member may sit anywhere in a
    fused run (``commutative``); an order-sensitive combiner like the
    NetSession ``AuditCombiner`` is never fused even if a kernel exists
    for it.  ``registered_kernel_types`` feeds these combiners into
    ``repro.analysis --self`` so a falsified law fails CI before a kernel
    could ship.
    """
    return (
        kernel_for(combiner) is not None
        and combiner.associative
        and combiner.commutative
    )


def fused_combine_partitions(  # analysis: charge-in-caller-span (tree task span)
    partitions: Sequence[Partition],
    combiner: "Combiner",
    kernel: BatchKernel,
    meter: WorkMeter | None = None,
    phase: Phase = Phase.CONTRACTION,
    cost_factor: float = 1.0,
    invocation_overhead: float = 0.0,
) -> Partition:
    """Kernel-dispatched twin of :func:`~repro.core.partition.combine_partitions`.

    Identical gather, charge, and result semantics; only the per-key merge
    loop is replaced by ``kernel.batch``.  Poison handling is not
    supported here — the executor falls back to the scalar path whenever a
    poison context is configured.
    """
    non_empty = [p for p in partitions if p]
    if not non_empty:
        return Partition.empty()
    if len(non_empty) == 1:
        return non_empty[0]

    merged_lists: dict[Any, list[Any]] = {}
    for partition in non_empty:
        for key, value in partition.entries.items():
            merged_lists.setdefault(key, []).append(value)

    entries, cost = kernel.batch(merged_lists, combiner)
    if meter is not None:
        meter.charge(phase, cost * cost_factor + invocation_overhead)
    return Partition(entries)


def _register_defaults() -> None:
    from repro.mapreduce.combiners import (
        CountCombiner,
        SumCombiner,
        VectorSumCombiner,
    )

    register_kernel(SumCombiner, SumKernel())
    register_kernel(CountCombiner, SumKernel())
    register_kernel(VectorSumCombiner, VectorSumKernel())


_register_defaults()

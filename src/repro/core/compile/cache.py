"""The plan cache: compiled plans keyed by window-motion signature.

A key is assembled by the slider layer from everything a run's plan shape
is a function of: the engine config fingerprint, the job identity, the
motion ``(len(added), removed)``, and every tree's
``plan_structure_key()``.  Variants whose plans depend on window
*content* (randomized coins, strawman positional reuse) return ``None``
there and never enter the cache.

Eviction is LRU.  The capacity must cover the steady-state motion period
— a folding tree's ``(height, start, end)`` recurs with period ≈ the
window size under a constant slide — or the cache thrashes; the default
``SliderConfig.plan_cache_capacity`` is sized well above typical windows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.compile.compiler import CompiledPlan


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Lookups skipped entirely: chaos active, cache disabled by config.
    bypasses: int = 0
    #: Lookups skipped because a tree declared its plans data-dependent.
    uncacheable: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of keyed lookups that hit; 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "uncacheable": self.uncacheable,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """An LRU map from motion keys to compiled plans."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[tuple, CompiledPlan] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> CompiledPlan | None:
        compiled = self._entries.get(key)
        if compiled is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return compiled

    def store(self, key: tuple, compiled: CompiledPlan) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

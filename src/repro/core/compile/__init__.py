"""The plan-compile layer: cache, fuse, and batch-dispatch plans.

Sits strictly between the plan IR and everything above it: this package
may read :mod:`repro.core.plan` and :mod:`repro.core.partition` but never
the executor, the planners, or the slider/cluster/recovery layers (the
``repro.analysis`` layering gate enforces both directions).

* :func:`compile_plan` — the pass pipeline: template extraction, fusion,
  kernel-hint assignment (:mod:`repro.core.compile.compiler`);
* :class:`PlanCache` — LRU of compiled plans keyed by window-motion
  signature (:mod:`repro.core.compile.cache`);
* :mod:`repro.core.compile.kernels` — bit-identical vectorized batch
  kernels for the numeric combiners, plus the fusion-legality rule tied
  to the declared combiner algebra.
"""

from repro.core.compile.cache import PlanCache, PlanCacheStats
from repro.core.compile.compiler import (
    CompiledPlan,
    compile_plan,
    contraction_slices,
    slice_template,
)
from repro.core.compile.kernels import (
    BatchKernel,
    fused_combine_partitions,
    fusion_legal,
    kernel_for,
    register_kernel,
    registered_kernel_types,
    unregister_kernel,
)

__all__ = [
    "BatchKernel",
    "CompiledPlan",
    "PlanCache",
    "PlanCacheStats",
    "compile_plan",
    "contraction_slices",
    "fused_combine_partitions",
    "fusion_legal",
    "kernel_for",
    "register_kernel",
    "registered_kernel_types",
    "slice_template",
    "unregister_kernel",
]

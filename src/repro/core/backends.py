"""The execution-backend seam: who runs a run's contraction pass, where.

Everything below the seam is unchanged substrate — planners emit steps,
the :class:`~repro.core.execute.PlanExecutor` resolves them, the memo
table absorbs results.  The seam decides *which process* does that for
each reducer's contraction:

* :class:`InProcessBackend` — the default: every reducer advances in the
  engine's process, exactly the historical path, bit for bit.
* :class:`ProcessBackend` — dispatches each reducer's certified,
  compiled contraction slice to a persistent forked worker
  (:mod:`repro.core.parallel`) over a shared-memory memo store
  (:mod:`repro.core.sharedmem`), then merges the results back in
  reducer order so outputs, work breakdowns, span trees, task graphs,
  and counters are bit-identical to the in-process run.

Dispatch is gated, not assumed — the parallel-safety analysis (PR 9)
becomes a *runtime* precondition here.  A run dispatches only when every
rung of the ladder holds; any miss falls back to in-process for the run
or the reducer, with a telemetry trace of why:

1. the run replays a compiled plan (fresh plans and chaos runs replan
   value-dependently and stay local);
2. the (variant, window-mode) pair holds a green
   ``parallel-safety-certificate/v1`` (the frozen allowlist below is
   tied to the live ``repro.analysis.shared`` certification by test);
3. the job's combiner passed the fusion law gate at compile time;
4. no poison policy (quarantine bookkeeping is engine-local) and no
   cluster simulation (its cache layer is a process-local handle);
5. per reducer: the payload pickles, and its template slice is one
   contiguous run of the compiled plan.

This module lives in ``repro.core`` and therefore never imports the
slider layer; the engine reaches it duck-typed, the same contract the
planner and time simulator already follow.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any

from repro.core.compile.compiler import contraction_slices, slice_template
from repro.core.memo import DictMemoStore, MemoStore
from repro.core.parallel import WorkerPool, build_payload
from repro.core.sharedmem import SharedMemoStore
from repro.telemetry import SpanKind
from repro.telemetry.merge import graft_spans, replay_events

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.core.base import ContractionTree
    from repro.core.partition import Partition

#: Execution backend names SliderConfig accepts.
EXECUTION_BACKENDS = ("inprocess", "process")

#: (tree variant, window mode) pairs holding a green
#: ``parallel-safety-certificate/v1``.  Frozen copy of
#: ``repro.analysis.shared.CERTIFIED_VARIANTS`` — duplicated because the
#: core layer must not import the analysis layer; a blocking test asserts
#: the two stay equal AND that certification still passes, so a variant
#: losing its certificate fails CI before this backend can dispatch it.
CERTIFIED_PARALLEL_VARIANTS = frozenset(
    (
        ("folding", "variable"),
        ("randomized", "variable"),
        ("strawman", "variable"),
        ("rotating", "fixed"),
        ("coalescing", "append"),
    )
)


class ExecutionBackend:
    """Where a run's per-reducer contraction work executes."""

    name = "abstract"

    def tree_store(self, engine: Any, reducer: int) -> MemoStore:
        """The memo store backing one reducer's tree."""
        raise NotImplementedError

    def contract(
        self,
        engine: Any,
        per_reducer: "list[list[Partition]]",
        removed: int,
    ) -> "list[Partition]":
        """Advance every tree for one window slide; returns the roots."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pool/segment resources (idempotent)."""


def _advance_inprocess(
    engine: Any, per_reducer: "list[list[Partition]]", removed: int
) -> "list[Partition]":
    return engine.planner.advance_trees(
        lambda r, tree: tree.advance(per_reducer[r], removed)
    )


class InProcessBackend(ExecutionBackend):
    """The historical single-process path — the bit-identical default."""

    name = "inprocess"

    def tree_store(self, engine: Any, reducer: int) -> MemoStore:
        return DictMemoStore()

    def contract(
        self,
        engine: Any,
        per_reducer: "list[list[Partition]]",
        removed: int,
    ) -> "list[Partition]":
        return _advance_inprocess(engine, per_reducer, removed)


class ProcessBackend(ExecutionBackend):
    """Dispatch certified compiled contraction slices to forked workers."""

    name = "process"

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._store: SharedMemoStore | None = None
        self._pool: WorkerPool | None = None
        #: Set on the first worker failure: the pool is not trusted again
        #: and every later run stays in-process (degradation, not error).
        self.broken = False

    # -- the store seam -----------------------------------------------------

    def store(self, engine: Any) -> SharedMemoStore:
        if self._store is None:
            self._store = SharedMemoStore(namespaces=engine.job.num_reducers)
        return self._store

    def tree_store(self, engine: Any, reducer: int) -> MemoStore:
        if engine.cluster is not None:
            # The cluster simulation's cache layer backs the memo table
            # with process-local handles; its runs never dispatch, so its
            # trees keep the plain in-process store.
            return DictMemoStore()
        return self.store(engine).namespace(reducer)

    # -- dispatch ------------------------------------------------------------

    def _eligible(self, engine: Any) -> bool:
        compiled = engine.executor.replay_template
        if compiled is None:
            return False
        if self.broken or self.workers < 1:
            return False
        if engine.cluster is not None or engine.cache is not None:
            return False
        if engine.executor.poison is not None:
            return False
        if not compiled.fusion_legal:
            return False
        pair = (engine.config.tree_variant(), engine.mode.value)
        return pair in CERTIFIED_PARALLEL_VARIANTS

    def _ensure_pool(self, engine: Any) -> WorkerPool | None:
        if self._pool is None and not self.broken:
            size = min(self.workers, engine.job.num_reducers)
            try:
                self._pool = WorkerPool(size, self.store(engine))
            except Exception:
                self.broken = True
                engine.telemetry.instant("backend.pool_failed")
        return None if self.broken else self._pool

    def contract(
        self,
        engine: Any,
        per_reducer: "list[list[Partition]]",
        removed: int,
    ) -> "list[Partition]":
        if not self._eligible(engine):
            engine.telemetry.count("backend.inprocess_runs")
            return _advance_inprocess(engine, per_reducer, removed)
        compiled = engine.executor.replay_template
        slices = contraction_slices(compiled, engine.job.num_reducers)
        graph = engine.executor.recorder.graph
        blobs: dict[int, bytes] = {}
        for reducer, tree in enumerate(engine.trees):
            if reducer not in slices:
                continue
            start, end = slices[reducer]
            externals = []
            if graph is not None:
                for leaf in per_reducer[reducer]:
                    producer = graph.producer_of(leaf)
                    if producer is not None:
                        externals.append((leaf.uid, producer))
            payload = build_payload(
                tree,
                reducer,
                per_reducer[reducer],
                removed,
                slice_template(compiled, start, end),
                externals,
                label=f"reducer:{reducer}",
            )
            try:
                blobs[reducer] = pickle.dumps(
                    payload, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                engine.telemetry.count("backend.unpicklable_fallbacks")
        pool = self._ensure_pool(engine) if blobs else None
        submitted: dict[int, int] = {}
        if pool is not None:
            for reducer, blob in blobs.items():
                worker = reducer % len(pool)
                try:
                    pool.submit(worker, blob)
                    submitted[reducer] = worker
                except RuntimeError:
                    self.broken = True
                    engine.telemetry.instant(
                        "backend.worker_failed", worker=worker
                    )
                    break
        if submitted:
            engine.telemetry.count("backend.dispatch_runs")
            engine.telemetry.count(
                "backend.dispatched_reducers", len(submitted)
            )
        else:
            engine.telemetry.count("backend.inprocess_runs")
        # Merge strictly in reducer order under the same span/scope
        # structure as the in-process path — this ordering is what makes
        # the float additions, span positions, and graph uids identical.
        roots: "list[Partition]" = []
        for reducer, tree in enumerate(engine.trees):
            with engine.telemetry.span(
                f"reducer:{reducer}", SpanKind.TASK, reducer=reducer
            ):
                with engine.executor.reducer_scope(reducer):
                    root = None
                    if reducer in submitted:
                        root = self._merge_one(
                            engine, reducer, tree, slices[reducer], pool,
                            submitted[reducer],
                        )
                    if root is None:
                        root = tree.advance(per_reducer[reducer], removed)
                    roots.append(root)
        return roots

    def _merge_one(
        self,
        engine: Any,
        reducer: int,
        tree: "ContractionTree",
        slice_range: tuple[int, int],
        pool: WorkerPool | None,
        worker: int,
    ) -> "Partition | None":
        """Receive one worker result and fold it in; None → run locally.

        The in-process fallback after a worker failure is safe because
        the shared store's writes are content-addressed and idempotent:
        a half-finished worker leaves warm cache, never wrong state.
        """
        assert pool is not None
        try:
            result = pool.receive(worker)
        except RuntimeError as exc:
            self.broken = True
            engine.telemetry.count("backend.worker_fallbacks")
            engine.telemetry.instant(
                "backend.worker_failed", worker=worker, error=str(exc)
            )
            return None
        executor = engine.executor
        telemetry = engine.telemetry
        offset = telemetry.now()
        start, end = slice_range
        executor.skip_replay(start, end)
        replay_events(telemetry, result["events"])
        graft_spans(telemetry, result["spans"], offset)
        graph = executor.recorder.graph
        if graph is not None:
            graph.graft(result["graph"])
        if executor.probe is not None:
            for op, kwargs in result["probe_events"]:
                executor.probe.on_step(op, **kwargs)
        tree.__dict__.update(result["state"])
        tree.memo.stats.absorb(result["memo_stats"])
        tree.memo._tainted = set(result["tainted"])
        return result["root"]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None


def make_backend(name: str, workers: int) -> ExecutionBackend:
    """Construct the backend a config names."""
    if name == "inprocess":
        return InProcessBackend()
    if name == "process":
        return ProcessBackend(workers)
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of "
        f"{EXECUTION_BACKENDS}"
    )

"""The Partition algebra: the data held at every contraction-tree node.

A Partition maps keys to combined values.  Combining two partitions applies
the job's Combiner per key; the work charged is the combiner's declared merge
cost, scaled by the job's combine cost factor.  Charges go through the
meter's :class:`~repro.telemetry.Telemetry` backbone, so they attribute to
every open span (run, window update, phase, tree level, task) at once.
Partitions carry a stable content id so identical results share memo
entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.common.hashing import content_id, stable_hash
from repro.metrics import Phase, WorkMeter

if TYPE_CHECKING:  # avoid a runtime cycle with repro.mapreduce
    from repro.mapreduce.combiners import Combiner

#: Called when a combiner raises for one key: ``(key, values, exc)``.
#: Returns ``(recovered, value)`` — recovered True splices ``value`` in as
#: the merge result (a retry succeeded), False drops the key (quarantined).
#: An absent handler re-raises the original exception.
PoisonHandler = Callable[[Any, list[Any], BaseException], "tuple[bool, Any]"]


class Partition:
    """An immutable key -> combined-value mapping with a content id."""

    __slots__ = ("entries", "uid")

    def __init__(self, entries: Mapping[Any, Any], uid: int | None = None) -> None:
        self.entries: dict[Any, Any] = dict(entries)
        if uid is None:
            uid = _fingerprint_entries(self.entries)
        self.uid = uid

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Partition":
        return _EMPTY

    @staticmethod
    def from_value_lists(  # analysis: charge-in-caller-span (map-task span)
        buffer: Mapping[Any, list[Any]],
        combiner: Combiner,
        meter: WorkMeter | None = None,
        phase: Phase = Phase.MAP,
        on_poison: PoisonHandler | None = None,
    ) -> "Partition":
        """Build a partition from per-key value lists (a Map task's buffer)."""
        entries: dict[Any, Any] = {}
        cost = 0.0
        for key, values in buffer.items():
            if len(values) == 1:
                entries[key] = values[0]
            else:
                try:
                    entries[key] = combiner.merge(key, values)
                except Exception as exc:
                    if on_poison is None:
                        raise
                    recovered, value = on_poison(key, values, exc)
                    if not recovered:
                        continue
                    entries[key] = value
                cost += combiner.merge_cost(key, values)
        if meter is not None and cost:
            meter.charge(phase, cost)
        return Partition(entries)

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.uid == other.uid and self.entries == other.entries

    def __hash__(self) -> int:
        return self.uid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition({len(self.entries)} keys, uid={self.uid:#x})"

    def get(self, key: Any, default: Any = None) -> Any:
        return self.entries.get(key, default)

    def keys(self):
        return self.entries.keys()

    def items(self):
        return self.entries.items()

    def record_weight(self, combiner: Combiner) -> float:
        """Total abstract size of the partition, in combiner size units."""
        return sum(combiner.value_size(v) for v in self.entries.values())

    def verify_fingerprint(self) -> bool:
        """Check that ``entries`` still hash to the recorded ``uid``.

        The uid assigned at construction doubles as a content fingerprint:
        any later mutation of the entries (bit rot, a chaos
        ``CorruptionEvent``) makes the recomputed fingerprint diverge.  The
        shared empty partition carries a symbolic uid rather than a
        computed one, so it is matched by identity of that uid.
        """
        if not self.entries:
            return self.uid in (_EMPTY.uid, _fingerprint_entries(self.entries))
        return self.uid == _fingerprint_entries(self.entries)


def _fingerprint_entries(entries: Mapping[Any, Any]) -> int:
    # Key order must not matter: XOR per-entry hashes (stable, order-free).
    acc = stable_hash(len(entries), salt="pfp")
    for key, value in entries.items():
        acc ^= stable_hash((key, _coerce(value)), salt="pent")
    return acc


def _coerce(value: Any) -> Any:
    """Best-effort stable projection of a combined value."""
    if isinstance(value, frozenset):
        return tuple(sorted(value, key=repr))
    return value


_EMPTY = Partition({}, uid=content_id("empty-partition"))


def combine_partitions(  # analysis: charge-in-caller-span (tree task span)
    partitions: Sequence[Partition],
    combiner: Combiner,
    meter: WorkMeter | None = None,
    phase: Phase = Phase.CONTRACTION,
    cost_factor: float = 1.0,
    invocation_overhead: float = 0.0,
    on_poison: PoisonHandler | None = None,
) -> Partition:
    """Combine several partitions into one, charging per-key merge cost.

    This is the single Combiner-invocation primitive every contraction tree
    is built from.  Associativity of the combiner makes any combination
    order produce the same result.

    ``invocation_overhead`` is a fixed charge per *real* merge (two or more
    non-empty inputs), modelling the task-launch and data-movement cost a
    combiner invocation has on a real cluster; pass-throughs are free.
    """
    non_empty = [p for p in partitions if p]
    if not non_empty:
        return Partition.empty()
    if len(non_empty) == 1:
        return non_empty[0]

    merged_lists: dict[Any, list[Any]] = {}
    for partition in non_empty:
        for key, value in partition.entries.items():
            merged_lists.setdefault(key, []).append(value)

    entries: dict[Any, Any] = {}
    cost = 0.0
    for key, values in merged_lists.items():
        if len(values) == 1:
            entries[key] = values[0]
            cost += combiner.value_size(values[0]) * 0.1  # copy-through cost
        else:
            try:
                entries[key] = combiner.merge(key, values)
            except Exception as exc:
                if on_poison is None:
                    raise
                recovered, value = on_poison(key, values, exc)
                if not recovered:
                    continue
                entries[key] = value
            cost += combiner.merge_cost(key, values)
    if meter is not None:
        meter.charge(phase, cost * cost_factor + invocation_overhead)
    return Partition(entries)

"""A cross-process memo store over one shared-memory segment.

The multi-process execution backend runs each reducer's contraction in a
worker process; the results those workers memoize must land where the
parent (and every other worker, next run) can see them.  This module
provides that plane: a :class:`SharedMemoStore` owns a single
``multiprocessing.shared_memory`` segment — created *before* the worker
pool forks, so every process addresses the same mapping without any
name-attach or ``Manager`` proxy traffic — and exposes per-reducer
:class:`SharedNamespace` views that satisfy the
:class:`~repro.core.memo.MemoStore` protocol, so a
:class:`~repro.core.memo.MemoTable` runs over shared memory without
knowing it.

Layout (all integers little-endian)::

    [header][slot index][data region ...........................]

* **header** — magic/version, the data-region bump pointer, live-byte
  and used-slot counters, and per-namespace ``(live entries, key count)``
  pairs so ``len()`` and ``space()`` are O(1) and, being integer sums,
  independent of insertion order across processes.
* **slot index** — open-addressed (linear probing) ``(key hash, blob
  offset)`` pairs.  Offset 0 means never used (probe stops), offset 1 a
  tombstone (probe continues, slot reusable).
* **data region** — append-only length-prefixed blobs:
  ``[ns, key, key_count, payload length, payload CRC32, payload]`` with
  the payload a pickled :class:`~repro.core.partition.Partition`.  A
  CRC mismatch on read is treated as a missing entry (the table's
  content-fingerprint machinery then recomputes) — bit rot costs work,
  never correctness, mirroring the recovery layer's contract.

Overwrites and deletes leave dead bytes behind; when an insert would not
fit (or the index runs out of fresh slots) the store first **compacts**
— rewrites live blobs densely and rebuilds the index under the lock —
and only raises :class:`~repro.common.errors.MemoStoreFull` when even
the compacted segment cannot take the entry.  ``MemoTable.store`` maps
that to a skipped store: the degradation ladder's recompute end.

One ``multiprocessing.Lock`` (fork-inherited, like the segment) guards
every multi-step operation; entries are immutable once written, so a
reader holding the lock only as long as one probe + copy is sufficient
for serializability.
"""

from __future__ import annotations

import pickle
import struct
import weakref
import zlib
from collections.abc import MutableMapping
from multiprocessing import get_context
from multiprocessing import shared_memory
from typing import Any, Iterator

from repro.common.errors import MemoStoreFull
from repro.core.partition import Partition

_MAGIC = 0x534C4D454D4F3101  # "SLMEMO1" | version 1
_U64 = struct.Struct("<Q")
_SLOT = struct.Struct("<QQ")  # (key hash, blob offset)
_BLOB = struct.Struct("<IQIII")  # (ns, key, key_count, payload len, crc)

_EMPTY = 0  # slot offset: never used — a probe chain ends here
_TOMB = 1   # slot offset: deleted — probing continues, slot reusable

_HDR_DATA_HEAD = 8
_HDR_LIVE_BYTES = 16
_HDR_USED_SLOTS = 24
_HDR_NS = 32  # per-namespace (live entries, key count) pairs start here

_KEY_MASK = (1 << 64) - 1


def _mix(ns: int, key: int) -> int:
    """Deterministic 64-bit slot hash of a (namespace, key) pair."""
    h = (key * 0x9E3779B97F4A7C15 + (ns + 1) * 0xBF58476D1CE4E5B9) & _KEY_MASK
    h ^= h >> 29
    return h or 1  # 0 is reserved for empty slots


class SharedMemoStore:
    """One shared segment holding every reducer's memo namespace.

    Create it in the parent *before* forking workers; the segment, its
    mapping, and the lock are all inherited by the fork, so no process
    ever attaches by name.  The store is a process-local handle — it
    must never be pickled (the parallel-safety audit's process-local
    rule); payloads ship through it, not with it.
    """

    def __init__(
        self,
        namespaces: int,
        segment_bytes: int = 64 * 1024 * 1024,
        slots: int = 1 << 14,
    ) -> None:
        if namespaces < 1:
            raise ValueError(f"need at least one namespace, got {namespaces}")
        self.namespaces = namespaces
        self.slots = slots
        self._index_start = _HDR_NS + 16 * namespaces
        self._data_start = self._index_start + slots * _SLOT.size
        if segment_bytes <= self._data_start:
            raise ValueError(
                f"segment of {segment_bytes} bytes cannot hold the header "
                f"and {slots} index slots ({self._data_start} bytes)"
            )
        self._shm = shared_memory.SharedMemory(
            create=True, size=segment_bytes
        )
        self.capacity = self._shm.size
        self._lock = get_context("fork").Lock()
        self._buf = self._shm.buf
        self._buf[: self._data_start] = bytes(self._data_start)
        _U64.pack_into(self._buf, 0, _MAGIC)
        _U64.pack_into(self._buf, _HDR_DATA_HEAD, self._data_start)
        self._finalizer = weakref.finalize(self, _release, self._shm)

    # -- raw header accessors (caller holds the lock) -----------------------

    def _get(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _set(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def _ns_base(self, ns: int) -> int:
        if not 0 <= ns < self.namespaces:
            raise ValueError(f"namespace {ns} out of range")
        return _HDR_NS + 16 * ns

    # -- slot probing (caller holds the lock) -------------------------------

    def _probe(self, ns: int, key: int) -> tuple[int | None, int | None]:
        """Find ``(slot of the live entry, first reusable slot)``.

        Either element may be ``None``: no live entry, or no free/
        tombstoned slot anywhere in the (full) table.
        """
        khash = _mix(ns, key)
        reusable: int | None = None
        slot = khash % self.slots
        for _ in range(self.slots):
            base = self._index_start + slot * _SLOT.size
            stored_hash, offset = _SLOT.unpack_from(self._buf, base)
            if offset == _EMPTY:
                return None, slot if reusable is None else reusable
            if offset == _TOMB:
                if reusable is None:
                    reusable = slot
            elif stored_hash == khash:
                blob_ns, blob_key = _BLOB.unpack_from(self._buf, offset)[:2]
                if blob_ns == ns and blob_key == key:
                    return slot, reusable
            slot = (slot + 1) % self.slots
        return None, reusable

    def _slot_offset(self, slot: int) -> int:
        return _SLOT.unpack_from(
            self._buf, self._index_start + slot * _SLOT.size
        )[1]

    def _write_slot(self, slot: int, khash: int, offset: int) -> None:
        _SLOT.pack_into(
            self._buf, self._index_start + slot * _SLOT.size, khash, offset
        )

    # -- blob I/O (caller holds the lock) -----------------------------------

    def _read_blob(self, offset: int) -> tuple[int, int, int, Any | None]:
        """Return ``(ns, key, key_count, value)``; value None on CRC rot."""
        ns, key, key_count, plen, crc = _BLOB.unpack_from(self._buf, offset)
        start = offset + _BLOB.size
        payload = bytes(self._buf[start : start + plen])
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return ns, key, key_count, None
        return ns, key, key_count, pickle.loads(payload)

    def _append_blob(self, ns: int, key: int, value: Partition) -> tuple[int, int, int]:
        """Write a blob at the bump pointer; returns (offset, size, keys).

        Raises :class:`MemoStoreFull` when the segment cannot take it
        even after compaction.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        size = _BLOB.size + len(payload)
        head = self._get(_HDR_DATA_HEAD)
        if head + size > self.capacity:
            self._compact()
            head = self._get(_HDR_DATA_HEAD)
            if head + size > self.capacity:
                raise MemoStoreFull(
                    f"shared memo segment full: {size}-byte entry does not "
                    f"fit in {self.capacity - head} free bytes"
                )
        key_count = len(value)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        _BLOB.pack_into(self._buf, head, ns, key, key_count, len(payload), crc)
        start = head + _BLOB.size
        self._buf[start : start + len(payload)] = payload
        self._set(_HDR_DATA_HEAD, head + size)
        self._set(_HDR_LIVE_BYTES, self._get(_HDR_LIVE_BYTES) + size)
        return head, size, key_count

    def _blob_size(self, offset: int) -> int:
        plen = _BLOB.unpack_from(self._buf, offset)[3]
        return _BLOB.size + plen

    def _compact(self) -> None:
        """Rewrite live blobs densely and rebuild the index in place.

        Every live blob is re-appended (in its original data order, so
        iteration order survives compaction) into a scratch copy of the
        data region, then the region and index are overwritten.  Runs
        under the caller's lock; O(segment size).
        """
        live: list[tuple[int, int, bytes]] = []
        offset = self._data_start
        head = self._get(_HDR_DATA_HEAD)
        while offset < head:
            size = self._blob_size(offset)
            ns, key = _BLOB.unpack_from(self._buf, offset)[:2]
            slot, _ = self._probe(ns, key)
            if slot is not None and self._slot_offset(slot) == offset:
                live.append(
                    (ns, key, bytes(self._buf[offset : offset + size]))
                )
            offset += size
        # Rebuild: clear the index, then re-append each live blob.
        index_bytes = self.slots * _SLOT.size
        self._buf[self._index_start : self._data_start] = bytes(index_bytes)
        self._set(_HDR_USED_SLOTS, 0)
        cursor = self._data_start
        for ns, key, blob in live:
            self._buf[cursor : cursor + len(blob)] = blob
            khash = _mix(ns, key)
            _, free = self._probe(ns, key)
            assert free is not None  # index was just cleared
            self._write_slot(free, khash, cursor)
            self._set(_HDR_USED_SLOTS, self._get(_HDR_USED_SLOTS) + 1)
            cursor += len(blob)
        self._set(_HDR_DATA_HEAD, cursor)
        self._set(_HDR_LIVE_BYTES, cursor - self._data_start)

    # -- the store operations ------------------------------------------------

    def put(self, ns: int, key: int, value: Partition) -> None:
        self._ns_base(ns)
        if not 0 <= key <= _KEY_MASK:
            raise MemoStoreFull(
                f"key {key:#x} does not fit the shared index's 64-bit keys"
            )
        with self._lock:
            slot, reusable = self._probe(ns, key)
            if slot is None and reusable is None:
                self._compact()
                slot, reusable = self._probe(ns, key)
                if slot is None and reusable is None:
                    raise MemoStoreFull(
                        f"shared memo index full ({self.slots} slots)"
                    )
            offset, size, key_count = self._append_blob(ns, key, value)
            # The append may have compacted the segment, which rebuilds
            # the index and moves every slot — probe again against the
            # rebuilt index.  (Compaction only ever frees slots, so the
            # guard above still holds: a usable slot exists.)
            slot, reusable = self._probe(ns, key)
            base = self._ns_base(ns)
            if slot is not None:
                # Overwrite: retire the old blob's accounting.
                old = self._slot_offset(slot)
                old_keys = _BLOB.unpack_from(self._buf, old)[2]
                self._set(
                    _HDR_LIVE_BYTES,
                    self._get(_HDR_LIVE_BYTES) - self._blob_size(old),
                )
                self._set(base + 8, self._get(base + 8) - old_keys + key_count)
                self._write_slot(slot, _mix(ns, key), offset)
            else:
                assert reusable is not None
                if self._slot_offset(reusable) == _EMPTY:
                    self._set(
                        _HDR_USED_SLOTS, self._get(_HDR_USED_SLOTS) + 1
                    )
                self._write_slot(reusable, _mix(ns, key), offset)
                self._set(base, self._get(base) + 1)
                self._set(base + 8, self._get(base + 8) + key_count)

    def get(self, ns: int, key: int) -> Partition | None:
        self._ns_base(ns)
        if not 0 <= key <= _KEY_MASK:
            return None
        with self._lock:
            slot, _ = self._probe(ns, key)
            if slot is None:
                return None
            offset = self._slot_offset(slot)
            _, _, _, value = self._read_blob(offset)
            if value is None:
                # Payload bit rot: drop the entry; the table recomputes.
                self._tombstone(ns, slot, offset)
                return None
            return value

    def delete(self, ns: int, key: int) -> bool:
        self._ns_base(ns)
        if not 0 <= key <= _KEY_MASK:
            return False
        with self._lock:
            slot, _ = self._probe(ns, key)
            if slot is None:
                return False
            self._tombstone(ns, slot, self._slot_offset(slot))
            return True

    def _tombstone(self, ns: int, slot: int, offset: int) -> None:
        key_count = _BLOB.unpack_from(self._buf, offset)[2]
        self._write_slot(slot, 0, _TOMB)
        self._set(
            _HDR_LIVE_BYTES, self._get(_HDR_LIVE_BYTES) - self._blob_size(offset)
        )
        base = self._ns_base(ns)
        self._set(base, self._get(base) - 1)
        self._set(base + 8, self._get(base + 8) - key_count)

    def keys(self, ns: int) -> list[int]:
        """Live keys of one namespace, in blob (≈ insertion) order."""
        self._ns_base(ns)
        found: list[int] = []
        with self._lock:
            offset = self._data_start
            head = self._get(_HDR_DATA_HEAD)
            while offset < head:
                blob_ns, blob_key = _BLOB.unpack_from(self._buf, offset)[:2]
                if blob_ns == ns:
                    slot, _ = self._probe(blob_ns, blob_key)
                    if slot is not None and self._slot_offset(slot) == offset:
                        found.append(blob_key)
                offset += self._blob_size(offset)
        return found

    def clear(self, ns: int) -> None:
        base = self._ns_base(ns)
        with self._lock:
            for slot in range(self.slots):
                offset = self._slot_offset(slot)
                if offset in (_EMPTY, _TOMB):
                    continue
                if _BLOB.unpack_from(self._buf, offset)[0] == ns:
                    self._write_slot(slot, 0, _TOMB)
                    self._set(
                        _HDR_LIVE_BYTES,
                        self._get(_HDR_LIVE_BYTES) - self._blob_size(offset),
                    )
            self._set(base, 0)
            self._set(base + 8, 0)

    def count(self, ns: int) -> int:
        base = self._ns_base(ns)
        with self._lock:
            return self._get(base)

    def key_count(self, ns: int) -> int:
        base = self._ns_base(ns)
        with self._lock:
            return self._get(base + 8)

    def namespace(self, ns: int) -> "SharedNamespace":
        return SharedNamespace(self, ns)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the segment (idempotent); the owner unlinks it."""
        self._finalizer()

    def __reduce__(self):  # pragma: no cover - defensive
        raise TypeError(
            "SharedMemoStore is a process-local handle and must not be "
            "pickled; workers inherit it through fork"
        )


def _release(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass


class SharedNamespace(MutableMapping):
    """One reducer's :class:`~repro.core.memo.MemoStore` view of the store.

    Satisfies the mapping protocol a :class:`~repro.core.memo.MemoTable`
    (and the lifecycle/recovery layers above it) drive, so the table is
    oblivious to which side of a process boundary its entries live on.
    """

    __slots__ = ("store", "ns")

    def __init__(self, store: SharedMemoStore, ns: int) -> None:
        self.store = store
        self.ns = ns

    def __getitem__(self, key: int) -> Partition:
        value = self.store.get(self.ns, key)
        if value is None:
            raise KeyError(key)
        return value

    def __setitem__(self, key: int, value: Partition) -> None:
        self.store.put(self.ns, key, value)

    def __delitem__(self, key: int) -> None:
        if not self.store.delete(self.ns, key):
            raise KeyError(key)

    def __iter__(self) -> Iterator[int]:
        return iter(self.store.keys(self.ns))

    def __len__(self) -> int:
        return self.store.count(self.ns)

    def clear(self) -> None:
        self.store.clear(self.ns)

    def space(self) -> float:
        """O(1): the namespace's key-count sum is maintained at put/delete."""
        return float(self.store.key_count(self.ns))

    def __reduce__(self):  # pragma: no cover - defensive
        raise TypeError(
            "SharedNamespace views must not be pickled; workers reach the "
            "store through the fork-inherited handle"
        )

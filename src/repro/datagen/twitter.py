"""Synthetic Twitter data for the information-propagation case study (§8.1).

A preferential-attachment follow graph plus a tweet stream where URLs spread
through retweet cascades.  Only the *shape* matters for the case study: a
heavy-tailed follower distribution and a stream that can be partitioned into
time intervals with ~5 % appends per interval (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngStream


@dataclass(frozen=True)
class Tweet:
    """One (re)post of a URL: who posted, what, when, and from whom."""

    user: int
    url: int
    timestamp: int
    source_user: int  # -1 for an original post, else the user retweeted from

    def as_record(self) -> tuple:
        return (self.user, self.url, self.timestamp, self.source_user)


class TwitterGraph:
    """A preferential-attachment follow graph."""

    def __init__(self, num_users: int, seed: int = 0, mean_degree: int = 4):
        if num_users < 2:
            raise ValueError("need at least two users")
        self.num_users = num_users
        rng = RngStream(seed, "datagen.twitter.graph")
        #: follower -> followees (who this user receives tweets from).
        self.followees: dict[int, list[int]] = {0: [], 1: [0]}
        degree_pool: list[int] = [0, 1]  # repeated per in-degree
        for user in range(2, num_users):
            followees: set[int] = set()
            links = 1 + int(rng.integers(0, mean_degree))
            for _ in range(links):
                if rng.coin(0.7) and degree_pool:
                    target = int(
                        degree_pool[int(rng.integers(0, len(degree_pool)))]
                    )
                else:
                    target = int(rng.integers(0, user))
                if target != user:
                    followees.add(target)
            self.followees[user] = sorted(followees)
            degree_pool.extend(followees)
            degree_pool.append(user)

    def followers_of(self, user: int) -> list[int]:
        return [
            follower
            for follower, followees in self.followees.items()
            if user in followees
        ]


class TweetGenerator:
    """Generates a time-ordered tweet stream with retweet cascades."""

    def __init__(
        self,
        graph: TwitterGraph,
        num_urls: int = 200,
        seed: int = 0,
        retweet_probability: float = 0.35,
    ) -> None:
        self.graph = graph
        self.num_urls = num_urls
        self.retweet_probability = retweet_probability
        self._rng = RngStream(seed, "datagen.twitter.tweets")
        self._clock = 0
        #: url -> users who have already posted it (cascade frontier).
        self._spreaders: dict[int, list[int]] = {}
        self._follower_index: dict[int, list[int]] = {}
        for follower, followees in graph.followees.items():
            for followee in followees:
                self._follower_index.setdefault(followee, []).append(follower)

    def tweets(self, count: int) -> list[Tweet]:
        out = []
        for _ in range(count):
            out.append(self._next_tweet())
        return out

    def _next_tweet(self) -> Tweet:
        self._clock += 1
        if self._spreaders and self._rng.coin(self.retweet_probability):
            tweet = self._try_retweet()
            if tweet is not None:
                return tweet
        return self._original_post()

    def _original_post(self) -> Tweet:
        user = int(self._rng.integers(0, self.graph.num_users))
        url = int(self._rng.integers(0, self.num_urls))
        self._spreaders.setdefault(url, []).append(user)
        return Tweet(user=user, url=url, timestamp=self._clock, source_user=-1)

    def _try_retweet(self) -> Tweet | None:
        urls = list(self._spreaders)
        url = urls[int(self._rng.integers(0, len(urls)))]
        spreaders = self._spreaders[url]
        source = spreaders[int(self._rng.integers(0, len(spreaders)))]
        followers = self._follower_index.get(source, [])
        if not followers:
            return None
        user = followers[int(self._rng.integers(0, len(followers)))]
        self._spreaders[url].append(user)
        return Tweet(user=user, url=url, timestamp=self._clock, source_user=source)

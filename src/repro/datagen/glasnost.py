"""Synthetic Glasnost measurement traces for the monitoring case study (§8.2).

Each *test run* is a packet trace between a measurement server and a user's
host; the analysis extracts the minimum RTT per run and takes the median per
server over a 3-month window.  Monthly volumes can be set to reproduce
Table 3's file counts and window-change percentages exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import RngStream

#: Monthly pcap-file counts for the paper's measurement server (Jan..Nov
#: 2011), solved from Table 3's nine 3-month window totals and window-change
#: sizes; these reproduce every "No. of pcap files" and "% change size"
#: entry of the table exactly.
TABLE3_MONTHLY_RUNS = [1147, 1176, 1710, 1976, 1941, 1441, 1333, 1551, 1500, 1726, 3310]
TABLE3_MONTH_NAMES = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
]


@dataclass(frozen=True)
class TestRun:
    """One Glasnost test run: a server, a user host, and its packet RTTs."""

    __test__ = False  # not a pytest class, despite the name

    server: int
    host: int
    month: int
    rtts_ms: tuple[float, ...]

    def min_rtt(self) -> float:
        return min(self.rtts_ms)

    def as_record(self) -> tuple:
        return (self.server, self.host, self.month, self.rtts_ms)


class GlasnostTraceGenerator:
    """Generates per-month batches of test runs for one measurement server."""

    def __init__(
        self,
        seed: int = 0,
        num_servers: int = 1,
        packets_per_run: int = 20,
        base_rtt_ms: float = 40.0,
    ) -> None:
        self.num_servers = num_servers
        self.packets_per_run = packets_per_run
        self.base_rtt_ms = base_rtt_ms
        self._rng = RngStream(seed, "datagen.glasnost")
        self._host_counter = 0

    def month_of_runs(self, month: int, count: int) -> list[TestRun]:
        """``count`` test runs stamped with ``month``."""
        runs = []
        for _ in range(count):
            server = int(self._rng.integers(0, self.num_servers))
            host = self._host_counter
            self._host_counter += 1
            # Each host sits at some network distance from the server; packet
            # RTTs are that distance plus queueing jitter.
            distance = self.base_rtt_ms * (
                0.3 + 2.0 * float(self._rng.random())
            )
            jitter = self._rng.exponential(5.0, size=self.packets_per_run)
            rtts = tuple(round(distance + float(j), 3) for j in jitter)
            runs.append(
                TestRun(server=server, host=host, month=month, rtts_ms=rtts)
            )
        return runs

    def table3_months(self) -> list[list[TestRun]]:
        """Eleven months of runs matching Table 3's volumes."""
        return [
            self.month_of_runs(month, count)
            for month, count in enumerate(TABLE3_MONTHLY_RUNS)
        ]

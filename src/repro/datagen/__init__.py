"""Synthetic data generators.

Deterministic, seeded substitutes for the paper's datasets (see DESIGN.md's
substitution table): Zipfian text for the Wikipedia corpus, unit-cube points
for the clustering inputs, a preferential-attachment Twitter graph with
retweet cascades, Glasnost-style RTT traces, and NetSession-style client
logs.
"""

from repro.datagen.glasnost import GlasnostTraceGenerator, TestRun
from repro.datagen.netsession import ClientLogGenerator, LogRecord
from repro.datagen.points import PointGenerator
from repro.datagen.text import TextCorpusGenerator
from repro.datagen.twitter import TweetGenerator, TwitterGraph

__all__ = [
    "GlasnostTraceGenerator",
    "TestRun",
    "ClientLogGenerator",
    "LogRecord",
    "PointGenerator",
    "TextCorpusGenerator",
    "TweetGenerator",
    "TwitterGraph",
]

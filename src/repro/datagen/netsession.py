"""Synthetic NetSession-style client logs for the CDN case study (§8.3).

Clients of a hybrid CDN keep tamper-evident logs of their peer-to-peer
transfers and upload them periodically for auditing.  The variable-width
window comes from availability: only a fraction of clients is online to
upload in a given week, so each week's input size varies (Table 5's x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.hashing import stable_hash
from repro.common.rng import RngStream


@dataclass(frozen=True)
class LogRecord:
    """One log entry: a transfer with a hash-chained authenticator.

    ``authenticator`` commits to the entry contents and the previous
    authenticator, making the log tamper-evident; carrying
    ``prev_authenticator`` in the record lets an auditor verify each link
    locally (PeerReview-style).
    """

    client: int
    week: int
    sequence: int
    bytes_served: int
    peer: int
    prev_authenticator: int
    authenticator: int

    def as_record(self) -> tuple:
        return (
            self.client,
            self.week,
            self.sequence,
            self.bytes_served,
            self.peer,
            self.prev_authenticator,
            self.authenticator,
        )


class ClientLogGenerator:
    """Generates per-week batches of tamper-evident client logs."""

    def __init__(
        self,
        num_clients: int = 1000,
        entries_per_client: int = 5,
        seed: int = 0,
        tamper_fraction: float = 0.0,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.num_clients = num_clients
        self.entries_per_client = entries_per_client
        self.tamper_fraction = tamper_fraction
        self._rng = RngStream(seed, "datagen.netsession")
        #: client -> last authenticator, continuing the hash chain per week.
        self._chains: dict[int, int] = {}

    def week_of_logs(
        self, week: int, online_fraction: float = 1.0
    ) -> list[LogRecord]:
        """Logs for one week from the online subset of clients."""
        if not 0.0 <= online_fraction <= 1.0:
            raise ValueError("online_fraction must lie in [0, 1]")
        records: list[LogRecord] = []
        for client in range(self.num_clients):
            if float(self._rng.random()) >= online_fraction:
                continue
            chain = self._chains.get(client, stable_hash(("genesis", client)))
            for sequence in range(self.entries_per_client):
                bytes_served = int(self._rng.integers(1, 10_000))
                peer = int(self._rng.integers(0, self.num_clients))
                prev = chain
                chain = stable_hash((chain, client, week, sequence, bytes_served, peer))
                authenticator = chain
                if self.tamper_fraction and self._rng.coin(self.tamper_fraction):
                    # A tampering client rewrites an entry (e.g. inflates
                    # bytes_served) without being able to forge the hash.
                    bytes_served += 1_000_000
                records.append(
                    LogRecord(
                        client=client,
                        week=week,
                        sequence=sequence,
                        bytes_served=bytes_served,
                        peer=peer,
                        prev_authenticator=prev,
                        authenticator=authenticator,
                    )
                )
            self._chains[client] = chain
        return records

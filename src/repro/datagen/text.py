"""A Zipfian text corpus standing in for the paper's Wikipedia dataset.

The data-intensive micro-benchmarks (HCT, Matrix, subStr) care about key
skew and volume, both of which a seeded Zipf word distribution reproduces:
a few very frequent words, a long tail of rare ones.
"""

from __future__ import annotations

from repro.common.rng import RngStream


class TextCorpusGenerator:
    """Generates deterministic lines of Zipf-distributed words."""

    def __init__(
        self,
        seed: int = 0,
        vocabulary_size: int = 5000,
        zipf_exponent: float = 1.3,
        words_per_line: int = 12,
    ) -> None:
        if vocabulary_size <= 0:
            raise ValueError("vocabulary_size must be positive")
        if zipf_exponent <= 1.0:
            raise ValueError("zipf_exponent must exceed 1.0")
        self.vocabulary_size = vocabulary_size
        self.zipf_exponent = zipf_exponent
        self.words_per_line = words_per_line
        self._rng = RngStream(seed, "datagen.text")

    def word(self, rank: int) -> str:
        """The word at Zipf rank ``rank`` (0 is the most frequent).

        Ranks are spelled in base 26, so frequent words are short and the
        vocabulary spans varied first letters and lengths — the shape HCT's
        histograms and subStr's n-grams rely on.
        """
        letters = []
        value = rank
        while True:
            letters.append(chr(ord("a") + value % 26))
            value //= 26
            if value == 0:
                break
        return "".join(reversed(letters))

    def line(self) -> str:
        ranks = self._rng.zipf(self.zipf_exponent, size=self.words_per_line)
        ranks = [min(int(r) - 1, self.vocabulary_size - 1) for r in ranks]
        return " ".join(self.word(rank) for rank in ranks)

    def lines(self, count: int) -> list[str]:
        return [self.line() for _ in range(count)]

"""Random points from a unit cube — the paper's own K-Means/KNN input.

Points are plain tuples of floats so they remain stably hashable for split
content ids.  Optional cluster structure makes K-Means convergence behave
realistically.
"""

from __future__ import annotations

from repro.common.rng import RngStream


class PointGenerator:
    """Seeded generator of points in the ``dimensions``-d unit cube."""

    def __init__(
        self,
        seed: int = 0,
        dimensions: int = 50,
        clusters: int = 0,
        cluster_spread: float = 0.05,
    ) -> None:
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.clusters = clusters
        self.cluster_spread = cluster_spread
        self._rng = RngStream(seed, "datagen.points")
        self._centers: list[tuple[float, ...]] = []
        if clusters > 0:
            self._centers = [
                tuple(float(x) for x in self._rng.uniform(size=dimensions))
                for _ in range(clusters)
            ]

    @property
    def centers(self) -> list[tuple[float, ...]]:
        return list(self._centers)

    def point(self) -> tuple[float, ...]:
        if not self._centers:
            return tuple(float(x) for x in self._rng.uniform(size=self.dimensions))
        center = self._centers[int(self._rng.integers(0, len(self._centers)))]
        noise = self._rng.normal(0.0, self.cluster_spread, size=self.dimensions)
        return tuple(
            min(1.0, max(0.0, c + float(n))) for c, n in zip(center, noise)
        )

    def points(self, count: int) -> list[tuple[float, ...]]:
        return [self.point() for _ in range(count)]

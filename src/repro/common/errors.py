"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CombinerContractError(ReproError, ValueError):
    """A combiner violated a required algebraic property.

    Every contraction tree requires associativity, and rotating trees
    require commutativity in addition; job construction and the tree
    constructors raise this error when a combiner does not provide the
    needed property.  Subclasses :class:`ValueError` because a contract
    violation is a bad argument — and so that callers written against the
    original plain-``ValueError`` signature keep working.
    """


class SchedulingError(ReproError):
    """The cluster simulator was asked to do something impossible.

    Examples: scheduling a task on a dead machine, or running a job on a
    cluster with zero alive machines.
    """


class WindowError(ReproError):
    """An invalid sliding-window operation was requested.

    Examples: removing more splits than the window holds, or advancing a
    fixed-width window by a delta that changes its size.
    """


class TaskFailedError(SchedulingError):
    """A task exhausted its attempt budget and cannot complete.

    Raised by the event-driven executor when every attempt of a task was
    lost to machine crashes or transient failures, ``max_attempts`` times
    in a row.  Carries the task label and the attempt count.
    """

    def __init__(self, label: str, attempts: int) -> None:
        super().__init__(
            f"task {label!r} failed permanently after {attempts} attempts"
        )
        self.label = label
        self.attempts = attempts


class CacheMissError(ReproError):
    """A memoized object was requested but is not present in any layer."""


class MemoStoreFull(ReproError):
    """A memo store cannot accept another entry.

    Raised by bounded stores (e.g. the shared-memory store's fixed
    segment) when a put would exceed their capacity.  ``MemoTable.store``
    treats it exactly like budget exhaustion: the store is skipped and
    the result recomputed next time — degradation, never failure.
    """


class CompileError(ReproError):
    """A compiled plan disagreed with the run that replayed it.

    Raised when execution under a plan-cache hit emits a step the
    compiled template did not predict (or ends before consuming the whole
    template).  This is always a bug in a planner's
    ``plan_structure_key`` — the key failed to capture a piece of
    structural state the plan depends on — never a data error.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or applied.

    Examples: a manifest with an unsupported format version, a checkpoint
    taken from a different job than the one supplied to ``restore``, or a
    directory that is missing a segment the manifest promises.
    """


class CorruptionError(ReproError):
    """Stored state failed content-fingerprint verification.

    Raised eagerly on restore when a checkpoint segment's digest does not
    match its manifest entry, or when a restored partition's entries no
    longer hash to its recorded uid.  In-memory corruption found lazily on
    memo reads is *not* raised — it is repaired by recomputation and only
    costs work.
    """


class QueryCompilationError(ReproError):
    """A logical query plan could not be compiled to a MapReduce pipeline."""

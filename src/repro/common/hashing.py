"""Stable, process-independent hashing.

Python's builtin :func:`hash` is randomized per process for strings, which
would make tree shapes and memo hits non-reproducible.  All identity used by
memo tables and randomized tree coin flips goes through the helpers here,
which are based on BLAKE2b and therefore stable across runs and platforms.
"""

from __future__ import annotations

import hashlib
from typing import Any

_HASH_BYTES = 8
_MASK = (1 << 64) - 1


def _encode(value: Any) -> bytes:
    """Encode a value into bytes canonically for hashing.

    Supports the types that flow through the data plane: strings, bytes,
    ints, floats, bools, None, and (possibly nested) tuples/lists of them.
    """
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bool):
        return b"o1" if value else b"o0"
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    if value is None:
        return b"n"
    if isinstance(value, (tuple, list)):
        return _encode_sequence(b"t", [_encode(item) for item in value])
    if isinstance(value, (frozenset, set)):
        # Canonicalize by sorting element encodings: set order must not
        # change the hash.
        return _encode_sequence(b"F", sorted(_encode(item) for item in value))
    raise TypeError(f"cannot stably hash value of type {type(value).__name__}")


def _encode_sequence(tag: bytes, encoded_items: list[bytes]) -> bytes:
    parts = [tag, str(len(encoded_items)).encode("ascii")]
    for encoded in encoded_items:
        parts.append(str(len(encoded)).encode("ascii"))
        parts.append(b":")
        parts.append(encoded)
    return b"".join(parts)


def stable_hash(value: Any, *, salt: str = "") -> int:
    """Return a stable 64-bit hash of ``value``.

    The optional ``salt`` derives independent hash families from the same
    input (used e.g. for per-level coin flips in the randomized folding
    tree).
    """
    digest = hashlib.blake2b(
        _encode(value), digest_size=_HASH_BYTES, person=salt.encode("utf-8")[:16]
    ).digest()
    return int.from_bytes(digest, "big") & _MASK


def stable_hash_pair(left: int, right: int, *, salt: str = "") -> int:
    """Combine two 64-bit ids into one, stably.

    This is the identity function used for internal contraction-tree nodes:
    a node's content id is a function of its children's content ids, so two
    nodes computed from identical inputs share a memo entry.
    """
    return stable_hash((left, right), salt=salt)


def content_id(*parts: Any) -> int:
    """Return a stable content id for a sequence of hashable parts."""
    return stable_hash(tuple(parts), salt="cid")


def fingerprint_bytes(payload: bytes, *, salt: str = "ckpt") -> str:
    """Return a hex digest fingerprinting a raw byte payload.

    Used for checkpoint segments, where the unit of verification is the
    serialized blob rather than a structured value; 16 bytes of BLAKE2b is
    ample for integrity (we defend against bit rot and truncation, not an
    adversary).
    """
    return hashlib.blake2b(
        payload, digest_size=16, person=salt.encode("utf-8")[:16]
    ).hexdigest()

"""Shared low-level utilities: deterministic RNG streams, stable hashing, errors.

Everything in :mod:`repro` is deterministic given a seed.  The helpers here
are the single source of randomness and hashing so that tree shapes, synthetic
datasets, and simulated schedules are reproducible across runs and platforms.
"""

from repro.common.errors import (
    ReproError,
    CombinerContractError,
    SchedulingError,
    WindowError,
)
from repro.common.hashing import stable_hash, stable_hash_pair, content_id
from repro.common.rng import RngStream, derive_rng

__all__ = [
    "ReproError",
    "CombinerContractError",
    "SchedulingError",
    "WindowError",
    "stable_hash",
    "stable_hash_pair",
    "content_id",
    "RngStream",
    "derive_rng",
]

"""Deterministic random-number streams.

Each subsystem receives its own named stream derived from a root seed, so
adding randomness to one component never perturbs another component's
sequence (a classic reproducibility pitfall in simulators).
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import stable_hash


class RngStream:
    """A named, seeded random stream backed by numpy's PCG64.

    Instances are cheap; derive one per logical purpose::

        rng = RngStream(seed=42, name="datagen.text")
        words = rng.zipf(a=1.5, size=100)
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        derived = stable_hash((seed, name), salt="rng")
        self._gen = np.random.Generator(np.random.PCG64(derived))

    def child(self, name: str) -> "RngStream":
        """Derive an independent stream for a sub-purpose."""
        return RngStream(self.seed, f"{self.name}/{name}")

    # -- thin wrappers over the numpy generator ---------------------------

    def integers(self, low: int, high: int | None = None, size=None):
        return self._gen.integers(low, high, size=size)

    def random(self, size=None):
        return self._gen.random(size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._gen.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._gen.normal(loc, scale, size)

    def exponential(self, scale: float = 1.0, size=None):
        return self._gen.exponential(scale, size)

    def zipf(self, a: float, size=None):
        return self._gen.zipf(a, size)

    def choice(self, seq, size=None, replace: bool = True, p=None):
        return self._gen.choice(seq, size=size, replace=replace, p=p)

    def shuffle(self, seq) -> None:
        self._gen.shuffle(seq)

    def coin(self, p: float = 0.5) -> bool:
        """Flip a biased coin."""
        return bool(self._gen.random() < p)


def derive_rng(seed: int, *names: str) -> RngStream:
    """Build a stream from a root seed and a path of purpose names."""
    stream = RngStream(seed)
    for name in names:
        stream = stream.child(name)
    return stream

"""Data-flow query processing over sliding windows (§5).

A small Pig-Latin-like layer: logical plans built with
:class:`~repro.query.plan.Query` compile to a pipeline of MapReduce jobs
(:mod:`~repro.query.compiler`), which the multi-level incremental executor
(:mod:`~repro.query.pipeline`) runs over a sliding window — the first stage
with the mode-appropriate self-adjusting contraction tree, subsequent stages
with strawman contraction trees over content-bucketed intermediates, exactly
the strategy of §5.
"""

from repro.query.aggregates import Count, CountDistinct, Max, Mean, Min, SumField
from repro.query.compiler import QueryCompilationError, compile_plan
from repro.query.parser import PigParseError, PigScript, parse_pig
from repro.query.pigmix import PIGMIX_QUERIES, PigMixDataGenerator, pigmix_query
from repro.query.pipeline import BatchQueryRunner, IncrementalQueryPipeline
from repro.query.plan import Query

__all__ = [
    "Count",
    "CountDistinct",
    "Max",
    "Mean",
    "Min",
    "SumField",
    "QueryCompilationError",
    "compile_plan",
    "PigParseError",
    "PigScript",
    "parse_pig",
    "PIGMIX_QUERIES",
    "PigMixDataGenerator",
    "pigmix_query",
    "BatchQueryRunner",
    "IncrementalQueryPipeline",
    "Query",
]

"""A Pig-Latin parser: text scripts to logical query plans.

The paper's query interface is Pig (§5): users write Pig-Latin scripts and
the system compiles them to pipelined MapReduce jobs.  This module parses
the subset of Pig-Latin the compiler supports into
:class:`~repro.query.plan.Query` plans::

    views  = LOAD 'pageviews' AS (user, action, timespent, term, revenue, page);
    clicks = FILTER views BY action == 'click' AND revenue > 0.5;
    byuser = GROUP clicks BY user;
    stats  = FOREACH byuser GENERATE group, COUNT(clicks), SUM(clicks.revenue);
    top    = ORDER stats BY $1 DESC LIMIT 10;

Supported statements: LOAD ... AS (fields), FILTER ... BY <boolean expr>,
FOREACH <rel> GENERATE <projection>, GROUP <rel> BY <field>,
FOREACH <grouped> GENERATE group, AGG(...) [AS alias] ...,
DISTINCT <rel> [BY field], ORDER <rel> BY <field|$i> [DESC] LIMIT n,
and JOIN <rel> BY <field> WITH <table> [AS alias] — a fragment-replicate
(map-side) join against a small Python dict passed via ``tables=``.
The script's last assignment is the query result.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import QueryCompilationError
from repro.query.aggregates import (
    Count,
    CountDistinct,
    Max,
    Mean,
    Min,
    SumField,
)
from repro.query.plan import Query


class PigParseError(QueryCompilationError):
    """The script is not valid (supported) Pig-Latin."""


# ---------------------------------------------------------------------------
# Tokenizer for BY-expressions.

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<string>'[^']*')"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>==|!=|<=|>=|<|>|\(|\)))"
)

_KEYWORDS = {"AND", "OR", "NOT"}


def _tokenize_expr(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PigParseError(f"cannot tokenize expression at: {text[position:]!r}")
        position = match.end()
        if match.lastgroup == "name" and match.group("name").upper() in _KEYWORDS:
            tokens.append(("keyword", match.group("name").upper()))
        else:
            tokens.append((match.lastgroup, match.group(match.lastgroup)))
    return tokens


class _ExprParser:
    """Recursive-descent parser for FILTER BY expressions.

    Grammar:  or_expr := and_expr (OR and_expr)*
              and_expr := unary (AND unary)*
              unary := NOT unary | comparison | '(' or_expr ')'
              comparison := operand (== | != | < | <= | > | >=) operand
              operand := field | number | 'string'
    Produces a predicate ``row -> bool`` closed over field indexes.
    """

    def __init__(self, tokens: list[tuple[str, str]], schema: tuple[str, ...]):
        self.tokens = tokens
        self.schema = schema
        self.position = 0

    def parse(self):
        predicate = self._or_expr()
        if self.position != len(self.tokens):
            raise PigParseError(
                f"unexpected trailing tokens: {self.tokens[self.position:]}"
            )
        return predicate

    def _peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def _take(self):
        token = self._peek()
        self.position += 1
        return token

    def _or_expr(self):
        left = self._and_expr()
        while self._peek() == ("keyword", "OR"):
            self._take()
            right = self._and_expr()
            left = _combine_or(left, right)
        return left

    def _and_expr(self):
        left = self._unary()
        while self._peek() == ("keyword", "AND"):
            self._take()
            right = self._unary()
            left = _combine_and(left, right)
        return left

    def _unary(self):
        kind, value = self._peek()
        if (kind, value) == ("keyword", "NOT"):
            self._take()
            inner = self._unary()
            return lambda row: not inner(row)
        if (kind, value) == ("op", "("):
            self._take()
            inner = self._or_expr()
            if self._take() != ("op", ")"):
                raise PigParseError("expected ')'")
            return inner
        return self._comparison()

    def _comparison(self):
        left = self._operand()
        kind, op = self._take()
        if kind != "op" or op in ("(", ")"):
            raise PigParseError(f"expected comparison operator, got {op!r}")
        right = self._operand()
        return _make_comparison(left, op, right)

    def _operand(self):
        kind, value = self._take()
        if kind == "number":
            number = float(value) if "." in value else int(value)
            return lambda row, v=number: v
        if kind == "string":
            text = value[1:-1]
            return lambda row, v=text: v
        if kind == "name":
            index = _field_index(self.schema, value)
            return lambda row, i=index: row[i]
        raise PigParseError(f"expected operand, got {value!r}")


def _make_comparison(left, op, right):
    ops = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    compare = ops[op]
    return lambda row: compare(left(row), right(row))


def _combine_and(a, b):
    return lambda row: a(row) and b(row)


def _combine_or(a, b):
    return lambda row: a(row) or b(row)


def _field_index(schema: tuple[str, ...], name: str) -> int:
    if name.startswith("$"):
        return int(name[1:])
    try:
        return schema.index(name)
    except ValueError:
        raise PigParseError(
            f"unknown field {name!r}; schema is {schema}"
        ) from None


# ---------------------------------------------------------------------------
# Statement parsing.

_ASSIGN_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*=\s*(.+)$", re.S)
_AGG_RE = re.compile(
    r"^(COUNT|SUM|MIN|MAX|AVG|COUNT_DISTINCT)\s*\(\s*([A-Za-z_][\w.]*)?\s*\)"
    r"(?:\s+AS\s+([A-Za-z_]\w*))?$",
    re.I,
)


@dataclass
class _Relation:
    """A named intermediate: a plan plus its current schema."""

    plan: Query
    schema: tuple[str, ...]
    #: Set when this relation is the result of GROUP ... BY (pre-FOREACH).
    grouped_on: str | None = None
    grouped_source: str | None = None


@dataclass
class PigScript:
    """A parsed script: the final plan plus all named intermediates."""

    result: Query
    result_name: str
    relations: dict[str, _Relation] = field(default_factory=dict)

    @property
    def schema(self) -> tuple[str, ...]:
        return self.relations[self.result_name].schema


def parse_pig(script: str, tables: dict[str, dict] | None = None) -> PigScript:
    """Parse a Pig-Latin script into a query plan.

    ``tables`` supplies the small reference tables JOIN statements
    replicate to the Map side, keyed by the name used in the script.
    """
    relations: dict[str, _Relation] = {}
    tables = tables or {}
    last_name: str | None = None

    for statement in _split_statements(script):
        match = _ASSIGN_RE.match(statement)
        if match is None:
            raise PigParseError(f"expected 'name = OP ...;', got: {statement!r}")
        name, body = match.group(1), match.group(2).strip()
        relations[name] = _parse_statement(body, relations, tables)
        last_name = name

    if last_name is None:
        raise PigParseError("empty script")
    final = relations[last_name]
    if final.grouped_on is not None:
        raise PigParseError(
            "script ends with a bare GROUP; add a FOREACH ... GENERATE"
        )
    return PigScript(result=final.plan, result_name=last_name, relations=relations)


def _split_statements(script: str) -> list[str]:
    cleaned_lines = []
    for line in script.splitlines():
        without_comment = line.split("--", 1)[0]
        cleaned_lines.append(without_comment)
    cleaned = "\n".join(cleaned_lines)
    return [s.strip() for s in cleaned.split(";") if s.strip()]


def _parse_statement(
    body: str, relations: dict[str, _Relation], tables: dict[str, dict]
) -> _Relation:
    keyword = body.split(None, 1)[0].upper()
    if keyword == "LOAD":
        return _parse_load(body)
    if keyword == "FILTER":
        return _parse_filter(body, relations)
    if keyword == "FOREACH":
        return _parse_foreach(body, relations)
    if keyword == "GROUP":
        return _parse_group(body, relations)
    if keyword == "DISTINCT":
        return _parse_distinct(body, relations)
    if keyword == "ORDER":
        return _parse_order(body, relations)
    if keyword == "JOIN":
        return _parse_join(body, relations, tables)
    raise PigParseError(f"unsupported statement: {keyword}")


def _require_relation(name: str, relations: dict[str, _Relation]) -> _Relation:
    if name not in relations:
        raise PigParseError(f"unknown relation {name!r}")
    return relations[name]


_LOAD_RE = re.compile(
    r"^LOAD\s+'[^']*'\s+AS\s*\(([^)]*)\)$", re.I | re.S
)


def _parse_load(body: str) -> _Relation:
    match = _LOAD_RE.match(body)
    if match is None:
        raise PigParseError(f"malformed LOAD: {body!r}")
    fields = tuple(f.strip() for f in match.group(1).split(",") if f.strip())
    if not fields:
        raise PigParseError("LOAD needs at least one field")
    return _Relation(plan=Query.load(fields), schema=fields)


_FILTER_RE = re.compile(r"^FILTER\s+(\w+)\s+BY\s+(.+)$", re.I | re.S)


def _parse_filter(body: str, relations) -> _Relation:
    match = _FILTER_RE.match(body)
    if match is None:
        raise PigParseError(f"malformed FILTER: {body!r}")
    source = _require_relation(match.group(1), relations)
    if source.grouped_on is not None:
        raise PigParseError("cannot FILTER a grouped relation")
    predicate = _ExprParser(
        _tokenize_expr(match.group(2)), source.schema
    ).parse()
    return _Relation(plan=source.plan.filter(predicate), schema=source.schema)


_FOREACH_RE = re.compile(r"^FOREACH\s+(\w+)\s+GENERATE\s+(.+)$", re.I | re.S)


def _parse_foreach(body: str, relations) -> _Relation:
    match = _FOREACH_RE.match(body)
    if match is None:
        raise PigParseError(f"malformed FOREACH: {body!r}")
    source = _require_relation(match.group(1), relations)
    items = [item.strip() for item in match.group(2).split(",")]
    if source.grouped_on is not None:
        return _parse_group_foreach(source, items, relations)
    return _parse_projection(source, items)


def _parse_projection(source: _Relation, items: list[str]) -> _Relation:
    indexes: list[int] = []
    names: list[str] = []
    for item in items:
        parts = re.split(r"\s+AS\s+", item, flags=re.I)
        field_name = parts[0].strip()
        alias = parts[1].strip() if len(parts) > 1 else field_name.lstrip("$")
        indexes.append(_field_index(source.schema, field_name))
        names.append(alias)
    index_tuple = tuple(indexes)
    plan = source.plan.foreach(
        lambda row, idx=index_tuple: tuple(row[i] for i in idx)
    )
    return _Relation(plan=plan, schema=tuple(names))


def _parse_group_foreach(
    source: _Relation, items: list[str], relations
) -> _Relation:
    if not items or items[0].lower() != "group":
        raise PigParseError(
            "FOREACH over a grouped relation must start with 'group'"
        )
    inner = _require_relation(source.grouped_source, relations)
    key_index = _field_index(inner.schema, source.grouped_on)

    aggregations = []
    names = ["group"]
    for item in items[1:]:
        match = _AGG_RE.match(item.strip())
        if match is None:
            raise PigParseError(f"malformed aggregate: {item!r}")
        func = match.group(1).upper()
        arg = match.group(2)
        alias = match.group(3)
        field_name = None
        if arg is not None and "." in arg:
            field_name = arg.split(".", 1)[1]
        aggregations.append(_make_aggregation(func, field_name, inner.schema))
        names.append(alias or func.lower())
    if not aggregations:
        raise PigParseError("grouped FOREACH needs at least one aggregate")

    plan = inner.plan.group_by(
        lambda row, i=key_index: row[i],
        aggregations if len(aggregations) > 1 else aggregations[0],
    )
    return _Relation(plan=plan, schema=tuple(names))


def _make_aggregation(func: str, field_name: str | None, schema):
    if func == "COUNT":
        return Count()
    if field_name is None:
        raise PigParseError(f"{func} needs a field argument (rel.field)")
    index = _field_index(schema, field_name)
    if func == "SUM":
        return SumField(index)
    if func == "MIN":
        return Min(index)
    if func == "MAX":
        return Max(index)
    if func == "AVG":
        return Mean(index)
    if func == "COUNT_DISTINCT":
        return CountDistinct(index)
    raise PigParseError(f"unknown aggregate {func}")


_GROUP_RE = re.compile(r"^GROUP\s+(\w+)\s+BY\s+([\w$]+)$", re.I)


def _parse_group(body: str, relations) -> _Relation:
    match = _GROUP_RE.match(body)
    if match is None:
        raise PigParseError(f"malformed GROUP: {body!r}")
    source_name = match.group(1)
    source = _require_relation(source_name, relations)
    if source.grouped_on is not None:
        raise PigParseError("cannot GROUP a grouped relation")
    _field_index(source.schema, match.group(2))  # validate eagerly
    return _Relation(
        plan=source.plan,
        schema=source.schema,
        grouped_on=match.group(2),
        grouped_source=source_name,
    )


_DISTINCT_RE = re.compile(r"^DISTINCT\s+(\w+)(?:\s+BY\s+([\w$]+))?$", re.I)


def _parse_distinct(body: str, relations) -> _Relation:
    match = _DISTINCT_RE.match(body)
    if match is None:
        raise PigParseError(f"malformed DISTINCT: {body!r}")
    source = _require_relation(match.group(1), relations)
    if match.group(2):
        index = _field_index(source.schema, match.group(2))
        plan = source.plan.distinct(lambda row, i=index: row[i])
        schema = (match.group(2).lstrip("$"),)
    else:
        plan = source.plan.distinct()
        schema = source.schema
    return _Relation(plan=plan, schema=schema)


_JOIN_RE = re.compile(
    r"^JOIN\s+(\w+)\s+BY\s+([\w$]+)\s+WITH\s+(\w+)(?:\s+AS\s+(\w+))?"
    r"(?:\s+(LEFT))?$",
    re.I,
)


def _parse_join(body: str, relations, tables: dict[str, dict]) -> _Relation:
    match = _JOIN_RE.match(body)
    if match is None:
        raise PigParseError(
            f"malformed JOIN (need 'JOIN rel BY field WITH table "
            f"[AS alias] [LEFT]'): {body!r}"
        )
    source = _require_relation(match.group(1), relations)
    if source.grouped_on is not None:
        raise PigParseError("cannot JOIN a grouped relation")
    table_name = match.group(3)
    if table_name not in tables:
        raise PigParseError(
            f"unknown table {table_name!r}; pass it via parse_pig(tables=...)"
        )
    index = _field_index(source.schema, match.group(2))
    alias = match.group(4) or table_name
    left_outer = match.group(5) is not None
    plan = source.plan.join(
        tables[table_name],
        key_fn=lambda row, i=index: row[i],
        keep_unmatched=left_outer,
        default=None,
    )
    return _Relation(plan=plan, schema=source.schema + (alias,))


_ORDER_RE = re.compile(
    r"^ORDER\s+(\w+)\s+BY\s+([\w$]+)(\s+DESC)?\s+LIMIT\s+(\d+)$", re.I
)


def _parse_order(body: str, relations) -> _Relation:
    match = _ORDER_RE.match(body)
    if match is None:
        raise PigParseError(
            f"malformed ORDER (need 'ORDER rel BY field [DESC] LIMIT n'): {body!r}"
        )
    source = _require_relation(match.group(1), relations)
    index = _field_index(source.schema, match.group(2))
    descending = match.group(3) is not None
    limit = int(match.group(4))
    sign = 1.0 if descending else -1.0
    plan = source.plan.top(limit, score_fn=lambda row, i=index, s=sign: s * row[i])
    return _Relation(plan=plan, schema=source.schema)

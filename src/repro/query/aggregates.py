"""Aggregation functions usable in GROUP BY clauses.

Each aggregation supplies the three pieces a MapReduce stage needs: the
per-row initial value the Map side emits, the associative (and commutative)
combiner that contracts values, and the Reduce-side finalizer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.mapreduce.combiners import (
    Combiner,
    MaxCombiner,
    MeanCombiner,
    MinCombiner,
    SetUnionCombiner,
    SumCombiner,
)

Row = tuple


class Aggregation(ABC):
    """One aggregate over the rows of a group."""

    @abstractmethod
    def initial(self, row: Row) -> Any:
        """The combined-form value contributed by one row."""

    @abstractmethod
    def combiner(self) -> Combiner:
        """The combiner contracting the group's values."""

    def finalize(self, value: Any) -> Any:
        """Reduce-side post-processing (identity by default)."""
        return value


class Count(Aggregation):
    """Number of rows in the group."""

    def initial(self, row: Row) -> int:
        return 1

    def combiner(self) -> Combiner:
        return SumCombiner()


class SumField(Aggregation):
    """Sum of one numeric field."""

    def __init__(self, field: int) -> None:
        self.field = field

    def initial(self, row: Row) -> float:
        return row[self.field]

    def combiner(self) -> Combiner:
        return SumCombiner()


class Min(Aggregation):
    def __init__(self, field: int) -> None:
        self.field = field

    def initial(self, row: Row) -> float:
        return row[self.field]

    def combiner(self) -> Combiner:
        return MinCombiner()


class Max(Aggregation):
    def __init__(self, field: int) -> None:
        self.field = field

    def initial(self, row: Row) -> float:
        return row[self.field]

    def combiner(self) -> Combiner:
        return MaxCombiner()


class Mean(Aggregation):
    """Average of one numeric field, via (count, total) pairs."""

    def __init__(self, field: int) -> None:
        self.field = field

    def initial(self, row: Row) -> tuple:
        return (1, row[self.field])

    def combiner(self) -> Combiner:
        return MeanCombiner()

    def finalize(self, value: tuple) -> float:
        count, total = value
        return total / count if count else 0.0


class CountDistinct(Aggregation):
    """Number of distinct values of one field within the group."""

    def __init__(self, field: int) -> None:
        self.field = field

    def initial(self, row: Row) -> frozenset:
        return frozenset({row[self.field]})

    def combiner(self) -> Combiner:
        return SetUnionCombiner()

    def finalize(self, value: frozenset) -> int:
        return len(value)


class MultiAggregation(Aggregation):
    """Several aggregations evaluated together (values are tuples)."""

    def __init__(self, parts: list[Aggregation]) -> None:
        if not parts:
            raise ValueError("MultiAggregation needs at least one part")
        self.parts = parts

    def initial(self, row: Row) -> tuple:
        return tuple(part.initial(row) for part in self.parts)

    def combiner(self) -> Combiner:
        return _TupleCombiner([part.combiner() for part in self.parts])

    def finalize(self, value: tuple) -> tuple:
        return tuple(
            part.finalize(component)
            for part, component in zip(self.parts, value)
        )


class _TupleCombiner(Combiner):
    """Combines component-wise over a tuple of sub-combiners."""

    def __init__(self, combiners: list[Combiner]) -> None:
        self.combiners = combiners
        self.commutative = all(c.commutative for c in combiners)

    def merge(self, key: Any, values):
        return tuple(
            combiner.merge(key, [value[i] for value in values])
            for i, combiner in enumerate(self.combiners)
        )

    def value_size(self, value) -> float:
        return sum(
            combiner.value_size(component)
            for combiner, component in zip(self.combiners, value)
        )

    def fingerprint(self, value):
        return tuple(
            combiner.fingerprint(component)
            for combiner, component in zip(self.combiners, value)
        )

    def law_leaves(self):
        """Component-wise leaf strategy for the law harness."""
        from hypothesis import strategies as st

        from repro.analysis.laws import leaf_strategy_for

        parts = [leaf_strategy_for(combiner) for combiner in self.combiners]
        if any(part is None for part in parts):
            return None
        return st.tuples(*parts)

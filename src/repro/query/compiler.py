"""Compiles logical query plans into pipelines of MapReduce jobs.

Row-local operators (filter / foreach / join) fuse into the Map function of
the next stage; every grouping operator (group_by / distinct / top) closes a
stage.  Trailing row-local operators after the last boundary become a final
local post-processing function.

This mirrors how Pig compiles Pig-Latin scripts into pipelined MapReduce
jobs — the property §5 exploits to incrementalize query processing stage by
stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import QueryCompilationError
from repro.mapreduce.combiners import MaxCombiner, TopKCombiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.query.plan import (
    BoundaryOp,
    DistinctOp,
    FilterOp,
    ForeachOp,
    GroupOp,
    JoinOp,
    LoadOp,
    Query,
    Row,
    RowOp,
    TopOp,
)

#: A single sentinel key for global (ungrouped) operators like TOP.
GLOBAL_KEY = "__global__"


@dataclass
class CompiledStage:
    """One MapReduce job plus how to turn its outputs into next-stage rows."""

    index: int
    job: MapReduceJob
    #: outputs dict -> list of rows for the next stage (or final results).
    emit_rows: Callable[[dict], list[Row]]
    boundary: str  # "group" | "distinct" | "top"


@dataclass
class CompiledPlan:
    stages: list[CompiledStage]
    #: applied to the last stage's rows (trailing filters/foreach).
    postprocess: Callable[[list[Row]], list[Row]]

    def num_stages(self) -> int:
        return len(self.stages)


def _apply_row_ops(row: Row, ops: list[RowOp]):
    """Run row-local operators; yields zero or one row."""
    for op in ops:
        if isinstance(op, FilterOp):
            if not op.predicate(row):
                return
        elif isinstance(op, ForeachOp):
            row = op.transform(row)
        elif isinstance(op, JoinOp):
            match = op.table.get(op.key_fn(row))
            if match is None:
                if not op.keep_unmatched:
                    return
                match = op.default
            row = tuple(row) + (match,)
        else:  # pragma: no cover - defensive
            raise QueryCompilationError(f"unknown row operator {op!r}")
    yield row


def _make_stage(index: int, row_ops: list[RowOp], boundary: BoundaryOp) -> CompiledStage:
    ops = list(row_ops)

    if isinstance(boundary, GroupOp):
        aggregation = boundary.aggregation
        key_fn = boundary.key_fn

        def map_group(record: Row):
            for row in _apply_row_ops(record, ops):
                yield (key_fn(row), aggregation.initial(row))

        job = MapReduceJob(
            name=f"stage{index}-group",
            map_fn=map_group,
            combiner=aggregation.combiner(),
            reduce_fn=lambda key, value: aggregation.finalize(value),
            num_reducers=4,
            costs=CostModel(map_cost_per_record=1.0),
        )

        def emit_group(outputs: dict) -> list[Row]:
            rows = []
            for key, value in outputs.items():
                if isinstance(value, tuple):
                    rows.append((key, *value))
                else:
                    rows.append((key, value))
            return sorted(rows, key=repr)

        return CompiledStage(index, job, emit_group, "group")

    if isinstance(boundary, DistinctOp):
        key_fn = boundary.key_fn

        def map_distinct(record: Row):
            for row in _apply_row_ops(record, ops):
                yield (key_fn(row), 1)

        job = MapReduceJob(
            name=f"stage{index}-distinct",
            map_fn=map_distinct,
            combiner=MaxCombiner(),  # presence flag: idempotent merge
            reduce_fn=lambda key, value: key,
            num_reducers=4,
            costs=CostModel(map_cost_per_record=1.0),
        )

        def emit_distinct(outputs: dict) -> list[Row]:
            rows = []
            for key in outputs:
                rows.append(key if isinstance(key, tuple) else (key,))
            return sorted(rows, key=repr)

        return CompiledStage(index, job, emit_distinct, "distinct")

    if isinstance(boundary, TopOp):
        n, score_fn = boundary.n, boundary.score_fn

        def map_top(record: Row):
            for row in _apply_row_ops(record, ops):
                yield (GLOBAL_KEY, ((float(score_fn(row)), tuple(row)),))

        job = MapReduceJob(
            name=f"stage{index}-top",
            map_fn=map_top,
            combiner=TopKCombiner(k=n),
            reduce_fn=lambda key, value: value,
            num_reducers=1,
            costs=CostModel(map_cost_per_record=1.0),
        )

        def emit_top(outputs: dict) -> list[Row]:
            entries = outputs.get(GLOBAL_KEY, ())
            return [row for _score, row in entries]

        return CompiledStage(index, job, emit_top, "top")

    raise QueryCompilationError(f"unknown boundary operator {boundary!r}")


def compile_plan(plan: Query) -> CompiledPlan:
    """Compile a logical plan into a pipeline of MapReduce stages."""
    if not plan.ops or not isinstance(plan.ops[0], LoadOp):
        raise QueryCompilationError("plan must start with Query.load(...)")

    stages: list[CompiledStage] = []
    pending_row_ops: list[RowOp] = []
    for op in plan.ops[1:]:
        if isinstance(op, (FilterOp, ForeachOp, JoinOp)):
            pending_row_ops.append(op)
        elif isinstance(op, (GroupOp, DistinctOp, TopOp)):
            stages.append(_make_stage(len(stages), pending_row_ops, op))
            pending_row_ops = []
        else:
            raise QueryCompilationError(f"unknown operator {op!r}")

    if not stages:
        raise QueryCompilationError(
            "plan needs at least one grouping operator (group_by/distinct/top)"
        )

    trailing = list(pending_row_ops)

    def postprocess(rows: list[Row]) -> list[Row]:
        if not trailing:
            return rows
        out: list[Row] = []
        for row in rows:
            out.extend(_apply_row_ops(row, trailing))
        return out

    return CompiledPlan(stages=stages, postprocess=postprocess)

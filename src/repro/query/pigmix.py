"""A PigMix-style query benchmark suite (Figure 10's workload).

PigMix exercises Pig's compiler with scripts over a synthetic *page views*
table.  We reproduce the structure from scratch: a seeded generator of page
view rows and a set of representative query scripts — scalar aggregation,
filtered join, a two-stage group-over-group pipeline, distinct users, and a
multi-aggregate group — each compiling to one or more MapReduce jobs.
"""

from __future__ import annotations

from repro.common.rng import RngStream
from repro.mapreduce.types import Split, make_splits
from repro.query.aggregates import Count, CountDistinct, Mean, SumField
from repro.query.plan import Query

#: Page-view row fields (by index).
USER, ACTION, TIMESPENT, QUERY_TERM, REVENUE, PAGE = range(6)

PAGE_VIEW_SCHEMA = ("user", "action", "timespent", "query_term", "revenue", "page")

ACTIONS = ("view", "click", "purchase")
QUERY_TERMS = ("sports", "news", "weather", "games", "music", "travel", "food")


class PigMixDataGenerator:
    """Seeded generator of page-view rows with Zipfian user skew."""

    def __init__(self, seed: int = 0, num_users: int = 500, num_pages: int = 200):
        self.num_users = num_users
        self.num_pages = num_pages
        self._rng = RngStream(seed, "datagen.pigmix")

    def row(self) -> tuple:
        user = min(int(self._rng.zipf(1.4)) - 1, self.num_users - 1)
        action = ACTIONS[int(self._rng.integers(0, len(ACTIONS)))]
        timespent = int(self._rng.integers(1, 300))
        term = QUERY_TERMS[int(self._rng.integers(0, len(QUERY_TERMS)))]
        revenue = round(float(self._rng.exponential(2.0)), 4)
        page = int(self._rng.integers(0, self.num_pages))
        return (user, action, timespent, term, revenue, page)

    def rows(self, count: int) -> list[tuple]:
        return [self.row() for _ in range(count)]

    def splits(self, count: int, rows_per_split: int = 50) -> list[Split]:
        return make_splits(
            self.rows(count * rows_per_split),
            split_size=rows_per_split,
            label_prefix="pv",
        )

    def power_users_table(self, fraction: float = 0.1) -> dict:
        """A small static reference table for map-side joins."""
        cutoff = max(1, int(self.num_users * fraction))
        return {user: f"tier{user % 3}" for user in range(cutoff)}


def pigmix_query(name: str, generator: PigMixDataGenerator | None = None) -> Query:
    """Build one of the benchmark queries by name."""
    generator = generator or PigMixDataGenerator()
    base = Query.load(PAGE_VIEW_SCHEMA)

    if name == "L1_total_revenue_per_user":
        return base.group_by(lambda r: r[USER], SumField(REVENUE))

    if name == "L2_power_user_clicks":
        return (
            base.filter(lambda r: r[ACTION] == "click")
            .join(generator.power_users_table(), key_fn=lambda r: r[USER])
            .group_by(lambda r: r[-1], Count())  # clicks per tier
        )

    if name == "L3_revenue_band_histogram":
        # Two pipelined MapReduce jobs: per-user revenue, then a histogram
        # of users per revenue band — the multi-level-tree case.
        return (
            base.group_by(lambda r: r[USER], SumField(REVENUE))
            .group_by(lambda r: int(r[1] // 5.0), Count())
        )

    if name == "L5_distinct_users_per_term":
        return base.group_by(lambda r: r[QUERY_TERM], CountDistinct(USER))

    if name == "L17_multi_aggregate":
        return base.group_by(
            lambda r: r[ACTION],
            [Count(), SumField(REVENUE), Mean(TIMESPENT)],
        )

    if name == "L8_top_pages":
        return (
            base.group_by(lambda r: r[PAGE], Count())
            .top(10, score_fn=lambda r: r[1])
        )

    raise ValueError(f"unknown PigMix query {name!r}")


#: The benchmark suite, in reporting order.
PIGMIX_QUERIES = (
    "L1_total_revenue_per_user",
    "L2_power_user_clicks",
    "L3_revenue_band_histogram",
    "L5_distinct_users_per_term",
    "L8_top_pages",
    "L17_multi_aggregate",
)

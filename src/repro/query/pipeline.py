"""Multi-level incremental execution of compiled query pipelines (§5).

The first stage consumes the sliding window directly, so it runs under a
full :class:`~repro.slider.system.Slider` with the mode-appropriate
self-adjusting contraction tree.  From the second stage onwards, input
changes can land at arbitrary positions (they are the diffs of the previous
stage's output), so each later stage runs under a *strawman* contraction
tree over content-bucketed pseudo-splits: unchanged buckets reuse their Map
outputs and positionally-memoized combiner nodes, changed buckets recompute
— exactly the paper's strategy for data-flow query processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.hashing import stable_hash
from repro.core.partition import Partition
from repro.core.strawman import StrawmanTree
from repro.mapreduce.runtime import BatchRuntime, reduce_partition
from repro.mapreduce.shuffle import HashPartitioner, run_map_task
from repro.mapreduce.types import Split
from repro.metrics import Phase, RunReport, WorkMeter
from repro.query.compiler import CompiledPlan, CompiledStage, compile_plan
from repro.query.plan import Query, Row
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode
from repro.telemetry import SpanKind, Telemetry


@dataclass
class QueryRunResult:
    """Final rows plus metrics of one pipeline run."""

    rows: list[Row]
    report: RunReport
    stage_works: list[float] = field(default_factory=list)


class StrawmanStageRunner:
    """Incremental executor for stages >= 2 of a pipeline.

    Buckets the stage's input rows by content hash into a fixed number of
    pseudo-splits.  A small diff in the rows changes few buckets; Map memo
    entries and the strawman tree's positional cache absorb the rest.
    """

    def __init__(self, stage: CompiledStage, num_buckets: int = 32) -> None:
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.stage = stage
        self.num_buckets = num_buckets
        self.meter = WorkMeter()
        self.partitioner = HashPartitioner(stage.job.num_reducers)
        self._map_memo: dict[int, list[Partition]] = {}
        self.trees: list[StrawmanTree] = [
            StrawmanTree(
                stage.job.combiner,
                meter=self.meter,
                combine_cost_factor=stage.job.costs.combine_cost_factor,
            )
            for _ in range(stage.job.num_reducers)
        ]
        self._leaf_count = 0
        self._ran = False

    def run(self, rows: Sequence[Row]) -> tuple[dict[Any, Any], float]:
        """Execute the stage over the full current ``rows``; returns
        (outputs, work charged this run)."""
        before = self.meter.total()
        splits = self._bucketize(rows)
        per_reducer = self._run_maps(splits)

        outputs: dict[Any, Any] = {}
        for reducer_index, tree in enumerate(self.trees):
            leaves = per_reducer[reducer_index]
            if not self._ran:
                root = tree.initial_run(leaves)
            else:
                root = tree.advance(leaves, removed=self._leaf_count)
            outputs.update(reduce_partition(self.stage.job, root, self.meter))
        self._ran = True
        self._leaf_count = len(splits)
        self._collect_garbage(splits)
        return outputs, self.meter.total() - before

    def _bucketize(self, rows: Sequence[Row]) -> list[Split]:
        buckets: list[list[Row]] = [[] for _ in range(self.num_buckets)]
        for row in rows:
            buckets[stable_hash(row, salt="qbucket") % self.num_buckets].append(row)
        splits = []
        for index, bucket in enumerate(buckets):
            bucket.sort(key=lambda row: stable_hash(row, salt="qorder"))
            splits.append(
                Split.from_records(
                    bucket, label=f"s{self.stage.index}b{index}"
                )
            )
        return splits

    def _run_maps(  # analysis: charge-in-caller-span (stage span)
        self, splits: list[Split]
    ) -> list[list[Partition]]:
        per_reducer: list[list[Partition]] = [
            [] for _ in range(self.stage.job.num_reducers)
        ]
        for split in splits:
            cached = self._map_memo.get(split.uid)
            if cached is None:
                cached = run_map_task(
                    self.stage.job, split.records, self.partitioner, self.meter
                )
                self._map_memo[split.uid] = cached
            else:
                self.meter.charge(
                    Phase.MEMO_READ,
                    self.stage.job.costs.memo_read_cost_per_key
                    * max(1, len(split)),
                )
            for reducer_index, partition in enumerate(cached):
                per_reducer[reducer_index].append(partition)
        return per_reducer

    def _collect_garbage(self, live_splits: list[Split]) -> None:
        live = {split.uid for split in live_splits}
        for uid in [u for u in self._map_memo if u not in live]:
            del self._map_memo[uid]


class IncrementalQueryPipeline:
    """Slider-backed incremental executor for a whole compiled plan."""

    def __init__(
        self,
        plan: Query,
        mode: WindowMode = WindowMode.VARIABLE,
        slider_config: SliderConfig | None = None,
        num_buckets: int = 32,
        cluster=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.plan = plan
        self.compiled: CompiledPlan = compile_plan(plan)
        first_job = self.compiled.stages[0].job
        self.mode = mode
        #: The shared backbone: stage 1 (the Slider) accounts directly into
        #: it, while later stages keep their own long-lived meters — their
        #: memo state spans runs, so folding their charges into the shared
        #: root would reorder float additions.  Instead each stage run is
        #: summarised as a closed PHASE span on a pipeline clock lane.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(label=f"query:{first_job.name}")
        )
        self.slider = Slider(
            first_job,
            mode=mode,
            config=slider_config,
            cluster=cluster,
            telemetry=self.telemetry,
        )
        self.later_stages = [
            StrawmanStageRunner(stage, num_buckets=num_buckets)
            for stage in self.compiled.stages[1:]
        ]
        #: Offset past the Slider's work cursor for later-stage span
        #: placement; accumulates so stage spans never overlap across runs.
        self._stage_clock = 0.0
        self._run_index = 0

    def initial_run(self, splits: Sequence[Split]) -> QueryRunResult:
        first = self.slider.initial_run(splits)
        return self._run_rest(first)

    def advance(self, added: Sequence[Split], removed: int) -> QueryRunResult:
        first = self.slider.advance(added, removed)
        return self._run_rest(first)

    def _run_rest(self, first_result) -> QueryRunResult:
        stage_works = [first_result.report.work]
        rows = self.compiled.stages[0].emit_rows(first_result.outputs)
        for runner, stage in zip(self.later_stages, self.compiled.stages[1:]):
            outputs, work = runner.run(rows)
            stage_works.append(work)
            start = self.telemetry.now() + self._stage_clock
            self.telemetry.record_span(
                f"stage{stage.index}",
                SpanKind.PHASE,
                start=start,
                end=start + work,
                thread="pipeline",
                stage=stage.index,
                run_index=self._run_index,
            )
            self._stage_clock += work
            rows = stage.emit_rows(outputs)
        rows = self.compiled.postprocess(rows)
        total_work = sum(stage_works)
        report = RunReport(
            label=f"query-run-{self._run_index}",
            work=total_work,
            # Pipelined jobs execute sequentially; without a per-stage
            # cluster replay we take stage works as stage times.
            time=first_result.report.time + sum(stage_works[1:]),
            space=self.slider.space(),
            breakdown={
                f"stage{i}": work for i, work in enumerate(stage_works)
            },
        )
        self._run_index += 1
        return QueryRunResult(rows=rows, report=report, stage_works=stage_works)


class BatchQueryRunner:
    """Recompute-from-scratch baseline for query pipelines."""

    def __init__(self, plan: Query) -> None:
        self.plan = plan
        self.compiled = compile_plan(plan)
        self._window: list[Split] = []
        self._run_index = 0

    def initial_run(self, splits: Sequence[Split]) -> QueryRunResult:
        self._window = list(splits)
        return self._run()

    def advance(self, added: Sequence[Split], removed: int) -> QueryRunResult:
        self._window = self._window[removed:] + list(added)
        return self._run()

    def _run(self) -> QueryRunResult:
        stage_works: list[float] = []
        rows: list[Row] | None = None
        for stage in self.compiled.stages:
            if rows is None:
                inputs = self._window
            else:
                inputs = [Split.from_records(rows, label=f"mid{stage.index}")]
            result = BatchRuntime(stage.job).run(inputs)
            stage_works.append(result.work)
            rows = stage.emit_rows(result.outputs)
        rows = self.compiled.postprocess(rows or [])
        total = sum(stage_works)
        report = RunReport(
            label=f"batch-query-run-{self._run_index}",
            work=total,
            time=total,
            breakdown={f"stage{i}": w for i, w in enumerate(stage_works)},
        )
        self._run_index += 1
        return QueryRunResult(rows=rows, report=report, stage_works=stage_works)

"""Logical query plans: a small Pig-Latin-like fluent builder.

Plans operate on *rows* (plain tuples, stably hashable) and chain
row-local operators (filter, foreach, map-side join) with grouping
operators (group_by, distinct, top) that introduce MapReduce stage
boundaries when compiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.query.aggregates import Aggregation, MultiAggregation

Row = tuple
Predicate = Callable[[Row], bool]
Transform = Callable[[Row], Row]
KeyFn = Callable[[Row], Any]


@dataclass(frozen=True)
class LoadOp:
    schema: tuple[str, ...]


@dataclass(frozen=True)
class FilterOp:
    predicate: Predicate


@dataclass(frozen=True)
class ForeachOp:
    transform: Transform


@dataclass(frozen=True)
class JoinOp:
    """Map-side (fragment-replicate) join against a small static table.

    ``table`` maps join keys to the reference row appended to matching
    stream rows; non-matching rows are dropped (inner join) unless
    ``keep_unmatched`` makes it a left-outer join with ``default``.
    """

    table: dict
    key_fn: KeyFn
    keep_unmatched: bool = False
    default: Any = None


@dataclass(frozen=True)
class GroupOp:
    key_fn: KeyFn
    aggregation: Aggregation


@dataclass(frozen=True)
class DistinctOp:
    key_fn: KeyFn


@dataclass(frozen=True)
class TopOp:
    n: int
    score_fn: Callable[[Row], float]


RowOp = FilterOp | ForeachOp | JoinOp
BoundaryOp = GroupOp | DistinctOp | TopOp


@dataclass
class Query:
    """A chain of operators, built fluently::

        plan = (Query.load(("user", "action", "revenue"))
                .filter(lambda r: r[1] == "view")
                .group_by(lambda r: r[0], Count()))
    """

    ops: list = field(default_factory=list)

    @staticmethod
    def load(schema: tuple[str, ...]) -> "Query":
        return Query(ops=[LoadOp(tuple(schema))])

    def _extend(self, op) -> "Query":
        return Query(ops=self.ops + [op])

    # -- row-local operators -------------------------------------------------

    def filter(self, predicate: Predicate) -> "Query":
        """Keep only rows matching ``predicate``."""
        return self._extend(FilterOp(predicate))

    def foreach(self, transform: Transform) -> "Query":
        """Transform every row (Pig's FOREACH ... GENERATE)."""
        return self._extend(ForeachOp(transform))

    def join(
        self,
        table: dict,
        key_fn: KeyFn,
        keep_unmatched: bool = False,
        default: Any = None,
    ) -> "Query":
        """Map-side join with a small static table.

        The matched table value is appended as the row's last field.
        """
        return self._extend(JoinOp(dict(table), key_fn, keep_unmatched, default))

    # -- stage boundaries -----------------------------------------------------

    def group_by(
        self, key_fn: KeyFn, aggregation: Aggregation | list[Aggregation]
    ) -> "Query":
        """Group rows by key and aggregate; starts a new MapReduce stage.

        Downstream operators see rows of the form ``(key, aggregate)``
        (or ``(key, agg1, agg2, ...)`` for a list of aggregations).
        """
        if isinstance(aggregation, list):
            aggregation = MultiAggregation(aggregation)
        return self._extend(GroupOp(key_fn, aggregation))

    def distinct(self, key_fn: KeyFn = lambda row: row) -> "Query":
        """Deduplicate rows (by ``key_fn`` projection)."""
        return self._extend(DistinctOp(key_fn))

    def top(self, n: int, score_fn: Callable[[Row], float]) -> "Query":
        """Keep the ``n`` highest-scoring rows (ORDER BY ... LIMIT n)."""
        if n <= 0:
            raise ValueError(f"top-n needs a positive n, got {n}")
        return self._extend(TopOp(n, score_fn))

    # -- inspection ------------------------------------------------------------

    @property
    def schema(self) -> tuple[str, ...]:
        if not self.ops or not isinstance(self.ops[0], LoadOp):
            raise ValueError("query must start with Query.load(...)")
        return self.ops[0].schema

    def num_stages(self) -> int:
        """How many MapReduce jobs this plan compiles to."""
        return max(
            1,
            sum(
                1
                for op in self.ops
                if isinstance(op, (GroupOp, DistinctOp, TopOp))
            ),
        )

"""Work and time accounting.

The paper evaluates two measures (§7.1):

* **work** — the total amount of computation performed by all tasks (Map,
  contraction, Reduce), measured as the sum of the active time of all tasks;
* **time** — the end-to-end running time of the job.

In this reproduction, *work* is accumulated by a :class:`WorkMeter` that every
task and combiner invocation charges, in abstract cost units proportional to
the records it touches (scaled by the application's compute intensity).
*Time* is the makespan of replaying the same task graph on the simulated
cluster (:mod:`repro.cluster`).

Since the telemetry refactor, :class:`WorkMeter` is a thin compatibility
view over :class:`repro.telemetry.Telemetry`: charges flow into the span
tree, and ``by_phase`` is the tree root's inclusive totals — bit-identical
to the flat accumulator this class used to keep (see the bit-identity
contract in :mod:`repro.telemetry.spans`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.telemetry.spans import Phase, Telemetry

__all__ = ["Phase", "WorkMeter", "RunReport", "Speedup"]

_UNSET = object()


class WorkMeter:
    """Accumulates abstract work units per phase.

    Work units are deterministic functions of the records processed, so two
    runs over the same input charge identical work, which makes
    speedup ratios exact rather than noisy wall-clock estimates.

    Every meter is backed by a :class:`~repro.telemetry.Telemetry`; pass
    one to share a span tree across components (the Slider shares one
    backbone with its trees, caches, and executor), or omit it for a
    private tree.
    """

    def __init__(
        self,
        telemetry: Telemetry | None = None,
        track_tasks: bool = False,
        _task_tracking: object = _UNSET,
    ) -> None:
        if _task_tracking is not _UNSET:
            warnings.warn(
                "WorkMeter(_task_tracking=...) is deprecated; "
                "use WorkMeter(track_tasks=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            track_tasks = bool(_task_tracking)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: When on, every charge is appended to :attr:`task_costs`.  Off
        #: by default: a long-lived Slider charges thousands of times per
        #: run and the log would grow without bound.
        self.track_tasks = track_tasks
        self.task_costs: list[tuple[Phase, float]] = []

    @property
    def by_phase(self) -> dict[Phase, float]:
        """Per-phase totals, derived live from the telemetry span tree."""
        return self.telemetry.by_phase

    @property
    def _task_tracking(self) -> bool:
        """Deprecated read alias for :attr:`track_tasks`."""
        return self.track_tasks

    def charge(self, phase: Phase, amount: float) -> None:
        """Charge ``amount`` work units to ``phase``."""
        self.telemetry.charge(phase, amount)
        if self.track_tasks:
            self.task_costs.append((phase, amount))

    def total(self) -> float:
        """Total work across all phases."""
        return sum(self.by_phase.values())

    def phase_total(self, *phases: Phase) -> float:
        """Total work across the given phases."""
        by_phase = self.by_phase
        return sum(by_phase.get(p, 0.0) for p in phases)

    def foreground_total(self) -> float:
        """Work excluding background pre-processing."""
        return self.total() - self.by_phase.get(Phase.BACKGROUND, 0.0)

    def merge(self, other: "WorkMeter") -> None:  # analysis: charge-in-caller-span
        """Fold another meter's counters into this one."""
        for phase, amount in other.by_phase.items():
            self.telemetry.charge(phase, amount)
        self.task_costs.extend(other.task_costs)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view, keyed by phase value, for reports."""
        return {phase.value: amount for phase, amount in self.by_phase.items()}

    def reset(self) -> None:
        self.telemetry.reset()
        self.task_costs.clear()


@dataclass(frozen=True)
class RunReport:
    """Metrics for one (initial or incremental) run of a job.

    ``work`` is the WorkMeter total; ``time`` is the simulated makespan
    (or equals work when run without a cluster); ``space`` counts the
    memoized bytes retained after the run.
    """

    label: str
    work: float
    time: float
    space: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Fault-tolerance cost of the run, populated when executing under a
    #: chaos schedule: re-executed attempts, detection delay, speculative
    #: waste (see RecoveryStats.as_dict) plus re-replication traffic.
    recovery: dict[str, float] = field(default_factory=dict)

    def speedup_over(self, baseline: "RunReport") -> "Speedup":
        """Speedup of *this* run relative to ``baseline``-as-the-slow-case.

        Matches the paper's convention: ``speedup = baseline / ours``.
        """
        return Speedup(
            work=_ratio(baseline.work, self.work),
            time=_ratio(baseline.time, self.time),
        )


@dataclass(frozen=True)
class Speedup:
    """A work/time speedup pair, as reported throughout §7."""

    work: float
    time: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"work {self.work:.2f}x, time {self.time:.2f}x"


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator

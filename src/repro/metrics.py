"""Work and time accounting.

The paper evaluates two measures (§7.1):

* **work** — the total amount of computation performed by all tasks (Map,
  contraction, Reduce), measured as the sum of the active time of all tasks;
* **time** — the end-to-end running time of the job.

In this reproduction, *work* is accumulated by a :class:`WorkMeter` that every
task and combiner invocation charges, in abstract cost units proportional to
the records it touches (scaled by the application's compute intensity).
*Time* is the makespan of replaying the same task graph on the simulated
cluster (:mod:`repro.cluster`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Phase(enum.Enum):
    """The phase a unit of work is charged to."""

    MAP = "map"
    CONTRACTION = "contraction"
    REDUCE = "reduce"
    SHUFFLE = "shuffle"
    MEMO_READ = "memo_read"
    MEMO_WRITE = "memo_write"
    BACKGROUND = "background"


@dataclass
class WorkMeter:
    """Accumulates abstract work units per phase.

    Work units are deterministic functions of the records processed, so two
    runs over the same input charge identical work, which makes
    speedup ratios exact rather than noisy wall-clock estimates.
    """

    by_phase: dict[Phase, float] = field(default_factory=dict)
    #: Per-charge log, populated only when ``_task_tracking`` is on.  Off
    #: by default: a long-lived Slider charges thousands of times per run
    #: and the log would grow without bound; tests that inspect individual
    #: charges opt in with ``WorkMeter(_task_tracking=True)``.
    task_costs: list[tuple[Phase, float]] = field(default_factory=list)
    _task_tracking: bool = False

    def charge(self, phase: Phase, amount: float) -> None:
        """Charge ``amount`` work units to ``phase``."""
        if amount < 0:
            raise ValueError(f"work must be non-negative, got {amount}")
        self.by_phase[phase] = self.by_phase.get(phase, 0.0) + amount
        if self._task_tracking:
            self.task_costs.append((phase, amount))

    def total(self) -> float:
        """Total work across all phases."""
        return sum(self.by_phase.values())

    def phase_total(self, *phases: Phase) -> float:
        """Total work across the given phases."""
        return sum(self.by_phase.get(p, 0.0) for p in phases)

    def foreground_total(self) -> float:
        """Work excluding background pre-processing."""
        return self.total() - self.by_phase.get(Phase.BACKGROUND, 0.0)

    def merge(self, other: "WorkMeter") -> None:
        """Fold another meter's counters into this one."""
        for phase, amount in other.by_phase.items():
            self.by_phase[phase] = self.by_phase.get(phase, 0.0) + amount
        self.task_costs.extend(other.task_costs)

    def snapshot(self) -> dict[str, float]:
        """A plain-dict view, keyed by phase value, for reports."""
        return {phase.value: amount for phase, amount in self.by_phase.items()}

    def reset(self) -> None:
        self.by_phase.clear()
        self.task_costs.clear()


@dataclass(frozen=True)
class RunReport:
    """Metrics for one (initial or incremental) run of a job.

    ``work`` is the WorkMeter total; ``time`` is the simulated makespan
    (or equals work when run without a cluster); ``space`` counts the
    memoized bytes retained after the run.
    """

    label: str
    work: float
    time: float
    space: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Fault-tolerance cost of the run, populated when executing under a
    #: chaos schedule: re-executed attempts, detection delay, speculative
    #: waste (see RecoveryStats.as_dict) plus re-replication traffic.
    recovery: dict[str, float] = field(default_factory=dict)

    def speedup_over(self, baseline: "RunReport") -> "Speedup":
        """Speedup of *this* run relative to ``baseline``-as-the-slow-case.

        Matches the paper's convention: ``speedup = baseline / ours``.
        """
        return Speedup(
            work=_ratio(baseline.work, self.work),
            time=_ratio(baseline.time, self.time),
        )


@dataclass(frozen=True)
class Speedup:
    """A work/time speedup pair, as reported throughout §7."""

    work: float
    time: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"work {self.work:.2f}x, time {self.time:.2f}x"


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator

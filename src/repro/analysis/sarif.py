"""SARIF 2.1.0 export: findings as a code-scanning artifact.

Maps the analysis report onto the minimal SARIF core: one run, one
driver (``repro-analysis``), one rule entry per distinct finding rule,
and one result per finding.  A ``physicalLocation`` is attached only
when the finding's ``where`` is a real file path (many findings point at
logical locations — a job name, a tree variant, a plan — which SARIF
carries in ``logicalLocations`` instead).

The export is deterministic (it consumes :func:`~repro.analysis.
findings.finalize`-ordered findings), so byte-equal trees produce
byte-equal SARIF — CI uploads dedupe correctly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.findings import Finding, finalize

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _is_file_path(where: str) -> bool:
    return where.endswith(".py") and " " not in where


def _result(finding: Finding) -> dict[str, Any]:
    location: dict[str, Any] = {}
    if _is_file_path(finding.where):
        physical: dict[str, Any] = {
            "artifactLocation": {"uri": finding.where}
        }
        if finding.line is not None:
            physical["region"] = {"startLine": finding.line}
        location["physicalLocation"] = physical
    else:
        location["logicalLocations"] = [{"fullyQualifiedName": finding.where}]
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [location],
    }


def to_sarif(findings: list[Finding], *, tool_version: str = "0") -> dict:
    """The findings as one SARIF 2.1.0 log dict."""
    final = finalize(findings)
    rules = sorted({f.rule for f in final})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "version": tool_version,
                        "informationUri": (
                            "https://example.invalid/repro-analysis"
                        ),
                        "rules": [{"id": rule} for rule in rules],
                    }
                },
                "results": [_result(f) for f in final],
            }
        ],
    }


def write_sarif(
    findings: list[Finding], path: str | Path, *, tool_version: str = "0"
) -> None:
    """Serialize :func:`to_sarif` to ``path`` (stable key order)."""
    payload = to_sarif(findings, tool_version=tool_version)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

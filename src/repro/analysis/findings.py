"""Findings: the common currency of every analysis pass.

The purity checker, the law-falsification harness, and the repo lint all
report :class:`Finding` records; a :class:`AnalysisReport` aggregates them
and decides the exit status.  Severities:

* ``error`` — a contract violation; the CLI exits nonzero.
* ``warning`` — suspicious but not provably wrong.
* ``info`` — notes (trusted annotations, unanalyzable sources).
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Finding:
    """One analysis result, pointing at a rule and a location.

    ``rule`` is dotted and stable (e.g. ``purity.nondeterminism.time``,
    ``laws.associativity``, ``lint.span-hygiene``) so fixtures can assert
    that a specific rule fired and allowlists can target one rule.
    """

    rule: str
    message: str
    where: str
    line: int | None = None
    severity: str = ERROR

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        return f"{self.where}:{self.line}" if self.line is not None else self.where

    def render(self) -> str:
        return f"[{self.severity}] {self.rule} at {self.location()}: {self.message}"

    def sort_key(self) -> tuple:
        """Stable output order: location first, then rule, then message."""
        return (self.where, self.line if self.line is not None else -1,
                self.rule, self.message)


def finalize(findings: list[Finding]) -> list[Finding]:
    """Deterministic output: stable-sorted by (file, line, rule, message)
    and deduplicated.

    Every consumer-facing surface (CLI render, SARIF export, CI logs)
    goes through here so two runs over the same tree produce byte-equal
    reports — required for artifact diffing and upload dedupe.
    """
    seen: set[Finding] = set()
    unique: list[Finding] = []
    for finding in findings:
        if finding not in seen:
            seen.add(finding)
            unique.append(finding)
    return sorted(unique, key=Finding.sort_key)


@dataclass
class AnalysisReport:
    """An ordered collection of findings plus pass/fail semantics."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors()

    def finalized(self) -> list[Finding]:
        """The findings in deterministic output order, deduplicated."""
        return finalize(self.findings)

    def render(self, *, verbose: bool = False) -> str:
        """A human-readable summary; non-errors only shown when verbose.

        Rendering is deterministic: findings are deduplicated and sorted
        by location/rule, and the summary line counts the deduplicated
        set, so byte-equal trees render byte-equal reports.
        """
        final = self.finalized()
        errors = [f for f in final if f.severity == ERROR]
        shown = final if verbose else errors
        lines = [finding.render() for finding in shown]
        lines.append(
            f"{len(final)} finding(s), {len(errors)} error(s): "
            + ("FAIL" if errors else "OK")
        )
        return "\n".join(lines)

"""Interprocedural effect inference: read/write sets for every callable.

The purity checker answers a boolean question — *is this function safe to
memoize?* — but the multi-process leg of the roadmap needs a finer one:
*which shared resources does this callable touch, and how?*  This module
infers an :class:`EffectSummary` per callable: the set of resources it
reads and the set it writes, classified into a small taxonomy:

``global:<module>.<name>``
    a module-level binding (read of a mutable global, any global write);
``closure:<name>``
    a closure cell (``nonlocal`` writes, reads of mutable captured state);
``arg:<name>``
    caller-owned state reached through an argument (stores, mutating
    method calls) — already a purity error, restated as an effect;
``memo``
    memo-table state (``lookup``/``store``/``discard``/... on a receiver
    that names a memo or cache);
``telemetry``
    span/counter state (``count``/``instant``/``charge``/``span`` calls)
    — commutative accumulators, benign under parallel execution;
``io``
    the external world (files, sockets, processes, console).

Inference walks the function's AST with the same source-extraction and
environment-resolution machinery as :mod:`repro.analysis.purity`, then
propagates effects bottom-up through plain-Python helper calls with the
same bounded recursion (:data:`~repro.analysis.purity.MAX_HELPER_DEPTH`)
— a callable's summary is the union of its own accesses and its callees'.
``@trusted`` functions summarize as effect-free (the human audit covers
their effects too), recorded with the trust reason.

:func:`effect_findings` turns summaries into blocking findings for the
job plane: a Map/Reduce/Combine function that writes a global, a closure
cell, or the external world cannot run on worker processes — each worker
would mutate a private copy and the runs would diverge.  Resources in
``allowed`` (the runtime's own dispatch paths legitimately charge
telemetry and touch memo tables) are exempted per call site.
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.analysis.findings import ERROR, INFO, Finding
from repro.analysis.purity import (
    MAX_HELPER_DEPTH,
    _environment,
    _param_names,
    _source_node,
    _unwrap,
    is_trusted,
)
from repro.analysis.purity_rules import (
    _ALLOWED_MODULE_PREFIXES,
    _IO_MODULES,
    _MUTATING_METHODS,
    _root_param,
)

READ = "read"
WRITE = "write"

#: Method names that read memo-table state.
_MEMO_READ_METHODS = frozenset({"lookup", "get", "__contains__", "space"})
#: Method names that write memo-table state.
_MEMO_WRITE_METHODS = frozenset(
    {"store", "discard", "taint", "retain_only", "put", "delete"}
)
#: Method names that both read and write memo-table state.
_MEMO_RW_METHODS = frozenset({"get_or_compute", "setdefault", "pop"})
#: Receiver-name fragments that identify a memo/cache table.
_MEMO_RECEIVER_HINTS = ("memo", "cache")

#: Method names that write telemetry state (commutative accumulators).
_TELEMETRY_METHODS = frozenset({"count", "instant", "charge", "span"})

#: Builtin callables that touch the external world.
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: Values whose module-level read is effect-free (immutable or code).
_IMMUTABLE_TYPES = (
    type(None), bool, int, float, complex, str, bytes, tuple, frozenset,
    types.FunctionType, types.BuiltinFunctionType, type, types.ModuleType,
)


@dataclass(frozen=True)
class Access:
    """One resource touch: what, how, and where."""

    resource: str
    mode: str
    line: int | None = None
    detail: str = ""


@dataclass(frozen=True)
class EffectSummary:
    """The inferred read/write sets of one callable (plus its helpers)."""

    name: str
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    accesses: tuple = ()
    trusted: str | None = None
    unanalyzable: bool = False

    @property
    def effect_free(self) -> bool:
        """True when the callable writes nothing observable."""
        return not self.writes

    def conflicts_with(self, other: "EffectSummary") -> frozenset:
        """Resources on which the two summaries race (>= one side writes)."""
        return frozenset(
            (self.writes & (other.reads | other.writes))
            | (other.writes & self.reads)
        )


def _is_memo_receiver(node: ast.expr) -> bool:
    """Heuristic: the receiver lexically names a memo table or cache."""
    names: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return any(
        hint in name.lower() for name in names for hint in _MEMO_RECEIVER_HINTS
    )


def _local_names(node: ast.AST) -> set[str]:
    """Names bound locally (assignments, for targets, with-as, walrus)."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            names.add(child.id)
        elif isinstance(child, ast.NamedExpr) and isinstance(
            child.target, ast.Name
        ):
            names.add(child.target.id)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(child.name)
        elif isinstance(child, ast.Import):
            for alias in child.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(child, ast.ImportFrom):
            for alias in child.names:
                names.add(alias.asname or alias.name)
    return names


class _EffectVisitor(ast.NodeVisitor):
    """Collects the accesses of one function body."""

    def __init__(
        self,
        params: set[str],
        env: dict[str, Any],
        local_names: set[str],
        line_offset: int,
        module: str,
    ) -> None:
        self.params = params
        self.env = env
        self.locals = local_names
        self.line_offset = line_offset
        self.module = module
        self.accesses: list[Access] = []
        #: Plain-Python helpers called, queued for bounded recursion.
        self.helpers: list[types.FunctionType] = []

    # -- helpers ---------------------------------------------------------

    def _add(self, node: ast.AST, resource: str, mode: str, detail: str = "") -> None:
        line = getattr(node, "lineno", None)
        self.accesses.append(
            Access(
                resource=resource,
                mode=mode,
                line=None if line is None else line + self.line_offset,
                detail=detail,
            )
        )

    def _global_resource(self, name: str) -> str:
        return f"global:{self.module}.{name}"

    def _classify_name_root(self, name: str) -> str | None:
        """The resource a free name refers to, or None for locals/params."""
        if name in self.params or name in self.locals:
            return None
        if name not in self.env:
            return None
        return self._global_resource(name)

    # -- statements ------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self._add(
                node, self._global_resource(name), WRITE,
                detail=f"global {name}",
            )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        for name in node.names:
            self._add(node, f"closure:{name}", WRITE, detail=f"nonlocal {name}")

    def _store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_param(target)
        if root is None:
            return
        if root in self.params:
            self._add(target, f"arg:{root}", WRITE, detail="store into argument")
        elif root not in self.locals and root in self.env:
            self._add(
                target, self._global_resource(root), WRITE,
                detail="store into module global",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._store_target(target)
        self.generic_visit(node)

    # -- reads -----------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        resource = self._classify_name_root(node.id)
        if resource is None:
            return
        value = self.env.get(node.id)
        if isinstance(value, _IMMUTABLE_TYPES):
            return  # constants and code objects: effect-free reads
        self._add(node, resource, READ, detail=f"reads module global {node.id}")

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_plain_call(node, func)
            return
        if isinstance(func, ast.Attribute):
            self._check_method_call(node, func)

    def _check_plain_call(self, node: ast.Call, func: ast.Name) -> None:
        if func.id in _IO_BUILTINS and func.id not in self.locals:
            self._add(node, "io", WRITE, detail=f"calls {func.id}()")
            return
        value = self.env.get(func.id)
        if isinstance(value, types.FunctionType):
            module = getattr(value, "__module__", "") or ""
            if not module.startswith(_ALLOWED_MODULE_PREFIXES):
                self.helpers.append(value)

    def _check_method_call(self, node: ast.Call, func: ast.Attribute) -> None:
        method = func.attr
        receiver = func.value
        root = _root_param(receiver)
        # Memo-table state, by method-name + receiver-name heuristics.
        if _is_memo_receiver(func):
            if method in _MEMO_READ_METHODS:
                self._add(node, "memo", READ, detail=f".{method}() on memo")
                return
            if method in _MEMO_WRITE_METHODS:
                self._add(node, "memo", WRITE, detail=f".{method}() on memo")
                return
            if method in _MEMO_RW_METHODS:
                self._add(node, "memo", READ, detail=f".{method}() on memo")
                self._add(node, "memo", WRITE, detail=f".{method}() on memo")
                return
        # Telemetry accumulators.
        if method in _TELEMETRY_METHODS:
            self._add(node, "telemetry", WRITE, detail=f".{method}()")
            return
        # I/O through a module (os.*, subprocess.*, socket.*, ...).
        owner = self.env.get(root) if root is not None else None
        if isinstance(owner, types.ModuleType):
            owner_name = owner.__name__
            if owner_name == "os" or any(
                owner_name == m or owner_name.startswith(m + ".")
                for m in _IO_MODULES
            ):
                self._add(
                    node, "io", WRITE, detail=f"calls {owner_name}.{method}"
                )
                return
            # Calls into modules (pure stdlib helpers) carry no effect.
            return
        # In-place mutation of an argument or a module global.
        if method in _MUTATING_METHODS and root is not None:
            if root in self.params:
                self._add(
                    node, f"arg:{root}", WRITE,
                    detail=f"mutating .{method}() on argument",
                )
            elif root not in self.locals and root in self.env:
                self._add(
                    node, self._global_resource(root), WRITE,
                    detail=f"mutating .{method}() on module global",
                )


# ---------------------------------------------------------------------------
# entry points


def infer_effects(
    fn: Callable,
    *,
    role: str = "function",
    _depth: int = 0,
    _seen: set[int] | None = None,
) -> EffectSummary:
    """Infer the effect summary of ``fn`` (and its plain-Python helpers)."""
    seen = _seen if _seen is not None else set()
    fn = _unwrap(fn)
    where = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', fn)}"
    if role != "function":
        where = f"{where} [{role}]"

    reason = is_trusted(fn)
    if reason is not None:
        return EffectSummary(name=where, trusted=reason)

    if not isinstance(fn, types.FunctionType):
        # Builtins / C extensions: nothing to parse; treated as effect-free
        # (known-bad builtins are caught at their call sites).
        return EffectSummary(name=where)

    code_id = id(fn.__code__)
    if code_id in seen:
        return EffectSummary(name=where)
    seen.add(code_id)

    try:
        node, _filename, offset = _source_node(fn)
    except (OSError, TypeError, SyntaxError):
        return EffectSummary(name=where, unanalyzable=True)
    if node is None:
        return EffectSummary(name=where, unanalyzable=True)

    visitor = _EffectVisitor(
        params=_param_names(node),
        env=_environment(fn),
        local_names=_local_names(node),
        line_offset=offset,
        module=getattr(fn, "__module__", "?") or "?",
    )
    body = node.body if isinstance(node.body, list) else [node.body]
    for statement in body:
        visitor.visit(statement)

    accesses = list(visitor.accesses)
    unanalyzable = False
    if _depth < MAX_HELPER_DEPTH:
        for helper in visitor.helpers:
            child = infer_effects(
                helper,
                role=f"helper of {getattr(fn, '__qualname__', fn)}",
                _depth=_depth + 1,
                _seen=seen,
            )
            unanalyzable = unanalyzable or child.unanalyzable
            accesses.extend(child.accesses)

    return EffectSummary(
        name=where,
        reads=frozenset(a.resource for a in accesses if a.mode == READ),
        writes=frozenset(a.resource for a in accesses if a.mode == WRITE),
        accesses=tuple(accesses),
        unanalyzable=unanalyzable,
    )


def summarize_functions(
    functions: Iterable[tuple[str, Callable]],
) -> dict[str, EffectSummary]:
    """Effect summaries for a batch of (role, callable) pairs."""
    return {role: infer_effects(fn, role=role) for role, fn in functions}


#: Resource prefixes a data-plane callable may never write: each worker
#: process would mutate a private copy and runs would diverge.
_FORBIDDEN_WRITE_PREFIXES = ("global:", "closure:", "arg:", "io")


def effect_findings(
    functions: Iterable[tuple[str, Callable]],
    *,
    allowed: frozenset = frozenset(),
) -> list[Finding]:
    """Blocking findings for data-plane callables with unsafe effects.

    ``allowed`` names resources exempt for this batch (the runtime's own
    dispatch paths legitimately write ``telemetry`` and ``memo``).
    """
    findings: list[Finding] = []
    for role, fn in functions:
        summary = infer_effects(fn, role=role)
        if summary.trusted is not None:
            findings.append(
                Finding(
                    rule="effects.trusted",
                    message=f"trusted: {summary.trusted}",
                    where=summary.name,
                    severity=INFO,
                )
            )
            continue
        if summary.unanalyzable:
            findings.append(
                Finding(
                    rule="effects.unanalyzable",
                    message="source unavailable; effects not inferred",
                    where=summary.name,
                    severity=INFO,
                )
            )
        for access in summary.accesses:
            if access.mode != WRITE or access.resource in allowed:
                continue
            if access.resource.startswith(_FORBIDDEN_WRITE_PREFIXES):
                findings.append(
                    Finding(
                        rule="effects.shared-write",
                        message=(
                            f"writes shared state {access.resource} "
                            f"({access.detail}) — unsafe under "
                            "multi-process execution"
                        ),
                        where=summary.name,
                        line=access.line,
                        severity=ERROR,
                    )
                )
            elif access.resource == "memo" and "memo" not in allowed:
                findings.append(
                    Finding(
                        rule="effects.memo-access",
                        message=(
                            "touches a memo table directly — memo access "
                            "is the executor's job; a data-plane callable "
                            "doing its own caching breaks the shared-store "
                            "admission proof"
                        ),
                        where=summary.name,
                        line=access.line,
                        severity=ERROR,
                    )
                )
    return findings

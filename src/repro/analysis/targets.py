"""Resolving *what* to check: jobs, registries, plans, user modules.

A :class:`CheckTarget` bundles the callables the purity checker should walk
and the combiners the law harness should falsify, for one named unit (a
job, an aggregation, a whole app).  Resolution knows about every way the
repo builds jobs:

* a :class:`~repro.mapreduce.job.MapReduceJob` directly;
* the micro-benchmark :data:`~repro.apps.registry.APP_REGISTRY` and the
  three case-study job factories;
* the aggregates of :mod:`repro.query.aggregates` (as compiled into GROUP
  BY stages);
* a compiled query plan's stages;
* an arbitrary imported module, scanned for jobs, combiners, aggregations,
  and app specs — the CLI's entry point for user workloads.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import MapReduceJob


@dataclass
class CheckTarget:
    """One unit of analysis: named functions plus combiners to verify."""

    name: str
    #: (role, callable) pairs for the purity checker.
    functions: list[tuple[str, Callable]] = field(default_factory=list)
    #: (label, combiner) pairs for the law harness.
    combiners: list[tuple[str, Combiner]] = field(default_factory=list)


def check_target(
    target: CheckTarget,
    report: Any,
    *,
    check_purity: bool = True,
    check_laws: bool = True,
    max_examples: int = 60,
) -> None:
    """Run the enabled checks over one target, extending ``report``."""
    from repro.analysis.laws import check_combiner_laws
    from repro.analysis.purity import analyze_functions

    if check_purity:
        report.extend(analyze_functions(target.functions))
    if check_laws:
        for label, combiner in target.combiners:
            report.extend(
                check_combiner_laws(
                    combiner,
                    where=f"{target.name} ({label})",
                    max_examples=max_examples,
                )
            )


def job_target(job: MapReduceJob) -> CheckTarget:
    """Everything a MapReduceJob exposes to the data plane."""
    combiner = job.combiner
    return CheckTarget(
        name=f"job:{job.name}",
        functions=[
            ("map", job.map_fn),
            ("reduce", job.reduce_fn),
            ("combiner.merge", combiner.merge),
            ("combiner.value_size", combiner.value_size),
            ("combiner.merge_cost", combiner.merge_cost),
            ("combiner.fingerprint", combiner.fingerprint),
        ],
        combiners=[(f"job:{job.name}", combiner)],
    )


def aggregation_target(name: str, aggregation: Any) -> CheckTarget:
    """One :class:`~repro.query.aggregates.Aggregation`."""
    combiner = aggregation.combiner()
    return CheckTarget(
        name=f"aggregate:{name}",
        functions=[
            ("initial", aggregation.initial),
            ("finalize", aggregation.finalize),
            ("combiner.merge", combiner.merge),
            ("combiner.fingerprint", combiner.fingerprint),
        ],
        combiners=[(f"aggregate:{name}", combiner)],
    )


def plan_targets(plan: Any) -> list[CheckTarget]:
    """The jobs of a compiled query plan (``CompiledPlan`` duck-typed)."""
    targets = []
    for stage in getattr(plan, "stages", []):
        target = job_target(stage.job)
        target.name = f"stage{stage.index}:{stage.job.name}"
        targets.append(target)
    return targets


def registry_targets() -> list[CheckTarget]:
    """The shipped corpus: five micro-benchmarks, three case studies, and
    the stock query aggregates — the jobs ``--self`` keeps clean."""
    from repro.apps.glasnost import glasnost_job
    from repro.apps.netsession import netsession_audit_job
    from repro.apps.registry import micro_benchmark_apps
    from repro.apps.twitter import propagation_tree_job
    from repro.query import aggregates

    targets: list[CheckTarget] = []
    for spec in micro_benchmark_apps():
        target = job_target(spec.make_job())
        target.name = f"app:{spec.name}"
        targets.append(target)
    for factory in (propagation_tree_job, glasnost_job, netsession_audit_job):
        job = factory()
        target = job_target(job)
        target.name = f"case-study:{job.name}"
        targets.append(target)
    for agg_name, aggregation in (
        ("Count", aggregates.Count()),
        ("SumField", aggregates.SumField(0)),
        ("Min", aggregates.Min(0)),
        ("Max", aggregates.Max(0)),
        ("Mean", aggregates.Mean(0)),
        ("CountDistinct", aggregates.CountDistinct(0)),
        (
            "Multi",
            aggregates.MultiAggregation(
                [aggregates.Count(), aggregates.Mean(0)]
            ),
        ),
    ):
        targets.append(aggregation_target(agg_name, aggregation))
    targets.extend(kernel_targets())
    return targets


def kernel_targets() -> list[CheckTarget]:
    """Every combiner type carrying a registered batch kernel.

    Fusion legality lets the compiler batch these combiners through
    vectorized kernels, re-associating and re-grouping their merges — so
    their declared associativity/commutativity must survive the law
    harness before a kernel registration can ship.  Types whose
    constructor needs arguments are exercised elsewhere (the app corpus)
    and skipped here.
    """
    from repro.core.compile import registered_kernel_types

    targets: list[CheckTarget] = []
    for combiner_type in registered_kernel_types():
        try:
            combiner = combiner_type()
        except TypeError:
            continue
        targets.append(
            CheckTarget(
                name=f"kernel:{combiner_type.__name__}",
                functions=[
                    ("merge", combiner.merge),
                    ("value_size", combiner.value_size),
                    ("merge_cost", combiner.merge_cost),
                    ("fingerprint", combiner.fingerprint),
                ],
                combiners=[(f"kernel:{combiner_type.__name__}", combiner)],
            )
        )
    return targets


def module_targets(module: types.ModuleType) -> list[CheckTarget]:
    """Scan an imported module for checkable objects.

    Picks up MapReduceJob instances, Combiner instances, Aggregation
    instances, AppSpec registries, and zero-argument ``*_job`` factories.
    """
    from repro.query.aggregates import Aggregation

    targets: list[CheckTarget] = []
    seen: set[int] = set()

    def add(target: CheckTarget) -> None:
        targets.append(target)

    for name, value in sorted(vars(module).items()):
        if name.startswith("__"):
            continue
        if getattr(value, "__module__", module.__name__) != module.__name__ and not (
            isinstance(value, (MapReduceJob, Combiner))
        ):
            continue
        if id(value) in seen:
            continue
        seen.add(id(value))
        if isinstance(value, MapReduceJob):
            add(job_target(value))
        elif isinstance(value, Combiner):
            add(
                CheckTarget(
                    name=f"combiner:{name}",
                    functions=[
                        ("merge", value.merge),
                        ("fingerprint", value.fingerprint),
                    ],
                    combiners=[(f"combiner:{name}", value)],
                )
            )
        elif isinstance(value, Aggregation):
            add(aggregation_target(name, value))
        elif callable(value) and name.endswith("_job"):
            try:
                job = value()
            except TypeError:
                continue  # factory needs arguments; skip
            if isinstance(job, MapReduceJob):
                target = job_target(job)
                target.name = f"{name}()"
                add(target)
    return targets

"""Shared-state certificates: the multi-process admission gate.

Running the PlanExecutor across worker processes moves state across
process boundaries: memo values into a shared-memory store, combiner
instances and plan steps to workers, checkpoint segments to disk and
back.  This module audits everything that would cross, and emits one
machine-readable **parallel-safety certificate** per tree variant — the
artifact the future multi-process executor will consume before admitting
a (job, variant) pair to parallel execution.

Three audit rules per value:

``shared.unpicklable``
    the value does not survive ``pickle`` round-trip — it cannot cross a
    process boundary at all;
``shared.process-local``
    the value's object graph holds a process-local handle (open file,
    socket, lock, thread, generator, weakref, memoryview, module) that
    would be meaningless in another process;
``shared.identity``
    the value's identity is address-dependent: its repr embeds ``at 0x``
    (so any repr-derived key or fingerprint differs per process), or its
    content fingerprint changes across a pickle round-trip (so the
    shared store's content addressing would split or collide entries).

:func:`certify_variant` runs a small canonical scenario for one variant,
then combines three verdicts into the certificate: effect inference over
the job plane (:mod:`repro.analysis.effects`), plan-level race detection
over every executed run (:mod:`repro.analysis.races`), and the shared-
state audit over memo values, combiner state, plan steps, and checkpoint
segments.  The verdict is ``parallel-safe`` iff no error-severity finding
was recorded anywhere.
"""

from __future__ import annotations

import io
import pickle
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.analysis.effects import effect_findings
from repro.analysis.findings import ERROR, Finding
from repro.analysis.races import analyze_compiled, analyze_plan

#: Certificate schema identifier; bump on breaking format changes.
CERTIFICATE_SCHEMA = "parallel-safety-certificate/v1"

#: The five variants and the window mode each runs under (mirrors the
#: equivalence scenario's pairings).
CERTIFIED_VARIANTS = (
    ("folding", "variable"),
    ("randomized", "variable"),
    ("strawman", "variable"),
    ("rotating", "fixed"),
    ("coalescing", "append"),
)

#: Object-graph walk bounds for the handle scan.
_MAX_SCAN_NODES = 20_000
_MAX_SCAN_DEPTH = 12

#: Values per container the audit samples (memo tables can be large).
_AUDIT_SAMPLE = 64


def _handle_types() -> tuple[type, ...]:
    import socket
    import threading

    lock_type = type(threading.Lock())
    rlock_type = type(threading.RLock())
    return (
        io.IOBase,
        socket.socket,
        threading.Thread,
        lock_type,
        rlock_type,
        types.GeneratorType,
        types.CoroutineType,
        types.FrameType,
        types.TracebackType,
        memoryview,
        types.ModuleType,
    )


_HANDLE_TYPES = _handle_types()


def _scan_for_handles(value: Any) -> str | None:
    """Breadth-first walk of the object graph; returns a description of
    the first process-local handle found, or None."""
    seen: set[int] = set()
    queue: list[tuple[Any, int]] = [(value, 0)]
    visited = 0
    while queue:
        current, depth = queue.pop()
        if id(current) in seen or depth > _MAX_SCAN_DEPTH:
            continue
        seen.add(id(current))
        visited += 1
        if visited > _MAX_SCAN_NODES:
            return None  # bounded: give up quietly rather than stall CI
        if isinstance(current, _HANDLE_TYPES):
            return type(current).__name__
        import weakref

        if isinstance(current, (weakref.ref, weakref.ProxyType)):
            return type(current).__name__
        if isinstance(current, dict):
            for k, v in current.items():
                queue.append((k, depth + 1))
                queue.append((v, depth + 1))
        elif isinstance(current, (list, tuple, set, frozenset)):
            for item in current:
                queue.append((item, depth + 1))
        elif hasattr(current, "__dict__") and not isinstance(
            current, (type, types.FunctionType)
        ):
            queue.append((vars(current), depth + 1))
        if hasattr(current, "__slots__") and not isinstance(current, type):
            for slot in type(current).__mro__:
                for name in getattr(slot, "__slots__", ()):
                    if hasattr(current, name):
                        queue.append((getattr(current, name), depth + 1))
    return None


def audit_value(
    value: Any,
    where: str,
    *,
    fingerprint: Callable[[Any], Any] | None = None,
    identity_sensitive: bool = True,
) -> list[Finding]:
    """Audit one value that would cross a process boundary.

    ``identity_sensitive=False`` skips the repr-address check — for values
    that cross as *code/config* (combiner instances, re-imported on the
    worker side) rather than as content-addressed data, an address-bearing
    default repr is harmless because it never feeds a fingerprint.
    """
    findings: list[Finding] = []
    handle = _scan_for_handles(value)
    if handle is not None:
        findings.append(
            Finding(
                rule="shared.process-local",
                message=(
                    f"holds a process-local handle ({handle}) — it cannot "
                    "cross a process boundary meaningfully"
                ),
                where=where,
                severity=ERROR,
            )
        )
    try:
        blob = pickle.dumps(value)
        clone = pickle.loads(blob)
    except Exception as exc:
        findings.append(
            Finding(
                rule="shared.unpicklable",
                message=f"does not survive pickle round-trip: {exc!r}",
                where=where,
                severity=ERROR,
            )
        )
        return findings
    if identity_sensitive and " at 0x" in repr(value):
        findings.append(
            Finding(
                rule="shared.identity",
                message=(
                    "repr embeds an object address (default repr) — any "
                    "repr-derived key or fingerprint is process-dependent"
                ),
                where=where,
                severity=ERROR,
            )
        )
    if fingerprint is not None:
        try:
            before = fingerprint(value)
            after = fingerprint(clone)
        except Exception as exc:
            findings.append(
                Finding(
                    rule="shared.identity",
                    message=f"fingerprinting failed: {exc!r}",
                    where=where,
                    severity=ERROR,
                )
            )
        else:
            if before != after:
                findings.append(
                    Finding(
                        rule="shared.identity",
                        message=(
                            "content fingerprint changes across a pickle "
                            "round-trip — shared-store content addressing "
                            "would split or collide entries"
                        ),
                        where=where,
                        severity=ERROR,
                    )
                )
    return findings


def _sample(items: Iterable[Any], limit: int = _AUDIT_SAMPLE) -> list[Any]:
    out: list[Any] = []
    for i, item in enumerate(items):
        if i >= limit:
            break
        out.append(item)
    return out


# ---------------------------------------------------------------------------
# certificates


@dataclass
class ParallelSafetyCertificate:
    """The machine-readable admission artifact for one (job, variant)."""

    variant: str
    mode: str
    job: str
    runs: int = 0
    steps_analyzed: int = 0
    fused_groups: int = 0
    values_audited: int = 0
    benign_races: int = 0
    findings: list[Finding] = field(default_factory=list)
    checks: dict[str, dict] = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def verdict(self) -> str:
        return "parallel-safe" if not self.errors else "unsafe"

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": CERTIFICATE_SCHEMA,
            "variant": self.variant,
            "mode": self.mode,
            "job": self.job,
            "verdict": self.verdict,
            "runs": self.runs,
            "steps_analyzed": self.steps_analyzed,
            "fused_groups": self.fused_groups,
            "values_audited": self.values_audited,
            "benign_races": self.benign_races,
            "checks": self.checks,
            "findings": [f.render() for f in self.findings],
        }


def _scenario_engine(variant: str, mode: str) -> tuple[Any, Any]:
    from repro.mapreduce.combiners import SumCombiner
    from repro.mapreduce.job import MapReduceJob
    from repro.slider.system import Slider, SliderConfig
    from repro.slider.window import WindowMode

    window_mode = {
        "variable": WindowMode.VARIABLE,
        "fixed": WindowMode.FIXED,
        "append": WindowMode.APPEND,
    }[mode]
    job = MapReduceJob(
        name="certificate-counts",
        map_fn=_certificate_map,
        combiner=SumCombiner(),
        num_reducers=2,
    )
    return (
        Slider(
            job,
            mode=window_mode,
            config=SliderConfig(tree=variant, mode=window_mode),
        ),
        window_mode,
    )


def _certificate_map(record: int) -> list[tuple[int, int]]:
    return [(record, 1)]


def certify_variant(
    variant: str,
    mode: str,
    advances: int = 3,
    *,
    run_races: bool = True,
    run_shared: bool = True,
) -> ParallelSafetyCertificate:
    """Run the canonical scenario for one variant and certify it.

    A certificate produced with a pass disabled records that pass as
    skipped in ``checks`` — it still carries a verdict, but only over the
    passes that ran.
    """
    from repro.mapreduce.types import Split
    from repro.recovery.state import capture_engine_state
    from repro.slider.window import WindowMode

    engine, window_mode = _scenario_engine(variant, mode)
    cert = ParallelSafetyCertificate(
        variant=variant, mode=mode, job=engine.job.name
    )

    splits = [
        Split.from_records(
            [f"w{(i * 7 + j) % 12}" for j in range(20)], label=f"s{i}"
        )
        for i in range(4 + advances)
    ]
    removed = 0 if window_mode is WindowMode.APPEND else 1
    results = [engine.initial_run(splits[:4])]
    for i in range(advances):
        results.append(engine.advance([splits[4 + i]], removed))

    # 1. effect inference over the job plane.
    from repro.analysis.targets import job_target

    target = job_target(engine.job)
    effects = effect_findings(target.functions)
    effect_errors = [f for f in effects if f.severity == ERROR]
    cert.findings.extend(effect_errors)
    cert.checks["effects"] = {
        "functions": len(target.functions),
        "errors": len(effect_errors),
    }

    # 2. race detection over every executed run (and compiled template).
    race_errors = 0
    for result in results:
        cert.runs += 1
        if not run_races:
            continue
        if result.plan is not None:
            cert.steps_analyzed += len(result.plan)
            for finding in analyze_plan(
                result.plan, where=f"{variant}:run{result.run_index}"
            ):
                if finding.severity == ERROR:
                    cert.findings.append(finding)
                    race_errors += 1
                else:
                    cert.benign_races += 1
        if result.compiled is not None:
            cert.fused_groups += len(result.compiled.fused)
            for finding in analyze_compiled(
                result.compiled, where=f"{variant}:run{result.run_index}"
            ):
                if finding.severity == ERROR:
                    cert.findings.append(finding)
                    race_errors += 1
    cert.checks["races"] = (
        {
            "runs": cert.runs,
            "steps": cert.steps_analyzed,
            "errors": race_errors,
            "benign": cert.benign_races,
        }
        if run_races
        else {"skipped": True}
    )

    # 3. shared-state audit of everything that would cross a process.
    if not run_shared:
        cert.checks["shared"] = {"skipped": True}
        return cert
    shared_errors = 0

    def audit(
        value: Any,
        where: str,
        fingerprint: Callable[[Any], Any] | None = None,
        identity_sensitive: bool = True,
    ) -> None:
        nonlocal shared_errors
        found = audit_value(
            value,
            where,
            fingerprint=fingerprint,
            identity_sensitive=identity_sensitive,
        )
        cert.values_audited += 1
        shared_errors += sum(1 for f in found if f.severity == ERROR)
        cert.findings.extend(found)

    combiner = engine.job.combiner
    audit(combiner, f"{variant}:combiner", identity_sensitive=False)
    for reducer, tree in enumerate(engine.trees):
        for uid, value in _sample(tree.memo.entries.items()):
            audit(
                value,
                f"{variant}:tree{reducer}:memo:{uid:#x}",
                fingerprint=lambda p: p.uid,
            )
    for uid, outputs in _sample(engine.map_memo.items()):
        for partition in outputs:
            audit(
                partition,
                f"{variant}:map_memo:{uid:#x}",
                fingerprint=lambda p: p.uid,
            )
    for reducer, memo in enumerate(engine.reduce_memo):
        audit(dict(_sample(memo.items())), f"{variant}:reduce_memo:{reducer}")
    last = results[-1]
    if last.plan is not None:
        audit(tuple(last.plan.steps), f"{variant}:plan-steps")
    if last.compiled is not None:
        audit(last.compiled, f"{variant}:compiled-plan")
    # Checkpoint segments: the exact payloads write_checkpoint pickles.
    audit(capture_engine_state(engine), f"{variant}:checkpoint:state")
    cert.checks["shared"] = {
        "values": cert.values_audited,
        "errors": shared_errors,
    }
    return cert


def certify_all(
    advances: int = 3,
    *,
    run_races: bool = True,
    run_shared: bool = True,
) -> list[ParallelSafetyCertificate]:
    """Certificates for all five tree variants."""
    return [
        certify_variant(
            variant,
            mode,
            advances=advances,
            run_races=run_races,
            run_shared=run_shared,
        )
        for variant, mode in CERTIFIED_VARIANTS
    ]


def certificate_findings(
    certificates: list[ParallelSafetyCertificate],
) -> list[Finding]:
    """The findings the CLI reports: every certificate error plus one
    summary error per unsafe variant."""
    findings: list[Finding] = []
    for cert in certificates:
        findings.extend(cert.findings)
        if cert.verdict != "parallel-safe":
            findings.append(
                Finding(
                    rule="certificate.unsafe",
                    message=(
                        f"variant {cert.variant!r} failed certification: "
                        f"{len(cert.errors)} blocking finding(s)"
                    ),
                    where=f"certificate:{cert.variant}",
                    severity=ERROR,
                )
            )
    return findings

"""Plan-level race detection: happens-before over the Plan/FusedStep IR.

The future multi-process executor will run one worker lane per reducer
(plus parallel Map tasks), so the correctness question is: *which pairs of
plan steps may execute concurrently, and do any of them touch the same
state with at least one write?*  This module answers it statically, over
the plan IR alone — no execution required.

**The happens-before model.**  Each step is assigned a *lane* and an
*epoch*:

* every ``map`` step gets its own lane (Map tasks are mutually
  independent — that is the point of the map phase) in epoch 0;
* the map → contraction shuffle barrier separates epoch 0 from epoch 1:
  every map step happens-before every later step;
* ``combine``/``visit``/``reduce`` steps run in their reducer's lane
  (epoch 1), in plan order; steps with no reducer attribution fall into a
  single conservative *engine* lane.

``happens_before(a, b)`` holds iff ``a`` is in an earlier epoch, or both
share a lane and ``a`` precedes ``b`` in plan order.  Two steps without
an ordering either way are *concurrent*.

**Footprints.**  Each step touches resources derived from its fields:

* ``map`` — writes ``map_memo:<uid>`` (its split's map-memo slot);
* ``combine`` — reads/writes ``tree:<lane>`` (the tree's structural
  state) and, when carrying a cache edge, reads+writes ``memo:<uid>``
  (conservative: only execution knows hit vs miss);
* ``visit`` — reads ``tree:<lane>``;
* ``reduce`` — reads ``tree:<lane>``, reads+writes ``reduce_memo:<lane>``.

A conflict is a concurrent pair with a shared resource and at least one
write.  Memo slots are **content-addressed** (the uid is a content hash
and every writer is a law-checked deterministic combiner), so concurrent
memo write/write or write/read pairs across lanes are *benign idempotent*
races — both orders store/observe the same bytes — reported at info
severity, not as errors.  Everything else is a hard finding.

**Fusion obligations.**  A :class:`~repro.core.plan.FusedStep` batch may
be dispatched with its members reordered or vectorized, so fusion is
legal only if the members are pairwise conflict-free *under the member
granularity*: no two members may share a memo slot (a sequential replay
would hit where a batched replay misses, diverging the executed graph),
all combine members must share one reducer lane, and kernel hints may
mark only combine steps.  :func:`check_fused` turns each violation into
a blocking finding — the static half of the fusion-legality proof that
kernel registration alone used to carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.analysis.findings import ERROR, INFO, Finding
from repro.core.plan import FusedStep, Plan, PlanStep

#: The conservative lane for steps with no reducer attribution.
ENGINE_LANE = "engine"

#: Resource prefixes whose cross-lane write conflicts are benign because
#: the slot is content-addressed and all writers are deterministic.
IDEMPOTENT_PREFIXES = ("memo:",)


@dataclass(frozen=True)
class Footprint:
    """One step's lane, epoch, and resource read/write sets."""

    uid: int
    op: str
    lane: str
    epoch: int
    reads: frozenset
    writes: frozenset
    label: str = ""

    def conflicts(self, other: "Footprint") -> frozenset:
        """Resources the two steps race on (at least one side writes)."""
        return frozenset(
            (self.writes & (other.reads | other.writes))
            | (other.writes & self.reads)
        )


@dataclass(frozen=True)
class RacePair:
    """A concurrent step pair with a conflicting footprint."""

    first: Footprint
    second: Footprint
    resources: frozenset

    @property
    def benign(self) -> bool:
        """True when every conflicting resource is content-addressed."""
        return all(
            resource.startswith(IDEMPOTENT_PREFIXES)
            for resource in self.resources
        )


def step_footprint(step: PlanStep) -> Footprint:
    """Derive the lane, epoch, and resource sets of one plan step."""
    if step.op == "map":
        uid = step.memo_uid if step.memo_uid is not None else step.uid
        return Footprint(
            uid=step.uid,
            op=step.op,
            lane=f"map#{step.uid}",
            epoch=0,
            reads=frozenset({f"split:{uid:#x}"}),
            writes=frozenset({f"map_memo:{uid:#x}"}),
            label=step.label,
        )
    lane = ENGINE_LANE if step.reducer is None else f"reducer:{step.reducer}"
    tree = f"tree:{lane}"
    if step.op == "combine":
        reads = {tree}
        writes = {tree}
        if step.memo_uid is not None:
            slot = f"memo:{step.memo_uid:#x}"
            reads.add(slot)
            writes.add(slot)
        return Footprint(
            uid=step.uid, op=step.op, lane=lane, epoch=1,
            reads=frozenset(reads), writes=frozenset(writes),
            label=step.label,
        )
    if step.op == "visit":
        return Footprint(
            uid=step.uid, op=step.op, lane=lane, epoch=1,
            reads=frozenset({tree}), writes=frozenset(),
            label=step.label,
        )
    # reduce
    slot = f"reduce_memo:{lane}"
    return Footprint(
        uid=step.uid, op=step.op, lane=lane, epoch=1,
        reads=frozenset({tree, slot}), writes=frozenset({slot}),
        label=step.label,
    )


def plan_footprints(plan: Plan) -> list[Footprint]:
    return [step_footprint(step) for step in plan.steps]


def happens_before(a: Footprint, b: Footprint) -> bool:
    """True when ``a`` is ordered before ``b`` in the parallel schedule."""
    if a.epoch < b.epoch:
        return True
    if a.epoch > b.epoch:
        return False
    return a.lane == b.lane and a.uid < b.uid


def find_races(footprints: Sequence[Footprint]) -> list[RacePair]:
    """All concurrent conflicting pairs, by resource-indexed sweep."""
    by_resource: dict[str, list[tuple[Footprint, bool]]] = {}
    for fp in footprints:
        for resource in fp.reads | fp.writes:
            by_resource.setdefault(resource, []).append(
                (fp, resource in fp.writes)
            )
    pairs: dict[tuple[int, int], set] = {}
    for resource, touches in by_resource.items():
        if len({(fp.lane, fp.epoch) for fp, _ in touches}) == 1:
            continue  # one lane, one epoch: plan order covers every pair
        for i, (a, a_writes) in enumerate(touches):
            for b, b_writes in touches[i + 1 :]:
                if not (a_writes or b_writes):
                    continue
                if happens_before(a, b) or happens_before(b, a):
                    continue
                key = (min(a.uid, b.uid), max(a.uid, b.uid))
                pairs.setdefault(key, set()).add(resource)
    lookup = {fp.uid: fp for fp in footprints}
    return [
        RacePair(
            first=lookup[first], second=lookup[second],
            resources=frozenset(resources),
        )
        for (first, second), resources in sorted(pairs.items())
    ]


def analyze_plan(plan: Plan, where: str = "plan") -> list[Finding]:
    """Race findings for one plan: errors for real races, info for benign
    idempotent (content-addressed) conflicts."""
    findings: list[Finding] = []
    for race in find_races(plan_footprints(plan)):
        resources = ", ".join(sorted(race.resources))
        message = (
            f"steps {race.first.uid} ({race.first.op} "
            f"{race.first.label or '?'}) and {race.second.uid} "
            f"({race.second.op} {race.second.label or '?'}) are concurrent "
            f"and conflict on {resources}"
        )
        if race.benign:
            findings.append(
                Finding(
                    rule="races.idempotent-write",
                    message=message + " (content-addressed slot: benign)",
                    where=where,
                    severity=INFO,
                )
            )
        else:
            findings.append(
                Finding(
                    rule="races.plan-conflict",
                    message=message + " — no happens-before edge orders them",
                    where=where,
                    severity=ERROR,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# fusion proof obligations


def check_fused(
    fused: Iterable[FusedStep],
    kernel_hints: Sequence[bool] = (),
    where: str = "compiled",
) -> list[Finding]:
    """Static fusion-legality obligations over a compiled plan's groups."""
    findings: list[Finding] = []
    for group in fused:
        seen_memo: dict[int, int] = {}
        lanes = set()
        for member in group.steps:
            if member.op == "combine":
                lanes.add(member.reducer)
            if member.memo_uid is None:
                continue
            if member.memo_uid in seen_memo:
                findings.append(
                    Finding(
                        rule="races.fused-memo-overlap",
                        message=(
                            f"fused {group.kind} group at step {group.start} "
                            f"has members {seen_memo[member.memo_uid]} and "
                            f"{member.uid} sharing memo slot "
                            f"{member.memo_uid:#x} — batch dispatch would "
                            "miss where sequential replay hits"
                        ),
                        where=where,
                        severity=ERROR,
                    )
                )
            else:
                seen_memo[member.memo_uid] = member.uid
        if len(lanes) > 1:
            findings.append(
                Finding(
                    rule="races.fused-mixed-lane",
                    message=(
                        f"fused {group.kind} group at step {group.start} "
                        f"mixes reducer lanes {sorted(map(str, lanes))} — "
                        "a batch must stay within one worker lane"
                    ),
                    where=where,
                    severity=ERROR,
                )
            )
    for uid, hinted in enumerate(kernel_hints):
        if not hinted:
            continue
        member = _hinted_step(fused, uid)
        if member is not None and member.op != "combine":
            findings.append(
                Finding(
                    rule="races.fused-hint-noncombine",
                    message=(
                        f"kernel hint on step {uid} ({member.op}) — batch "
                        "kernels may only dispatch combine steps"
                    ),
                    where=where,
                    severity=ERROR,
                )
            )
    return findings


def _hinted_step(fused: Iterable[FusedStep], uid: int) -> PlanStep | None:
    for group in fused:
        for member in group.steps:
            if member.uid == uid:
                return member
    return None


def analyze_compiled(compiled: Any, where: str = "compiled") -> list[Finding]:
    """Race + fusion findings for one CompiledPlan."""
    findings = analyze_plan(compiled.plan, where=where)
    findings.extend(
        check_fused(compiled.fused, compiled.kernel_hints, where=where)
    )
    return findings

"""Rule tables, AST resolution helpers, and the purity visitor.

The detection half of :mod:`repro.analysis.purity`: what counts as a
nondeterminism or impurity source (the module/attr/builtin tables), how
attribute chains resolve through a function's environment, and the
:class:`PurityVisitor` that walks one function body flagging violations.
The orchestration half — trust marks, source extraction, bounded helper
recursion — stays in :mod:`repro.analysis.purity`.
"""

from __future__ import annotations

import ast
import builtins
import types
from typing import Any

from repro.analysis.findings import ERROR, Finding

#: Modules whose every call is a nondeterminism source, with the rule to
#: flag and the remedy to suggest.
_NONDET_MODULES = {
    "random": (
        "purity.nondeterminism.random",
        "use a seeded repro.common.rng.RngStream instead",
    ),
    "numpy.random": (
        "purity.nondeterminism.random",
        "use a seeded repro.common.rng.RngStream instead",
    ),
    "time": (
        "purity.nondeterminism.time",
        "job functions must not read the clock",
    ),
    "secrets": (
        "purity.nondeterminism.entropy",
        "job functions must not draw OS entropy",
    ),
}

#: Explicitly seeded constructors exempt from the module-level random rule.
_SEEDED_RANDOM_CALLS = {
    ("numpy.random", "default_rng"),
    ("numpy.random", "Generator"),
    ("numpy.random", "PCG64"),
    ("numpy.random", "SeedSequence"),
}

#: (module, attribute) pairs that are nondeterministic on their own.
_NONDET_ATTRS = {
    ("os", "urandom"): "purity.nondeterminism.entropy",
    ("os", "getrandom"): "purity.nondeterminism.entropy",
    ("uuid", "uuid1"): "purity.nondeterminism.entropy",
    ("uuid", "uuid4"): "purity.nondeterminism.entropy",
    ("datetime", "now"): "purity.nondeterminism.time",
    ("datetime", "today"): "purity.nondeterminism.time",
    ("datetime", "utcnow"): "purity.nondeterminism.time",
}

#: Modules whose calls are I/O (impure) wholesale.
_IO_MODULES = ("subprocess", "socket", "shutil", "requests", "urllib", "http")

#: ``os.*`` calls are I/O except the pure path/name helpers.
_OS_PURE_PREFIXES = ("os.path",)
_OS_PURE_ATTRS = {"fspath", "fsencode", "fsdecode"}

#: Builtins that are nondeterministic or impure when called.
_BUILTIN_RULES = {
    "id": ("purity.nondeterminism.id", "id() depends on object addresses"),
    "hash": (
        "purity.nondeterminism.hash",
        "builtin hash() is randomized per process for str/bytes "
        "(use repro.common.hashing.stable_hash)",
    ),
    "open": ("purity.impurity.io", "file I/O inside a job function"),
    "print": ("purity.impurity.io", "console I/O inside a job function"),
    "input": ("purity.impurity.io", "console I/O inside a job function"),
}

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "clear", "sort", "reverse",
    "add", "discard", "update", "setdefault", "popitem", "write",
    "writelines", "difference_update", "intersection_update",
    "symmetric_difference_update",
}

#: Modules considered part of the trusted deterministic substrate: calls
#: into them are not followed (their own hygiene is covered by --self).
_ALLOWED_MODULE_PREFIXES = ("repro.common.rng", "repro.common.hashing")


# ---------------------------------------------------------------------------
# resolution helpers


def _module_name(value: Any) -> str | None:
    if isinstance(value, types.ModuleType):
        return value.__name__
    return None


def _resolve_chain(node: ast.expr, env: dict[str, Any]) -> tuple[Any, list[str]]:
    """Resolve an attribute chain to (root value, attribute path).

    Only walks attributes through modules and classes — resolving through
    arbitrary objects could trigger property side effects.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.reverse()
    if not isinstance(node, ast.Name):
        return None, parts
    root = env.get(node.id)
    value = root
    consumed = 0
    for attr in parts:
        if isinstance(value, (types.ModuleType, type)):
            try:
                value = getattr(value, attr)
                consumed += 1
                continue
            except AttributeError:
                break
        break
    if consumed == len(parts):
        return value, parts
    # Partially resolved: report the deepest module reached plus the rest.
    return root, parts


def _root_param(node: ast.expr) -> str | None:
    """The base name of an attribute/subscript chain, if it is a Name."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically a set: a set literal/comprehension or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# the visitor


class PurityVisitor(ast.NodeVisitor):
    def __init__(
        self,
        where: str,
        params: set[str],
        env: dict[str, Any],
        line_offset: int,
    ) -> None:
        self.where = where
        self.params = params
        self.env = env
        self.line_offset = line_offset
        self.findings: list[Finding] = []
        #: Plain-Python helpers called by this function, for recursion.
        self.helpers: list[types.FunctionType] = []

    # -- reporting -------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", None)
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                where=self.where,
                line=None if line is None else line + self.line_offset,
                severity=ERROR,
            )
        )

    # -- statements ------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._flag(
            node,
            "purity.impurity.global-write",
            f"declares global {', '.join(node.names)} — memoized results "
            "must not depend on or mutate shared state",
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._flag(
            node,
            "purity.impurity.global-write",
            f"declares nonlocal {', '.join(node.names)} — closure mutation "
            "leaks state across invocations",
        )

    def _check_store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_param(target)
            if root in self.params:
                self._flag(
                    target,
                    "purity.impurity.arg-mutation",
                    f"stores into argument {root!r} — job functions must "
                    "treat inputs as immutable (memoized values are shared)",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    # -- iteration order -------------------------------------------------

    def _check_ordered_consumption(self, node: ast.AST, iterable: ast.expr) -> None:
        if _is_set_expr(iterable):
            self._flag(
                node,
                "purity.nondeterminism.iteration-order",
                "consumes a set in iteration order — set order varies under "
                "hash randomization; sort it first",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_ordered_consumption(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_ordered_consumption(node, node.iter)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        # list(<set>) / tuple(<set>) / iter(<set>): ordered consumption.
        if isinstance(node.func, ast.Name) and node.func.id in (
            "list", "tuple", "iter", "enumerate",
        ):
            if node.args and _is_set_expr(node.args[0]):
                self._check_ordered_consumption(node, node.args[0])

        value, chain = _resolve_chain(node.func, self.env)

        # Method-style heuristics on unresolvable receivers.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            root = _root_param(node.func.value)
            if method == "popitem" and value is None:
                self._flag(
                    node,
                    "purity.nondeterminism.iteration-order",
                    ".popitem() consumes container order",
                )
            elif method == "pop" and not node.args and not node.keywords:
                if value is None:
                    self._flag(
                        node,
                        "purity.nondeterminism.iteration-order",
                        ".pop() with no arguments removes an "
                        "iteration-order-dependent element on sets",
                    )
            elif method in _MUTATING_METHODS and root in self.params:
                if value is None:
                    self._flag(
                        node,
                        "purity.impurity.arg-mutation",
                        f"calls mutating method .{method}() on argument "
                        f"{root!r}",
                    )

        if value is None:
            return

        # Allowlisted deterministic substrate (seeded RngStream et al.).
        value_module = getattr(value, "__module__", None) or _module_name(value)
        if value_module and str(value_module).startswith(_ALLOWED_MODULE_PREFIXES):
            return

        # Builtin rules.
        for name, (rule, message) in _BUILTIN_RULES.items():
            if value is getattr(builtins, name, None):
                self._flag(node, rule, message)
                return

        # Module-rooted rules: resolve which module the callee lives in.
        owner = getattr(value, "__module__", None)
        qualname = getattr(value, "__name__", chain[-1] if chain else "?")
        candidates: list[str] = []
        if owner:
            candidates.append(str(owner))
        if isinstance(value, types.ModuleType):
            candidates.append(value.__name__)
        # numpy C functions often report __module__ None; fall back to the
        # lexical chain resolved through the environment.
        lexical = self._lexical_module(node.func)
        if lexical:
            candidates.append(lexical)
        for module in candidates:
            if self._flag_module_call(node, module, qualname):
                return

        # Plain-Python helpers: queue for bounded recursion.
        if isinstance(value, types.FunctionType):
            self.helpers.append(value)

    def _lexical_module(self, func: ast.expr) -> str | None:
        """The module path the call is written against (e.g. numpy.random)."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.env.get(node.id)
        root_name = _module_name(root)
        if root_name is None:
            return None
        # Walk as deep as the chain stays inside modules.
        current = root
        path = root_name
        for attr in reversed(parts[1:] if parts else []):
            nxt = getattr(current, attr, None)
            if isinstance(nxt, types.ModuleType):
                current = nxt
                path = nxt.__name__
            else:
                break
        return path

    def _flag_module_call(self, node: ast.Call, module: str, name: str) -> bool:
        if (module, name) in _SEEDED_RANDOM_CALLS and node.args:
            return True  # explicitly seeded constructor: allowed
        if (module, name) in _NONDET_ATTRS:
            self._flag(
                node,
                _NONDET_ATTRS[(module, name)],
                f"calls {module}.{name} — nondeterministic across runs",
            )
            return True
        for prefix, (rule, remedy) in _NONDET_MODULES.items():
            if module == prefix or module.startswith(prefix + "."):
                self._flag(
                    node,
                    rule,
                    f"calls into {module} ({name}) — {remedy}",
                )
                return True
        if module == "os" or module.startswith("os."):
            if module.startswith(_OS_PURE_PREFIXES) or name in _OS_PURE_ATTRS:
                return True
            self._flag(
                node,
                "purity.impurity.io",
                f"calls {module}.{name} — OS interaction inside a job function",
            )
            return True
        for io_module in _IO_MODULES:
            if module == io_module or module.startswith(io_module + "."):
                self._flag(
                    node,
                    "purity.impurity.io",
                    f"calls into {module} — I/O inside a job function",
                )
                return True
        if module == "sys" and name in ("stdout", "stderr", "stdin", "exit"):
            self._flag(node, "purity.impurity.io", f"touches sys.{name}")
            return True
        return False

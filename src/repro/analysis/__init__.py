"""Contract checking: static purity analysis + algebraic-law falsification.

Slider's correctness rests on contracts the rest of the system takes on
faith: memoization is sound only for **pure, deterministic** Map/Combine/
Reduce functions, and contraction trees are legal only for **associative**
(rotating trees: also **commutative**) combiners.  This package verifies
those contracts instead of trusting them:

* :mod:`repro.analysis.purity` — an AST walker flagging nondeterminism
  (unseeded randomness, clocks, ``id()``/``hash()``, set iteration order)
  and impurity (global writes, argument mutation, I/O) in job functions,
  with the :func:`trusted` escape hatch for human-audited code;
* :mod:`repro.analysis.laws` — hypothesis-driven falsification of each
  combiner's declared algebra (associativity, commutativity, merge
  determinism, cost sanity);
* :mod:`repro.analysis.repolint` — repo-internal telemetry hygiene rules;
* :mod:`repro.analysis.effects` — interprocedural read/write-set
  inference over job functions (the parallel-safety effect summaries);
* :mod:`repro.analysis.races` — happens-before race detection over the
  plan IR, plus the static fusion-legality proof obligations;
* :mod:`repro.analysis.shared` — the serializability audit and the
  per-variant parallel-safety certificates;
* :mod:`repro.analysis.dynamic` — the vector-clock cross-check that
  validates the static race verdicts against actual execution;
* :mod:`repro.analysis.trustaudit` — the stale-trust audit over every
  ``@trusted`` mark;
* :mod:`repro.analysis.sarif` — deterministic SARIF 2.1.0 export;
* ``python -m repro.analysis`` — the CLI gluing all of it together, run
  as a blocking CI gate over the repo (``--self``) and available for user
  modules before a Slider accepts their jobs.
"""

from repro.analysis.dynamic import DynamicRaceRecorder
from repro.analysis.effects import (
    EffectSummary,
    effect_findings,
    infer_effects,
    summarize_functions,
)
from repro.analysis.findings import AnalysisReport, Finding, finalize
from repro.analysis.races import analyze_compiled, analyze_plan, check_fused
from repro.analysis.sarif import to_sarif, write_sarif
from repro.analysis.shared import (
    ParallelSafetyCertificate,
    audit_value,
    certify_all,
    certify_variant,
)
from repro.analysis.trustaudit import TrustEntry, audit_trusted
from repro.analysis.laws import (
    check_combiner_laws,
    leaf_strategy_for,
    register_leaf_strategy,
    value_strategy_for,
)
from repro.analysis.purity import analyze_callable, analyze_functions, is_trusted, trusted
from repro.analysis.repolint import lint_file, lint_package
from repro.analysis.targets import (
    CheckTarget,
    aggregation_target,
    check_target,
    job_target,
    module_targets,
    plan_targets,
    registry_targets,
)

__all__ = [
    "AnalysisReport",
    "DynamicRaceRecorder",
    "EffectSummary",
    "Finding",
    "ParallelSafetyCertificate",
    "TrustEntry",
    "analyze_compiled",
    "analyze_plan",
    "audit_trusted",
    "audit_value",
    "certify_all",
    "certify_variant",
    "check_fused",
    "effect_findings",
    "finalize",
    "infer_effects",
    "summarize_functions",
    "to_sarif",
    "write_sarif",
    "check_combiner_laws",
    "leaf_strategy_for",
    "register_leaf_strategy",
    "value_strategy_for",
    "analyze_callable",
    "analyze_functions",
    "is_trusted",
    "trusted",
    "lint_file",
    "lint_package",
    "CheckTarget",
    "aggregation_target",
    "check_target",
    "job_target",
    "module_targets",
    "plan_targets",
    "registry_targets",
]

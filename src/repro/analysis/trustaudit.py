"""The stale-trust audit: are ``@trusted`` marks still earning their keep?

A ``@trusted(reason=...)`` mark suppresses the purity checker for one
function.  Marks rot: the flagged construct gets refactored away, and the
mark silently keeps suppressing a checker that would now pass.  This
audit re-analyzes every trusted function in a corpus *through* the mark
(:func:`~repro.analysis.purity.analyze_callable` with
``ignore_trust=True``) and classifies each mark:

``active``
    the checker still finds violations — the mark is doing real work;
``stale``
    the checker is clean — the mark suppresses nothing and should be
    removed (reported as ``lint.stale-trusted``, warning severity);
``unanalyzable``
    the source cannot be walked, so the mark is unverifiable either way.

``--self`` renders the result as an audit table so every shipped trust
mark is visible in one place, with its reason next to its status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.purity import analyze_callable, is_trusted


@dataclass(frozen=True)
class TrustEntry:
    """One audited ``@trusted`` mark."""

    where: str
    role: str
    reason: str
    #: "active" | "stale" | "unanalyzable"
    status: str
    #: Rules the mark is suppressing (empty when stale/unanalyzable).
    suppressed: tuple[str, ...] = ()


def audit_trusted(
    functions: Iterable[tuple[str, Callable]],
) -> tuple[list[TrustEntry], list[Finding]]:
    """Audit every trusted function among ``(role, callable)`` pairs.

    Returns the audit table plus findings: one ``lint.stale-trusted``
    warning per mark that no longer suppresses anything.
    """
    entries: list[TrustEntry] = []
    findings: list[Finding] = []
    seen: set[str] = set()
    for role, fn in functions:
        reason = is_trusted(fn)
        if reason is None:
            continue
        where = (
            f"{getattr(fn, '__module__', '?')}."
            f"{getattr(fn, '__qualname__', fn)}"
        )
        if where in seen:
            continue
        seen.add(where)
        through = analyze_callable(fn, role=role, ignore_trust=True)
        suppressed = tuple(
            sorted(
                {
                    f.rule
                    for f in through
                    if f.severity in (ERROR, WARNING)
                }
            )
        )
        if any(f.rule == "purity.unanalyzable" for f in through):
            status = "unanalyzable"
        elif suppressed:
            status = "active"
        else:
            status = "stale"
            findings.append(
                Finding(
                    rule="lint.stale-trusted",
                    message=(
                        f"@trusted(reason={reason!r}) suppresses nothing — "
                        "the checker passes this function; remove the mark"
                    ),
                    where=where,
                    severity=WARNING,
                )
            )
        entries.append(
            TrustEntry(
                where=where,
                role=role,
                reason=reason,
                status=status,
                suppressed=suppressed,
            )
        )
    entries.sort(key=lambda e: (e.where, e.role))
    return entries, findings


def render_table(entries: list[TrustEntry]) -> str:
    """The audit table ``--self`` prints (one line per trust mark)."""
    if not entries:
        return "trusted marks: none"
    lines = [f"trusted marks ({len(entries)}):"]
    for entry in entries:
        detail = (
            f" suppressing {', '.join(entry.suppressed)}"
            if entry.suppressed
            else ""
        )
        lines.append(
            f"  [{entry.status}] {entry.where}: {entry.reason!r}{detail}"
        )
    return "\n".join(lines)

"""AST-based purity/determinism checking of user job functions.

Memoization (:mod:`repro.core.memo`) is only sound when Map/Combine/Reduce
functions are **pure** (no observable side effects) and **deterministic**
(same inputs, same outputs, across processes).  This checker walks the AST
of a function — plus the plain Python helpers it calls, up to a bounded
depth — and flags the nondeterminism and impurity sources that silently
corrupt memo hits:

nondeterminism
    unseeded ``random``/``numpy.random`` use, wall-clock reads (``time``,
    ``datetime.now``), entropy sources (``os.urandom``, ``uuid.uuid4``,
    ``secrets``), ``id()``, builtin ``hash()`` (randomized per process for
    str/bytes), and set iteration-order dependence (``set.pop()``,
    ``popitem()``, ordering a bare set literal/constructor).

impurity
    ``global``/``nonlocal`` writes, mutation of input arguments (attribute
    or subscript stores, known mutating methods), and I/O (``open``,
    ``print``, ``input``, ``os``/``subprocess``/``socket``/... calls).

Two escape hatches keep the checker usable:

* :func:`repro.analysis.trusted` marks a function as audited by a human
  (the checker records an ``info`` note and moves on);
* streams from :mod:`repro.common.rng` are allowlisted — they are seeded
  and named, so their use *is* deterministic.

The checker is deliberately conservative-but-shallow: it resolves names
through the function's globals and closure cells (so ``random.random()``
is flagged whatever it was imported as), but it does not track dataflow
through locals.  False negatives are possible; the law-falsification
harness (:mod:`repro.analysis.laws`) covers the algebraic half of the
contract dynamically.

What counts as a violation — the rule tables and the AST visitor that
applies them — lives in :mod:`repro.analysis.purity_rules`; this module
owns the trust marks, source extraction, and bounded helper recursion.
"""

from __future__ import annotations

import ast
import builtins
import functools
import inspect
import textwrap
import types
from typing import Any, Callable, Iterable

from repro.analysis.findings import INFO, Finding
from repro.analysis.purity_rules import _ALLOWED_MODULE_PREFIXES, PurityVisitor

#: Backwards-compatible alias for the pre-split private name.
_PurityVisitor = PurityVisitor

#: Attribute set by the @trusted decorator.
TRUSTED_ATTR = "__repro_trusted__"

#: How many levels of plain-Python helper calls to follow.
MAX_HELPER_DEPTH = 3


def trusted(reason: str) -> Callable:
    """Mark a function as manually audited for purity/determinism.

    The checker skips trusted functions, recording an ``info`` note with
    the reason — the escape hatch for code that *looks* nondeterministic
    but is not (or whose nondeterminism is understood and accepted)::

        @trusted(reason="reads a seeded module-level RngStream")
        def map_sample(record): ...
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ValueError("@trusted requires a non-empty reason string")

    def mark(fn: Callable) -> Callable:
        setattr(fn, TRUSTED_ATTR, reason)
        return fn

    return mark


def is_trusted(fn: Any) -> str | None:
    """The trust reason for ``fn`` (unwrapping methods/partials), if any."""
    for candidate in (fn, getattr(fn, "__func__", None), getattr(fn, "func", None)):
        if candidate is not None:
            reason = getattr(candidate, TRUSTED_ATTR, None)
            if reason is not None:
                return str(reason)
    return None


# ---------------------------------------------------------------------------
# source extraction


def _unwrap(fn: Any) -> Any:
    if isinstance(fn, functools.partial):
        return _unwrap(fn.func)
    if inspect.ismethod(fn):
        return fn.__func__
    return fn


def _environment(fn: types.FunctionType) -> dict[str, Any]:
    """Names visible to ``fn``: closure cells over globals over builtins."""
    env: dict[str, Any] = dict(vars(builtins))
    env.update(getattr(fn, "__globals__", {}))
    try:
        closure = inspect.getclosurevars(fn)
    except (TypeError, ValueError):  # builtins / odd callables
        return env
    env.update(closure.nonlocals)
    return env


def _source_node(
    fn: types.FunctionType,
) -> tuple[ast.AST | None, str, int]:
    """Parse ``fn``'s source and return (node, filename, line offset).

    Named functions parse their dedented source block; lambdas are located
    in their module's AST by first line number and parameter count.
    """
    filename = getattr(fn.__code__, "co_filename", "<unknown>")
    if fn.__name__ != "<lambda>":
        source, start = inspect.getsourcelines(fn)
        tree = ast.parse(textwrap.dedent("".join(source)))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == fn.__name__:
                    return node, filename, start - 1
        return None, filename, start - 1
    module = inspect.getmodule(fn)
    if module is None:
        raise OSError("lambda with no importable module")
    tree = ast.parse(inspect.getsource(module))
    wanted_line = fn.__code__.co_firstlineno
    wanted_args = fn.__code__.co_argcount
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda) and node.lineno == wanted_line:
            if len(node.args.args) == wanted_args:
                return node, filename, 0
    return None, filename, 0


# ---------------------------------------------------------------------------
# entry points


def _param_names(node: ast.AST) -> set[str]:
    args = getattr(node, "args", None)
    if args is None:
        return set()
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def analyze_callable(
    fn: Callable,
    *,
    role: str = "function",
    ignore_trust: bool = False,
    _depth: int = 0,
    _seen: set[int] | None = None,
) -> list[Finding]:
    """Check one callable (and its plain-Python helpers) for purity.

    ``role`` labels the finding location (``map``, ``reduce``,
    ``combiner.merge``, ...).  Returns the findings; an empty list means
    the function passed every rule.  ``ignore_trust`` analyzes through a
    ``@trusted`` mark — the stale-trust audit uses it to re-derive what
    the mark is suppressing.
    """
    seen = _seen if _seen is not None else set()
    fn = _unwrap(fn)
    where = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', fn)}"
    if role != "function":
        where = f"{where} [{role}]"

    reason = is_trusted(fn)
    if reason is not None and not ignore_trust:
        return [
            Finding(
                rule="purity.trusted",
                message=f"trusted: {reason}",
                where=where,
                severity=INFO,
            )
        ]

    if not isinstance(fn, types.FunctionType):
        # Builtins / C extensions: nothing to parse; call sites of known-bad
        # builtins are caught in their callers.
        return []

    code_id = id(fn.__code__)
    if code_id in seen:
        return []
    seen.add(code_id)

    try:
        node, _filename, offset = _source_node(fn)
    except (OSError, TypeError, SyntaxError) as exc:
        return [
            Finding(
                rule="purity.unanalyzable",
                message=f"source unavailable ({exc})",
                where=where,
                severity=INFO,
            )
        ]
    if node is None:
        return [
            Finding(
                rule="purity.unanalyzable",
                message="could not locate function definition in source",
                where=where,
                severity=INFO,
            )
        ]

    visitor = PurityVisitor(
        where=where,
        params=_param_names(node),
        env=_environment(fn),
        line_offset=offset,
    )
    body = node.body if isinstance(node.body, list) else [node.body]
    for statement in body:
        visitor.visit(statement)
    # Default-argument expressions are part of the contract too: a lambda
    # default calling random() poisons every invocation that omits the
    # argument, exactly like the same call in the body would.
    args = getattr(node, "args", None)
    if args is not None:
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is not None:
                visitor.visit(default)
    findings = list(visitor.findings)

    if _depth < MAX_HELPER_DEPTH:
        for helper in visitor.helpers:
            module = getattr(helper, "__module__", "") or ""
            if module.startswith(_ALLOWED_MODULE_PREFIXES):
                continue
            findings.extend(
                analyze_callable(
                    helper,
                    role=f"helper of {getattr(fn, '__qualname__', fn)}",
                    _depth=_depth + 1,
                    _seen=seen,
                )
            )
    return findings


def analyze_functions(
    functions: Iterable[tuple[str, Callable]],
) -> list[Finding]:
    """Check a batch of (role, callable) pairs."""
    findings: list[Finding] = []
    for role, fn in functions:
        findings.extend(analyze_callable(fn, role=role))
    return findings

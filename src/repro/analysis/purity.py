"""AST-based purity/determinism checking of user job functions.

Memoization (:mod:`repro.core.memo`) is only sound when Map/Combine/Reduce
functions are **pure** (no observable side effects) and **deterministic**
(same inputs, same outputs, across processes).  This checker walks the AST
of a function — plus the plain Python helpers it calls, up to a bounded
depth — and flags the nondeterminism and impurity sources that silently
corrupt memo hits:

nondeterminism
    unseeded ``random``/``numpy.random`` use, wall-clock reads (``time``,
    ``datetime.now``), entropy sources (``os.urandom``, ``uuid.uuid4``,
    ``secrets``), ``id()``, builtin ``hash()`` (randomized per process for
    str/bytes), and set iteration-order dependence (``set.pop()``,
    ``popitem()``, ordering a bare set literal/constructor).

impurity
    ``global``/``nonlocal`` writes, mutation of input arguments (attribute
    or subscript stores, known mutating methods), and I/O (``open``,
    ``print``, ``input``, ``os``/``subprocess``/``socket``/... calls).

Two escape hatches keep the checker usable:

* :func:`repro.analysis.trusted` marks a function as audited by a human
  (the checker records an ``info`` note and moves on);
* streams from :mod:`repro.common.rng` are allowlisted — they are seeded
  and named, so their use *is* deterministic.

The checker is deliberately conservative-but-shallow: it resolves names
through the function's globals and closure cells (so ``random.random()``
is flagged whatever it was imported as), but it does not track dataflow
through locals.  False negatives are possible; the law-falsification
harness (:mod:`repro.analysis.laws`) covers the algebraic half of the
contract dynamically.
"""

from __future__ import annotations

import ast
import builtins
import functools
import inspect
import textwrap
import types
from typing import Any, Callable, Iterable

from repro.analysis.findings import ERROR, INFO, Finding

#: Attribute set by the @trusted decorator.
TRUSTED_ATTR = "__repro_trusted__"

#: How many levels of plain-Python helper calls to follow.
MAX_HELPER_DEPTH = 3

#: Modules whose every call is a nondeterminism source, with the rule to
#: flag and the remedy to suggest.
_NONDET_MODULES = {
    "random": (
        "purity.nondeterminism.random",
        "use a seeded repro.common.rng.RngStream instead",
    ),
    "numpy.random": (
        "purity.nondeterminism.random",
        "use a seeded repro.common.rng.RngStream instead",
    ),
    "time": (
        "purity.nondeterminism.time",
        "job functions must not read the clock",
    ),
    "secrets": (
        "purity.nondeterminism.entropy",
        "job functions must not draw OS entropy",
    ),
}

#: Explicitly seeded constructors exempt from the module-level random rule.
_SEEDED_RANDOM_CALLS = {
    ("numpy.random", "default_rng"),
    ("numpy.random", "Generator"),
    ("numpy.random", "PCG64"),
    ("numpy.random", "SeedSequence"),
}

#: (module, attribute) pairs that are nondeterministic on their own.
_NONDET_ATTRS = {
    ("os", "urandom"): "purity.nondeterminism.entropy",
    ("os", "getrandom"): "purity.nondeterminism.entropy",
    ("uuid", "uuid1"): "purity.nondeterminism.entropy",
    ("uuid", "uuid4"): "purity.nondeterminism.entropy",
    ("datetime", "now"): "purity.nondeterminism.time",
    ("datetime", "today"): "purity.nondeterminism.time",
    ("datetime", "utcnow"): "purity.nondeterminism.time",
}

#: Modules whose calls are I/O (impure) wholesale.
_IO_MODULES = ("subprocess", "socket", "shutil", "requests", "urllib", "http")

#: ``os.*`` calls are I/O except the pure path/name helpers.
_OS_PURE_PREFIXES = ("os.path",)
_OS_PURE_ATTRS = {"fspath", "fsencode", "fsdecode"}

#: Builtins that are nondeterministic or impure when called.
_BUILTIN_RULES = {
    "id": ("purity.nondeterminism.id", "id() depends on object addresses"),
    "hash": (
        "purity.nondeterminism.hash",
        "builtin hash() is randomized per process for str/bytes "
        "(use repro.common.hashing.stable_hash)",
    ),
    "open": ("purity.impurity.io", "file I/O inside a job function"),
    "print": ("purity.impurity.io", "console I/O inside a job function"),
    "input": ("purity.impurity.io", "console I/O inside a job function"),
}

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "clear", "sort", "reverse",
    "add", "discard", "update", "setdefault", "popitem", "write",
    "writelines", "difference_update", "intersection_update",
    "symmetric_difference_update",
}

#: Modules considered part of the trusted deterministic substrate: calls
#: into them are not followed (their own hygiene is covered by --self).
_ALLOWED_MODULE_PREFIXES = ("repro.common.rng", "repro.common.hashing")


def trusted(reason: str) -> Callable:
    """Mark a function as manually audited for purity/determinism.

    The checker skips trusted functions, recording an ``info`` note with
    the reason — the escape hatch for code that *looks* nondeterministic
    but is not (or whose nondeterminism is understood and accepted)::

        @trusted(reason="reads a seeded module-level RngStream")
        def map_sample(record): ...
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ValueError("@trusted requires a non-empty reason string")

    def mark(fn: Callable) -> Callable:
        setattr(fn, TRUSTED_ATTR, reason)
        return fn

    return mark


def is_trusted(fn: Any) -> str | None:
    """The trust reason for ``fn`` (unwrapping methods/partials), if any."""
    for candidate in (fn, getattr(fn, "__func__", None), getattr(fn, "func", None)):
        if candidate is not None:
            reason = getattr(candidate, TRUSTED_ATTR, None)
            if reason is not None:
                return str(reason)
    return None


# ---------------------------------------------------------------------------
# resolution helpers


def _unwrap(fn: Any) -> Any:
    if isinstance(fn, functools.partial):
        return _unwrap(fn.func)
    if inspect.ismethod(fn):
        return fn.__func__
    return fn


def _environment(fn: types.FunctionType) -> dict[str, Any]:
    """Names visible to ``fn``: closure cells over globals over builtins."""
    env: dict[str, Any] = dict(vars(builtins))
    env.update(getattr(fn, "__globals__", {}))
    try:
        closure = inspect.getclosurevars(fn)
    except (TypeError, ValueError):  # builtins / odd callables
        return env
    env.update(closure.nonlocals)
    return env


def _module_name(value: Any) -> str | None:
    if isinstance(value, types.ModuleType):
        return value.__name__
    return None


def _resolve_chain(node: ast.expr, env: dict[str, Any]) -> tuple[Any, list[str]]:
    """Resolve an attribute chain to (root value, attribute path).

    Only walks attributes through modules and classes — resolving through
    arbitrary objects could trigger property side effects.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.reverse()
    if not isinstance(node, ast.Name):
        return None, parts
    root = env.get(node.id)
    value = root
    consumed = 0
    for attr in parts:
        if isinstance(value, (types.ModuleType, type)):
            try:
                value = getattr(value, attr)
                consumed += 1
                continue
            except AttributeError:
                break
        break
    if consumed == len(parts):
        return value, parts
    # Partially resolved: report the deepest module reached plus the rest.
    return root, parts


def _root_param(node: ast.expr) -> str | None:
    """The base name of an attribute/subscript chain, if it is a Name."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically a set: a set literal/comprehension or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# source extraction


def _source_node(
    fn: types.FunctionType,
) -> tuple[ast.AST | None, str, int]:
    """Parse ``fn``'s source and return (node, filename, line offset).

    Named functions parse their dedented source block; lambdas are located
    in their module's AST by first line number and parameter count.
    """
    filename = getattr(fn.__code__, "co_filename", "<unknown>")
    if fn.__name__ != "<lambda>":
        source, start = inspect.getsourcelines(fn)
        tree = ast.parse(textwrap.dedent("".join(source)))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == fn.__name__:
                    return node, filename, start - 1
        return None, filename, start - 1
    module = inspect.getmodule(fn)
    if module is None:
        raise OSError("lambda with no importable module")
    tree = ast.parse(inspect.getsource(module))
    wanted_line = fn.__code__.co_firstlineno
    wanted_args = fn.__code__.co_argcount
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda) and node.lineno == wanted_line:
            if len(node.args.args) == wanted_args:
                return node, filename, 0
    return None, filename, 0


# ---------------------------------------------------------------------------
# the visitor


class _PurityVisitor(ast.NodeVisitor):
    def __init__(
        self,
        where: str,
        params: set[str],
        env: dict[str, Any],
        line_offset: int,
    ) -> None:
        self.where = where
        self.params = params
        self.env = env
        self.line_offset = line_offset
        self.findings: list[Finding] = []
        #: Plain-Python helpers called by this function, for recursion.
        self.helpers: list[types.FunctionType] = []

    # -- reporting -------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", None)
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                where=self.where,
                line=None if line is None else line + self.line_offset,
                severity=ERROR,
            )
        )

    # -- statements ------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._flag(
            node,
            "purity.impurity.global-write",
            f"declares global {', '.join(node.names)} — memoized results "
            "must not depend on or mutate shared state",
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._flag(
            node,
            "purity.impurity.global-write",
            f"declares nonlocal {', '.join(node.names)} — closure mutation "
            "leaks state across invocations",
        )

    def _check_store_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_param(target)
            if root in self.params:
                self._flag(
                    target,
                    "purity.impurity.arg-mutation",
                    f"stores into argument {root!r} — job functions must "
                    "treat inputs as immutable (memoized values are shared)",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    # -- iteration order -------------------------------------------------

    def _check_ordered_consumption(self, node: ast.AST, iterable: ast.expr) -> None:
        if _is_set_expr(iterable):
            self._flag(
                node,
                "purity.nondeterminism.iteration-order",
                "consumes a set in iteration order — set order varies under "
                "hash randomization; sort it first",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_ordered_consumption(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_ordered_consumption(node, node.iter)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        # list(<set>) / tuple(<set>) / iter(<set>): ordered consumption.
        if isinstance(node.func, ast.Name) and node.func.id in (
            "list", "tuple", "iter", "enumerate",
        ):
            if node.args and _is_set_expr(node.args[0]):
                self._check_ordered_consumption(node, node.args[0])

        value, chain = _resolve_chain(node.func, self.env)

        # Method-style heuristics on unresolvable receivers.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            root = _root_param(node.func.value)
            if method == "popitem" and value is None:
                self._flag(
                    node,
                    "purity.nondeterminism.iteration-order",
                    ".popitem() consumes container order",
                )
            elif method == "pop" and not node.args and not node.keywords:
                if value is None:
                    self._flag(
                        node,
                        "purity.nondeterminism.iteration-order",
                        ".pop() with no arguments removes an "
                        "iteration-order-dependent element on sets",
                    )
            elif method in _MUTATING_METHODS and root in self.params:
                if value is None:
                    self._flag(
                        node,
                        "purity.impurity.arg-mutation",
                        f"calls mutating method .{method}() on argument "
                        f"{root!r}",
                    )

        if value is None:
            return

        # Allowlisted deterministic substrate (seeded RngStream et al.).
        value_module = getattr(value, "__module__", None) or _module_name(value)
        if value_module and str(value_module).startswith(_ALLOWED_MODULE_PREFIXES):
            return

        # Builtin rules.
        for name, (rule, message) in _BUILTIN_RULES.items():
            if value is getattr(builtins, name, None):
                self._flag(node, rule, message)
                return

        # Module-rooted rules: resolve which module the callee lives in.
        owner = getattr(value, "__module__", None)
        qualname = getattr(value, "__name__", chain[-1] if chain else "?")
        candidates: list[str] = []
        if owner:
            candidates.append(str(owner))
        if isinstance(value, types.ModuleType):
            candidates.append(value.__name__)
        # numpy C functions often report __module__ None; fall back to the
        # lexical chain resolved through the environment.
        lexical = self._lexical_module(node.func)
        if lexical:
            candidates.append(lexical)
        for module in candidates:
            if self._flag_module_call(node, module, qualname):
                return

        # Plain-Python helpers: queue for bounded recursion.
        if isinstance(value, types.FunctionType):
            self.helpers.append(value)

    def _lexical_module(self, func: ast.expr) -> str | None:
        """The module path the call is written against (e.g. numpy.random)."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.env.get(node.id)
        root_name = _module_name(root)
        if root_name is None:
            return None
        # Walk as deep as the chain stays inside modules.
        current = root
        path = root_name
        for attr in reversed(parts[1:] if parts else []):
            nxt = getattr(current, attr, None)
            if isinstance(nxt, types.ModuleType):
                current = nxt
                path = nxt.__name__
            else:
                break
        return path

    def _flag_module_call(self, node: ast.Call, module: str, name: str) -> bool:
        if (module, name) in _SEEDED_RANDOM_CALLS and node.args:
            return True  # explicitly seeded constructor: allowed
        if (module, name) in _NONDET_ATTRS:
            self._flag(
                node,
                _NONDET_ATTRS[(module, name)],
                f"calls {module}.{name} — nondeterministic across runs",
            )
            return True
        for prefix, (rule, remedy) in _NONDET_MODULES.items():
            if module == prefix or module.startswith(prefix + "."):
                self._flag(
                    node,
                    rule,
                    f"calls into {module} ({name}) — {remedy}",
                )
                return True
        if module == "os" or module.startswith("os."):
            if module.startswith(_OS_PURE_PREFIXES) or name in _OS_PURE_ATTRS:
                return True
            self._flag(
                node,
                "purity.impurity.io",
                f"calls {module}.{name} — OS interaction inside a job function",
            )
            return True
        for io_module in _IO_MODULES:
            if module == io_module or module.startswith(io_module + "."):
                self._flag(
                    node,
                    "purity.impurity.io",
                    f"calls into {module} — I/O inside a job function",
                )
                return True
        if module == "sys" and name in ("stdout", "stderr", "stdin", "exit"):
            self._flag(node, "purity.impurity.io", f"touches sys.{name}")
            return True
        return False


# ---------------------------------------------------------------------------
# entry points


def _param_names(node: ast.AST) -> set[str]:
    args = getattr(node, "args", None)
    if args is None:
        return set()
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def analyze_callable(
    fn: Callable,
    *,
    role: str = "function",
    _depth: int = 0,
    _seen: set[int] | None = None,
) -> list[Finding]:
    """Check one callable (and its plain-Python helpers) for purity.

    ``role`` labels the finding location (``map``, ``reduce``,
    ``combiner.merge``, ...).  Returns the findings; an empty list means
    the function passed every rule.
    """
    seen = _seen if _seen is not None else set()
    fn = _unwrap(fn)
    where = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', fn)}"
    if role != "function":
        where = f"{where} [{role}]"

    reason = is_trusted(fn)
    if reason is not None:
        return [
            Finding(
                rule="purity.trusted",
                message=f"trusted: {reason}",
                where=where,
                severity=INFO,
            )
        ]

    if not isinstance(fn, types.FunctionType):
        # Builtins / C extensions: nothing to parse; call sites of known-bad
        # builtins are caught in their callers.
        return []

    code_id = id(fn.__code__)
    if code_id in seen:
        return []
    seen.add(code_id)

    try:
        node, _filename, offset = _source_node(fn)
    except (OSError, TypeError, SyntaxError) as exc:
        return [
            Finding(
                rule="purity.unanalyzable",
                message=f"source unavailable ({exc})",
                where=where,
                severity=INFO,
            )
        ]
    if node is None:
        return [
            Finding(
                rule="purity.unanalyzable",
                message="could not locate function definition in source",
                where=where,
                severity=INFO,
            )
        ]

    visitor = _PurityVisitor(
        where=where,
        params=_param_names(node),
        env=_environment(fn),
        line_offset=offset,
    )
    body = node.body if isinstance(node.body, list) else [node.body]
    for statement in body:
        visitor.visit(statement)
    findings = list(visitor.findings)

    if _depth < MAX_HELPER_DEPTH:
        for helper in visitor.helpers:
            module = getattr(helper, "__module__", "") or ""
            if module.startswith(_ALLOWED_MODULE_PREFIXES):
                continue
            findings.extend(
                analyze_callable(
                    helper,
                    role=f"helper of {getattr(fn, '__qualname__', fn)}",
                    _depth=_depth + 1,
                    _seen=seen,
                )
            )
    return findings


def analyze_functions(
    functions: Iterable[tuple[str, Callable]],
) -> list[Finding]:
    """Check a batch of (role, callable) pairs."""
    findings: list[Finding] = []
    for role, fn in functions:
        findings.extend(analyze_callable(fn, role=role))
    return findings

"""``python -m repro.analysis`` — the contract-checker CLI.

Modes:

* ``--self`` — check the repo itself: repo-internal lint rules over
  ``src/repro``, then purity + algebraic laws over the shipped corpus
  (micro-benchmarks, case studies, query aggregates).  This is the
  blocking CI gate.
* ``MODULE ...`` — import each named module and check every job,
  combiner, and aggregation found in it — the entry point for user
  workloads before handing them to a long-lived Slider.

Exit status is nonzero when any error-severity finding is recorded.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path

from repro.analysis.findings import AnalysisReport
from repro.analysis.repolint import lint_package
from repro.analysis.targets import (
    CheckTarget,
    check_target,
    module_targets,
    registry_targets,
)


def _check_targets(
    targets: list[CheckTarget],
    report: AnalysisReport,
    *,
    run_purity: bool,
    run_laws: bool,
    max_examples: int,
) -> None:
    for target in targets:
        check_target(
            target,
            report,
            check_purity=run_purity,
            check_laws=run_laws,
            max_examples=max_examples,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static purity/determinism checks and algebraic-law "
        "falsification for Slider jobs.",
    )
    parser.add_argument(
        "modules",
        nargs="*",
        help="importable module names to scan for jobs/combiners/aggregates",
    )
    parser.add_argument(
        "--self",
        dest="check_self",
        action="store_true",
        help="check the repo: lint rules plus the shipped app corpus",
    )
    parser.add_argument(
        "--max-examples",
        type=int,
        default=60,
        help="hypothesis examples per law (default: 60)",
    )
    parser.add_argument(
        "--no-laws", action="store_true", help="skip law falsification"
    )
    parser.add_argument(
        "--no-purity", action="store_true", help="skip the purity checker"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip repo lint rules (--self)"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also print non-errors"
    )
    args = parser.parse_args(argv)

    if not args.check_self and not args.modules:
        parser.error("nothing to check: pass --self and/or module names")

    report = AnalysisReport()
    run_purity = not args.no_purity
    run_laws = not args.no_laws

    if args.check_self:
        if not args.no_lint:
            import repro

            package_root = Path(repro.__file__).resolve().parent
            report.extend(lint_package(package_root))
        _check_targets(
            registry_targets(),
            report,
            run_purity=run_purity,
            run_laws=run_laws,
            max_examples=args.max_examples,
        )

    for module_name in args.modules:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            print(f"error: cannot import {module_name!r}: {exc}", file=sys.stderr)
            return 2
        targets = module_targets(module)
        if not targets:
            print(f"warning: no checkable objects found in {module_name!r}")
        _check_targets(
            targets,
            report,
            run_purity=run_purity,
            run_laws=run_laws,
            max_examples=args.max_examples,
        )

    print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1

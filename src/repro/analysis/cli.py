"""``python -m repro.analysis`` — the contract-checker CLI.

Modes:

* ``--self`` — check the repo itself: repo-internal lint rules over
  ``src/repro``, then purity + algebraic laws + effect inference over
  the shipped corpus (micro-benchmarks, case studies, query aggregates),
  the stale-trust audit, and the parallel-safety certification of all
  five tree variants (race detection + shared-state audit).  This is the
  blocking CI gate.
* ``MODULE ...`` — import each named module and check every job,
  combiner, and aggregation found in it — the entry point for user
  workloads before handing them to a long-lived Slider.

Output is deterministic (findings deduplicated, sorted by location and
rule); ``--sarif PATH`` additionally exports a SARIF 2.1.0 log and
``--certificates DIR`` writes one machine-readable parallel-safety
certificate per variant.  Exit status is nonzero when any error-severity
finding is recorded.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path

from repro.analysis.effects import effect_findings
from repro.analysis.findings import AnalysisReport
from repro.analysis.repolint import lint_package
from repro.analysis.targets import (
    CheckTarget,
    check_target,
    module_targets,
    registry_targets,
)

#: Resources the shipped job plane may legitimately touch: memo tables
#: (the kernels' job) and telemetry (commutative counters/charges).
_ALLOWED_EFFECTS = frozenset({"memo", "telemetry"})


def _check_targets(
    targets: list[CheckTarget],
    report: AnalysisReport,
    *,
    run_purity: bool,
    run_laws: bool,
    run_effects: bool,
    max_examples: int,
) -> None:
    for target in targets:
        check_target(
            target,
            report,
            check_purity=run_purity,
            check_laws=run_laws,
            max_examples=max_examples,
        )
        if run_effects:
            report.extend(
                effect_findings(target.functions, allowed=_ALLOWED_EFFECTS)
            )


def _certify(
    report: AnalysisReport,
    out_dir: str | None,
    *,
    run_races: bool = True,
    run_shared: bool = True,
) -> None:
    """Run the per-variant parallel-safety certification; optionally write
    the machine-readable certificates to ``out_dir``."""
    from repro.analysis.shared import certificate_findings, certify_all

    certificates = certify_all(run_races=run_races, run_shared=run_shared)
    report.extend(certificate_findings(certificates))
    for cert in certificates:
        print(
            f"certificate: {cert.variant}/{cert.mode} -> {cert.verdict} "
            f"({cert.runs} runs, {cert.steps_analyzed} steps, "
            f"{cert.values_audited} values, "
            f"{cert.benign_races} benign memo race(s))"
        )
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for cert in certificates:
            path = out / f"{cert.variant}.json"
            path.write_text(
                json.dumps(cert.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )


def _audit_trust(report: AnalysisReport) -> None:
    """Audit every @trusted mark in the shipped corpus; print the table."""
    from repro.analysis.trustaudit import audit_trusted, render_table

    functions = [
        (f"{target.name}:{role}", fn)
        for target in registry_targets()
        for role, fn in target.functions
    ]
    entries, findings = audit_trusted(functions)
    report.extend(findings)
    print(render_table(entries))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static purity/determinism checks and algebraic-law "
        "falsification for Slider jobs.",
    )
    parser.add_argument(
        "modules",
        nargs="*",
        help="importable module names to scan for jobs/combiners/aggregates",
    )
    parser.add_argument(
        "--self",
        dest="check_self",
        action="store_true",
        help="check the repo: lint rules plus the shipped app corpus",
    )
    parser.add_argument(
        "--max-examples",
        type=int,
        default=60,
        help="hypothesis examples per law (default: 60)",
    )
    parser.add_argument(
        "--no-laws", action="store_true", help="skip law falsification"
    )
    parser.add_argument(
        "--no-purity", action="store_true", help="skip the purity checker"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip repo lint rules (--self)"
    )
    parser.add_argument(
        "--no-effects",
        action="store_true",
        help="skip effect inference over job functions",
    )
    parser.add_argument(
        "--no-races",
        action="store_true",
        help="skip plan-level race detection (part of certification)",
    )
    parser.add_argument(
        "--no-shared",
        action="store_true",
        help="skip shared-state certification of the tree variants (--self)",
    )
    parser.add_argument(
        "--certificates",
        metavar="DIR",
        default=None,
        help="write per-variant parallel-safety certificates as JSON",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="export the findings as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also print non-errors"
    )
    args = parser.parse_args(argv)

    if not args.check_self and not args.modules:
        parser.error("nothing to check: pass --self and/or module names")

    report = AnalysisReport()
    run_purity = not args.no_purity
    run_laws = not args.no_laws
    run_effects = not args.no_effects

    if args.check_self:
        if not args.no_lint:
            import repro

            package_root = Path(repro.__file__).resolve().parent
            report.extend(lint_package(package_root))
        _check_targets(
            registry_targets(),
            report,
            run_purity=run_purity,
            run_laws=run_laws,
            run_effects=run_effects,
            max_examples=args.max_examples,
        )
        _audit_trust(report)
        if not (args.no_shared and args.no_races):
            _certify(
                report,
                args.certificates,
                run_races=not args.no_races,
                run_shared=not args.no_shared,
            )

    for module_name in args.modules:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            print(f"error: cannot import {module_name!r}: {exc}", file=sys.stderr)
            return 2
        targets = module_targets(module)
        if not targets:
            print(f"warning: no checkable objects found in {module_name!r}")
        _check_targets(
            targets,
            report,
            run_purity=run_purity,
            run_laws=run_laws,
            run_effects=run_effects,
            max_examples=args.max_examples,
        )

    if args.sarif is not None:
        from repro.analysis.sarif import write_sarif

        write_sarif(report.finalized(), args.sarif)
    print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1

"""Property-based falsification of declared combiner algebra.

A :class:`~repro.mapreduce.combiners.Combiner` *declares* ``associative``
(required by every contraction tree) and ``commutative`` (additionally
required by rotating trees, whose bucket rotation reorders leaves).  The
trees believe the declaration; this harness **verifies** it, using
hypothesis to hunt for counterexamples over the combiner's reachable value
domain:

* **associativity** — ``merge(merge(a, b), c) == merge(a, merge(b, c))``;
* **commutativity** (when claimed) — ``merge(a, b) == merge(b, a)``;
* **merge/fingerprint consistency** — repeated merges of the same inputs
  produce identical, stably-hashable fingerprints (the memo table's
  content ids depend on this);
* **cost sanity** — ``value_size``/``merge_cost`` are non-negative and
  finite.

Values are generated as the *merge closure* of leaf values: a combiner's
laws only need to hold on values the data plane can actually produce (a
leaf emitted by Map, or a merge of such values), so each combiner supplies
a **leaf strategy** — via the registry here for the built-in combiners, or
a ``law_leaves()`` method for app-defined ones — and the harness derives
arbitrary combined values from it.

Floating-point note: float addition is not bitwise associative, so value
comparisons are tolerance-based, scaled by the magnitude of the operands.
A mislabeled algebra (mean-of-means, subtraction, concatenation claimed
commutative) produces operand-scale discrepancies that the tolerance never
absorbs.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.findings import ERROR, Finding
from repro.common.hashing import stable_hash
from repro.mapreduce.combiners import (
    Combiner,
    KSmallestCombiner,
    ListConcatCombiner,
    MaxCombiner,
    MeanCombiner,
    MinCombiner,
    SetUnionCombiner,
    SumCombiner,
    TopKCombiner,
    VectorSumCombiner,
)

#: The key passed to merge calls during law checks (combiners must not
#: behave differently per key in a way that breaks the algebra anyway).
LAW_KEY = "__law__"

#: Relative tolerance for float comparisons, scaled by operand magnitude.
REL_TOL = 1e-9


class _LawFalsified(AssertionError):
    """Raised inside a hypothesis body; carries the counterexample text."""


# ---------------------------------------------------------------------------
# leaf strategies

_LEAF_REGISTRY: dict[type, Callable[[Combiner], st.SearchStrategy]] = {}


def register_leaf_strategy(
    combiner_type: type, factory: Callable[[Combiner], st.SearchStrategy]
) -> None:
    """Register the leaf-value strategy for a combiner class.

    App combiners can instead define a ``law_leaves()`` method returning a
    hypothesis strategy; the method wins over the registry.
    """
    _LEAF_REGISTRY[combiner_type] = factory


def _numbers() -> st.SearchStrategy:
    return st.integers(-10_000, 10_000) | st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )


def _entry() -> st.SearchStrategy:
    """A (score, item) entry with a total order and exact comparisons."""
    return st.tuples(st.integers(-100, 100), st.integers(0, 100))


register_leaf_strategy(SumCombiner, lambda c: _numbers())
register_leaf_strategy(MinCombiner, lambda c: _numbers())
register_leaf_strategy(MaxCombiner, lambda c: _numbers())
register_leaf_strategy(
    MeanCombiner,
    lambda c: st.tuples(
        st.just(1),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    ),
)
register_leaf_strategy(TopKCombiner, lambda c: st.tuples(_entry()))
register_leaf_strategy(KSmallestCombiner, lambda c: st.tuples(_entry()))
register_leaf_strategy(
    ListConcatCombiner,
    lambda c: st.lists(st.integers(-100, 100), max_size=4).map(tuple),
)
register_leaf_strategy(
    VectorSumCombiner,
    lambda c: st.tuples(
        st.just(1),
        st.tuples(
            *(
                st.floats(
                    min_value=-1e3,
                    max_value=1e3,
                    allow_nan=False,
                    allow_infinity=False,
                )
                for _ in range(3)
            )
        ),
    ),
)


register_leaf_strategy(
    SetUnionCombiner, lambda c: st.frozensets(st.integers(0, 100), max_size=5)
)


def leaf_strategy_for(combiner: Combiner) -> st.SearchStrategy | None:
    """The leaf-value strategy for ``combiner``, or None when unknown."""
    law_leaves = getattr(combiner, "law_leaves", None)
    if callable(law_leaves):
        return law_leaves()
    for klass in type(combiner).__mro__:
        factory = _LEAF_REGISTRY.get(klass)
        if factory is not None:
            return factory(combiner)
    return None


def value_strategy_for(combiner: Combiner) -> st.SearchStrategy | None:
    """Arbitrary *combined* values: the merge closure of leaf values."""
    leaves = leaf_strategy_for(combiner)
    if leaves is None:
        return None

    def close(leaf_list: list) -> Any:
        if len(leaf_list) == 1:
            return leaf_list[0]
        return combiner.merge(LAW_KEY, leaf_list)

    return st.lists(leaves, min_size=1, max_size=3).map(close)


# ---------------------------------------------------------------------------
# tolerant equality


def _magnitude(value: Any) -> float:
    """The largest absolute float/int reachable inside ``value``."""
    if isinstance(value, bool):
        return 1.0
    if isinstance(value, (int, float)):
        return abs(float(value))
    if isinstance(value, (tuple, list, set, frozenset)):
        return max((_magnitude(v) for v in value), default=0.0)
    if isinstance(value, dict):
        return max(
            (max(_magnitude(k), _magnitude(v)) for k, v in value.items()),
            default=0.0,
        )
    return 0.0


def approx_equal(left: Any, right: Any, *, scale: float = 0.0) -> bool:
    """Structural equality with magnitude-scaled float tolerance."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        tolerance = REL_TOL * (1.0 + max(scale, abs(left), abs(right)))
        return math.isclose(left, right, rel_tol=REL_TOL, abs_tol=tolerance)
    if type(left) is not type(right):
        return False
    if isinstance(left, (tuple, list)):
        return len(left) == len(right) and all(
            approx_equal(a, b, scale=scale) for a, b in zip(left, right)
        )
    if isinstance(left, (set, frozenset)):
        return left == right
    if isinstance(left, dict):
        return left.keys() == right.keys() and all(
            approx_equal(v, right[k], scale=scale) for k, v in left.items()
        )
    return left == right


# ---------------------------------------------------------------------------
# the laws


def _merge(combiner: Combiner, *values: Any) -> Any:
    return combiner.merge(LAW_KEY, list(values))


def _fingerprints_match(combiner: Combiner, x: Any, y: Any, scale: float) -> bool:
    return approx_equal(
        combiner.fingerprint(x), combiner.fingerprint(y), scale=scale
    )


def _check_law(
    name: str,
    where: str,
    strategies: tuple[st.SearchStrategy, ...],
    body: Callable[..., None],
    max_examples: int,
) -> Finding | None:
    """Run one law under hypothesis; a Finding means it was falsified."""

    configure = settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=True,
        suppress_health_check=[
            HealthCheck.filter_too_much,
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )

    # hypothesis rejects varargs test functions, so bind the exact arity.
    if len(strategies) == 2:

        def run2(a: Any, b: Any) -> None:
            body(a, b)

        run = configure(given(*strategies)(run2))
    elif len(strategies) == 3:

        def run3(a: Any, b: Any, c: Any) -> None:
            body(a, b, c)

        run = configure(given(*strategies)(run3))
    else:
        raise ValueError(f"laws take 2 or 3 values, got {len(strategies)}")

    try:
        run()
    except _LawFalsified as counterexample:
        return Finding(
            rule=f"laws.{name}",
            message=str(counterexample),
            where=where,
            severity=ERROR,
        )
    except Exception as crash:  # merge itself blew up on a legal value
        return Finding(
            rule=f"laws.{name}",
            message=f"law check crashed: {type(crash).__name__}: {crash}",
            where=where,
            severity=ERROR,
        )
    return None


def check_combiner_laws(
    combiner: Combiner,
    *,
    where: str | None = None,
    max_examples: int = 60,
) -> list[Finding]:
    """Property-test every law ``combiner`` declares; return violations.

    An unknown value domain (no registry entry, no ``law_leaves`` method)
    yields a single warning finding rather than silently passing.
    """
    label = where or f"{type(combiner).__module__}.{type(combiner).__qualname__}"
    values = value_strategy_for(combiner)
    if values is None:
        return [
            Finding(
                rule="laws.no-strategy",
                message=(
                    "no value strategy known — register one with "
                    "repro.analysis.laws.register_leaf_strategy or define "
                    "law_leaves() on the combiner"
                ),
                where=label,
                severity="warning",
            )
        ]

    findings: list[Finding] = []

    def associativity(a: Any, b: Any, c: Any) -> None:
        scale = max(_magnitude(a), _magnitude(b), _magnitude(c))
        left = _merge(combiner, _merge(combiner, a, b), c)
        right = _merge(combiner, a, _merge(combiner, b, c))
        if not _fingerprints_match(combiner, left, right, scale):
            raise _LawFalsified(
                f"declared associative, but merge(merge(a,b),c) != "
                f"merge(a,merge(b,c)) for a={a!r}, b={b!r}, c={c!r}: "
                f"{left!r} != {right!r}"
            )

    def commutativity(a: Any, b: Any) -> None:
        scale = max(_magnitude(a), _magnitude(b))
        left = _merge(combiner, a, b)
        right = _merge(combiner, b, a)
        if not _fingerprints_match(combiner, left, right, scale):
            raise _LawFalsified(
                f"declared commutative, but merge(a,b) != merge(b,a) for "
                f"a={a!r}, b={b!r}: {left!r} != {right!r}"
            )

    def consistency(a: Any, b: Any) -> None:
        scale = max(_magnitude(a), _magnitude(b))
        first = _merge(combiner, a, b)
        second = _merge(combiner, a, b)
        if not _fingerprints_match(combiner, first, second, scale):
            raise _LawFalsified(
                f"merge is not deterministic: two merges of a={a!r}, "
                f"b={b!r} fingerprint differently: "
                f"{combiner.fingerprint(first)!r} != "
                f"{combiner.fingerprint(second)!r}"
            )
        try:
            stable_hash(combiner.fingerprint(first))
        except TypeError as exc:
            raise _LawFalsified(
                f"fingerprint of merged value is not stably hashable "
                f"for a={a!r}, b={b!r}: {exc}"
            ) from None

    def cost_sanity(a: Any, b: Any) -> None:
        merged = _merge(combiner, a, b)
        for value in (a, b, merged):
            size = combiner.value_size(value)
            if not (size >= 0.0) or math.isinf(size) or math.isnan(size):
                raise _LawFalsified(
                    f"value_size must be finite and non-negative, got "
                    f"{size!r} for value {value!r}"
                )
        cost = combiner.merge_cost(LAW_KEY, [a, b])
        if not (cost >= 0.0) or math.isinf(cost) or math.isnan(cost):
            raise _LawFalsified(
                f"merge_cost must be finite and non-negative, got {cost!r} "
                f"for values {a!r}, {b!r}"
            )

    if combiner.associative:
        finding = _check_law(
            "associativity", label, (values, values, values), associativity,
            max_examples,
        )
        if finding:
            findings.append(finding)
    if combiner.commutative:
        finding = _check_law(
            "commutativity", label, (values, values), commutativity, max_examples
        )
        if finding:
            findings.append(finding)
    finding = _check_law(
        "merge-consistency", label, (values, values), consistency, max_examples
    )
    if finding:
        findings.append(finding)
    finding = _check_law(
        "cost-sanity", label, (values, values), cost_sanity, max_examples
    )
    if finding:
        findings.append(finding)
    return findings

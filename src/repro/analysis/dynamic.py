"""Dynamic cross-check: vector clocks over what actually executed.

The static race pass (:mod:`repro.analysis.races`) reasons over the plan
IR; this module validates its verdicts against *execution*.  A
:class:`DynamicRaceRecorder` attaches to a
:class:`~repro.core.execute.PlanExecutor` as its (duck-typed, test-only)
``probe`` and observes every resolved step — including memo hit/miss,
which the static pass must over-approximate — across fresh, chaos, and
compile-replay runs alike.

Each observed step gets a **vector clock** under the same lane model the
static pass uses (per-map lanes in the map phase, per-reducer lanes after
the shuffle barrier, a conservative engine lane for unattributed steps);
every ``begin_run`` is a full barrier.  Two steps are concurrent iff
neither clock dominates the other.  The recorder tracks, per resource,
the latest read and write clock per lane (within a lane clocks grow
monotonically, so the latest access dominates the earlier ones) and
records every concurrent conflicting pair as an
:class:`ObservedConflict`.

The recorder also sees steps that executed in *worker processes*: the
process execution backend captures each worker's probe events (the
worker's executor runs a recording shim) and replays them through the
parent executor's probe during the deterministic reducer-order merge, at
exactly the position the in-process run would have fired them.  The
vector clocks therefore describe the logical lane structure of what the
workers really did — one lane per reducer — not merely a single-process
simulation of it.

The contract with the static pass is one-sided soundness:
:meth:`DynamicRaceRecorder.unexplained` returns any observed non-benign
conflict the static pass did not flag — the test suite fails if that list
is ever non-empty.  (The static pass may flag more: it cannot see memo
hits, so it models every cache edge as read+write.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.findings import ERROR, INFO, Finding
from repro.analysis.races import ENGINE_LANE, IDEMPOTENT_PREFIXES

_VectorClock = dict[str, int]  # lane -> counter
#: Per-lane access state: [latest read, latest write], each (clock, op).
_AccessState = list  # list[tuple[_VectorClock, str] | None], two slots


def clock_leq(a: _VectorClock, b: _VectorClock) -> bool:
    """Componentwise ``a <= b`` — a happened-before-or-equals b."""
    return all(count <= b.get(lane, 0) for lane, count in a.items())


@dataclass(frozen=True)
class ObservedConflict:
    """Two executed steps that raced on a resource at runtime."""

    resource: str
    first_op: str
    second_op: str
    first_lane: str
    second_lane: str
    run: int

    @property
    def benign(self) -> bool:
        return self.resource.startswith(IDEMPOTENT_PREFIXES)


class DynamicRaceRecorder:
    """The executor probe: builds vector clocks from executed steps."""

    def __init__(self) -> None:
        #: lane -> that lane's latest vector clock (current run).
        self._clocks: dict[str, _VectorClock] = {}
        #: Merged clock of everything before the current run (full barrier).
        self._base: _VectorClock = {}
        #: Merged map-phase clock; sealed at the first post-shuffle step.
        self._barrier: _VectorClock | None = None
        #: resource -> lane -> (latest read clock, latest write clock).
        self._accesses: dict[str, dict[str, _AccessState]] = {}
        self.conflicts: list[ObservedConflict] = []
        self.events = 0
        self.runs = 0
        self._map_seq = 0

    # -- executor probe interface (duck-typed) ------------------------------

    def on_begin_run(self, label: str = "") -> None:
        """A run boundary is a full barrier: merge every lane into the base."""
        merged = dict(self._base)
        for vec in self._clocks.values():
            for lane, count in vec.items():
                merged[lane] = max(merged.get(lane, 0), count)
        self._base = merged
        self._clocks = {}
        self._barrier = None
        self.runs += 1

    def on_step(
        self,
        op: str,
        *,
        reducer: int | None = None,
        memo_uid: int | None = None,
        hit: bool | None = None,
        label: str = "",
    ) -> None:
        if op == "map":
            lane = f"run{self.runs}:map#{self._map_seq}"
            self._map_seq += 1
            clock = self._advance(lane, epoch=0)
        else:
            lane = ENGINE_LANE if reducer is None else f"reducer:{reducer}"
            clock = self._advance(lane, epoch=1)
        reads, writes = self._resources(op, lane, memo_uid, hit)
        for resource in reads | writes:
            self._touch(resource, lane, clock, resource in writes, op)
        self.events += 1

    # -- clock machinery -----------------------------------------------------

    def _advance(self, lane: str, epoch: int) -> _VectorClock:
        if epoch == 0:
            start = self._base
        else:
            if self._barrier is None:
                merged = dict(self._base)
                for vec in self._clocks.values():
                    for other, count in vec.items():
                        merged[other] = max(merged.get(other, 0), count)
                self._barrier = merged
            start = self._barrier
        clock = dict(self._clocks.get(lane, start))
        clock[lane] = clock.get(lane, 0) + 1
        self._clocks[lane] = clock
        return clock

    def _resources(
        self, op: str, lane: str, memo_uid: int | None, hit: bool | None
    ) -> tuple[frozenset[str], frozenset[str]]:
        if op == "map":
            slot = f"map_memo:{memo_uid:#x}" if memo_uid is not None else lane
            return frozenset(), frozenset({slot})
        tree = f"tree:{lane}"
        if op == "combine":
            reads, writes = {tree}, {tree}
            if memo_uid is not None:
                slot = f"memo:{memo_uid:#x}"
                # Unlike the static pass, execution knows hit vs miss.
                reads.add(slot)
                if not hit:
                    writes.add(slot)
            return frozenset(reads), frozenset(writes)
        if op == "visit":
            return frozenset({tree}), frozenset()
        slot = f"reduce_memo:{lane}"
        return frozenset({tree, slot}), frozenset({slot})

    def _touch(
        self,
        resource: str,
        lane: str,
        clock: _VectorClock,
        is_write: bool,
        op: str,
    ) -> None:
        lanes = self._accesses.setdefault(resource, {})
        for other_lane, (read_state, write_state) in lanes.items():
            if other_lane == lane:
                continue  # same lane: totally ordered by construction
            for prev, prev_write in ((read_state, False), (write_state, True)):
                if prev is None or not (is_write or prev_write):
                    continue
                prev_clock, prev_op = prev
                if clock_leq(prev_clock, clock) or clock_leq(clock, prev_clock):
                    continue
                self.conflicts.append(
                    ObservedConflict(
                        resource=resource,
                        first_op=prev_op,
                        second_op=op,
                        first_lane=other_lane,
                        second_lane=lane,
                        run=self.runs,
                    )
                )
        state = lanes.setdefault(lane, [None, None])
        state[1 if is_write else 0] = (clock, op)

    # -- verdicts ------------------------------------------------------------

    def unexplained(
        self, static_findings: Iterable[Finding]
    ) -> list[ObservedConflict]:
        """Observed non-benign conflicts the static pass did not flag.

        A conflict is explained when some static *error* finding mentions
        its resource.  A non-empty return is the cross-check failing: the
        static pass under-approximated actual execution.
        """
        static_errors = [
            f.message for f in static_findings if f.severity == ERROR
        ]
        return [
            conflict
            for conflict in self.conflicts
            if not conflict.benign
            and not any(conflict.resource in msg for msg in static_errors)
        ]

    def to_findings(self, where: str = "dynamic") -> list[Finding]:
        """Render observed conflicts as findings (benign ones at info)."""
        findings: list[Finding] = []
        for conflict in self.conflicts:
            message = (
                f"run {conflict.run}: {conflict.first_op} in "
                f"{conflict.first_lane} and {conflict.second_op} in "
                f"{conflict.second_lane} raced on {conflict.resource}"
            )
            if conflict.benign:
                findings.append(
                    Finding(
                        rule="dynamic.idempotent-write",
                        message=message + " (content-addressed slot: benign)",
                        where=where,
                        severity=INFO,
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule="dynamic.race",
                        message=message,
                        where=where,
                        severity=ERROR,
                    )
                )
        return findings

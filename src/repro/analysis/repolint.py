"""Repo-internal lint rules: telemetry span hygiene and layering.

Four invariants are mechanical enough to lint:

``lint.span-hygiene``
    Every ``*.charge(...)`` call must be lexically inside a ``with
    ...span(...)`` block, so charged work is always attributed to an open
    span.  Helpers that deliberately charge into *their caller's* span
    (e.g. :func:`repro.core.partition.combine_partitions`, which runs
    under the tree's task span) declare so with a trailing marker comment
    ``# analysis: charge-in-caller-span`` on their ``def`` line — the
    contract is then documented at the definition site instead of being
    implicit.

``lint.bare-telemetry``
    ``Telemetry()`` constructed with no label creates an anonymous span
    tree that cannot be told apart in traces; only designated entry-point
    modules (the WorkMeter fallback and the telemetry package itself) may
    do that.  Everything else must pass a label or accept an injected
    backbone.

``lint.layering``
    ``repro.core`` is the substrate every layer builds on: trees, memo
    tables, plans, the task-graph IR.  It must never import the layers
    above it (``repro.slider``, ``repro.cluster``) — an upward import
    would let engine details leak back into the substrate and recreate
    the god-module this package split apart.

``lint.module-size``
    No source module may exceed :data:`MAX_MODULE_LINES` lines.  Modules
    that grow past the cap get split by concern (as ``slider/system.py``
    and ``cluster/executor.py`` were), not waived.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import ERROR, Finding

#: Marker comment allowing a function to charge into its caller's span.
CALLER_SPAN_MARKER = "analysis: charge-in-caller-span"

#: Module paths (relative to the package root) allowed to build Telemetry()
#: without a label.
BARE_TELEMETRY_ENTRY_POINTS = (
    "metrics.py",
    "telemetry/",
)

#: Functions implementing the charge verb itself are exempt from the rule.
_CHARGE_IMPLEMENTATIONS = {"charge"}

#: Hard cap on source-module length, in physical lines.
MAX_MODULE_LINES = 500

#: Layering: modules whose path starts with a key may not import any
#: module whose dotted name starts with one of the listed prefixes.
#: ``repro.recovery`` sits at the very top of the stack (it reaches into
#: every layer to capture/restore state), so no substrate layer may
#: import it — a downward dependency on the recovery subsystem would be
#: a cycle by construction.
#: First match wins (insertion order), so the plan-compile sublayer and
#: the planner modules are pinned before the blanket ``core/`` rule.
#: The compiler is a pure pass pipeline over the plan IR: it may read
#: ``core.plan``/``core.partition`` but never the executor or the
#: planners, and planners never import the compiler — plans stay a
#: planner-agnostic exchange format between the two.
_PLANNER_FORBIDS = (
    "repro.slider",
    "repro.cluster",
    "repro.recovery",
    "repro.core.compile",
)

LAYERING_RULES = {
    "core/compile/": (
        "repro.slider",
        "repro.cluster",
        "repro.recovery",
        "repro.core.execute",
        "repro.core.base",
    ),
    "core/base.py": _PLANNER_FORBIDS,
    "core/folding.py": _PLANNER_FORBIDS,
    "core/randomized.py": _PLANNER_FORBIDS,
    "core/rotating.py": _PLANNER_FORBIDS,
    "core/coalescing.py": _PLANNER_FORBIDS,
    "core/strawman.py": _PLANNER_FORBIDS,
    "core/": ("repro.slider", "repro.cluster", "repro.recovery"),
    "common/": ("repro.recovery",),
    "mapreduce/": ("repro.recovery",),
    "cluster/": ("repro.recovery",),
    "telemetry/": ("repro.recovery",),
}


def _is_span_context(item: ast.withitem) -> bool:
    """True when a with-item opens a telemetry span.

    Matches any call whose callee name contains ``span`` —
    ``telemetry.span(...)``, ``self._level_span(...)``, ``phase_span(...)``.
    """
    for node in ast.walk(item.context_expr):
        if isinstance(node, ast.Call):
            callee = node.func
            name = None
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            if name is not None and "span" in name:
                return True
    return False


class _ModuleLinter(ast.NodeVisitor):
    def __init__(self, path: Path, relative: str, source_lines: list[str]) -> None:
        self.path = path
        self.relative = relative
        self.source_lines = source_lines
        self.findings: list[Finding] = []
        self._span_depth = 0
        self._function_stack: list[ast.AST] = []

    # -- helpers ---------------------------------------------------------

    def _line(self, number: int) -> str:
        if 1 <= number <= len(self.source_lines):
            return self.source_lines[number - 1]
        return ""

    def _function_is_marked(self) -> bool:
        for fn in reversed(self._function_stack):
            if CALLER_SPAN_MARKER in self._line(fn.lineno):
                return True
        return False

    def _function_is_charge_impl(self) -> bool:
        return bool(
            self._function_stack
            and getattr(self._function_stack[-1], "name", None)
            in _CHARGE_IMPLEMENTATIONS
        )

    # -- structure tracking ---------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_trusted_decorators(node)
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_trusted_decorators(self, node: ast.FunctionDef) -> None:
        """``lint.trusted-reason``: every @trusted mark must carry a
        non-empty reason, statically — the audit trail for the escape
        hatch lives at the decoration site."""
        for decorator in node.decorator_list:
            callee = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = None
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            if name != "trusted":
                continue
            problem = None
            if not isinstance(decorator, ast.Call):
                problem = "@trusted used without arguments"
            else:
                args = list(decorator.args)
                reason = next(
                    (kw.value for kw in decorator.keywords if kw.arg == "reason"),
                    args[0] if args else None,
                )
                if reason is None:
                    problem = "@trusted(...) is missing its reason"
                elif isinstance(reason, ast.Constant) and (
                    not isinstance(reason.value, str)
                    or not reason.value.strip()
                ):
                    problem = "@trusted reason must be a non-empty string"
            if problem is not None:
                self.findings.append(
                    Finding(
                        rule="lint.trusted-reason",
                        message=(
                            f"{problem} — state what was audited and why "
                            "the checker may stand down"
                        ),
                        where=self.relative,
                        line=decorator.lineno,
                        severity=ERROR,
                    )
                )

    def visit_With(self, node: ast.With) -> None:
        opens_span = any(_is_span_context(item) for item in node.items)
        if opens_span:
            self._span_depth += 1
        self.generic_visit(node)
        if opens_span:
            self._span_depth -= 1

    # -- rules -----------------------------------------------------------

    def _forbidden_prefixes(self) -> tuple[str, ...]:
        for layer, prefixes in LAYERING_RULES.items():
            if self.relative.startswith(layer):
                return prefixes
        return ()

    def _check_layering(self, node: ast.AST, module: str | None) -> None:
        if not module:
            return
        for prefix in self._forbidden_prefixes():
            if module == prefix or module.startswith(prefix + "."):
                layer = self.relative.split("/", 1)[0]
                self.findings.append(
                    Finding(
                        rule="lint.layering",
                        message=(
                            f"repro.{layer} must not import {module}: the "
                            "substrate cannot depend on the layers above "
                            "it — invert the dependency (inject a callback "
                            "or move the shared piece down)"
                        ),
                        where=self.relative,
                        line=node.lineno,
                        severity=ERROR,
                    )
                )
                return

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_layering(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._check_layering(node, self._resolve_import(node))
        self.generic_visit(node)

    def _resolve_import(self, node: ast.ImportFrom) -> str | None:
        """The absolute dotted module an ImportFrom targets; ``from ..x
        import y`` is resolved against this file's package path."""
        if node.level == 0:
            return node.module
        parts = ["repro"] + self.relative.split("/")
        parts.pop()  # the module file itself; its package remains
        base = parts[: len(parts) - (node.level - 1)]
        if node.module:
            base.append(node.module)
        return ".".join(base) if base else None

    def visit_Call(self, node: ast.Call) -> None:
        self._check_charge(node)
        self._check_bare_telemetry(node)
        self.generic_visit(node)

    def _check_charge(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "charge"
        ):
            return
        if self._span_depth > 0:
            return
        if self._function_is_charge_impl() or self._function_is_marked():
            return
        if CALLER_SPAN_MARKER in self._line(node.lineno):
            return
        self.findings.append(
            Finding(
                rule="lint.span-hygiene",
                message=(
                    "charge() outside any span: wrap the call in a "
                    "telemetry span, or mark the enclosing def with "
                    f"'# {CALLER_SPAN_MARKER}' if it charges into its "
                    "caller's span"
                ),
                where=self.relative,
                line=node.lineno,
                severity=ERROR,
            )
        )

    def _check_bare_telemetry(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "Telemetry"):
            return
        if node.args or node.keywords:
            return
        if any(
            self.relative.startswith(prefix)
            for prefix in BARE_TELEMETRY_ENTRY_POINTS
        ):
            return
        self.findings.append(
            Finding(
                rule="lint.bare-telemetry",
                message=(
                    "bare Telemetry() outside an entry point: pass a label "
                    "(Telemetry(label=...)) or accept an injected backbone"
                ),
                where=self.relative,
                line=node.lineno,
                severity=ERROR,
            )
        )


def lint_file(path: Path, package_root: Path) -> list[Finding]:
    """Lint one source file; ``package_root`` anchors relative names."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="lint.syntax",
                message=f"could not parse: {exc}",
                where=str(path),
                line=exc.lineno,
                severity=ERROR,
            )
        ]
    try:
        relative = str(path.relative_to(package_root))
    except ValueError:
        relative = str(path)
    lines = source.splitlines()
    linter = _ModuleLinter(path, relative, lines)
    linter.visit(tree)
    findings = linter.findings
    if len(lines) > MAX_MODULE_LINES:
        findings.append(
            Finding(
                rule="lint.module-size",
                message=(
                    f"module is {len(lines)} lines (cap {MAX_MODULE_LINES})"
                    " — split it by concern instead of growing it"
                ),
                where=relative,
                line=len(lines),
                severity=ERROR,
            )
        )
    return findings


def lint_package(package_root: Path) -> list[Finding]:
    """Lint every ``.py`` file under ``package_root`` (the repro package)."""
    findings: list[Finding] = []
    for path in sorted(package_root.rglob("*.py")):
        findings.extend(lint_file(path, package_root))
    return findings

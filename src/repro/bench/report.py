"""Regenerate the full experimental report from the benchmark suite.

Runs every benchmark in ``benchmarks/`` (each of which prints the rows or
series of one paper table/figure) and collects the printed tables into a
single text report::

    python -m repro.bench.report -o report.txt

The benchmarks also *assert* the paper's qualitative shapes, so a report
that completes is simultaneously a successful reproduction check.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

#: Lines that are pytest/benchmark noise rather than experiment output.
_NOISE_RE = re.compile(
    r"^(=+ |platform |rootdir|plugins|collecting|collected|\.|-+ benchmark"
    r"|Name \(time|test_|Legend:|  Outliers|  OPS|PASSED|warnings summary)"
)

_TABLE_START_RE = re.compile(r"^(Figure|Table|Context)")


def extract_tables(raw_output: str) -> str:
    """Pull the printed experiment tables out of raw pytest output."""
    lines = raw_output.splitlines()
    kept: list[str] = []
    inside_table = False
    for line in lines:
        if _TABLE_START_RE.match(line):
            inside_table = True
            if kept and kept[-1] != "":
                kept.append("")
        elif inside_table and (not line.strip() or _NOISE_RE.match(line)):
            inside_table = False
            continue
        if inside_table:
            kept.append(line.rstrip())
    return "\n".join(kept) + "\n"


def run_benchmarks(benchmark_dir: str, extra_args: list[str] | None = None) -> str:
    """Execute the benchmark suite, returning its raw stdout.

    Raises ``RuntimeError`` if any benchmark (i.e. any shape assertion)
    fails.
    """
    command = [
        sys.executable,
        "-m",
        "pytest",
        benchmark_dir,
        "--benchmark-only",
        "-q",
        "-s",
    ] + (extra_args or [])
    completed = subprocess.run(command, capture_output=True, text=True)
    if completed.returncode != 0:
        raise RuntimeError(
            "benchmark suite failed — the reproduction shapes did not hold:\n"
            + completed.stdout[-4000:]
        )
    return completed.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate every paper table/figure from the benchmarks."
    )
    parser.add_argument(
        "-o",
        "--output",
        default="-",
        help="file to write the report to ('-' for stdout)",
    )
    parser.add_argument(
        "--benchmarks",
        default="benchmarks",
        help="path to the benchmark directory",
    )
    parser.add_argument(
        "-k",
        default=None,
        help="only run benchmarks matching this pytest -k expression",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also export one micro-benchmark run as Chrome trace JSON",
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.telemetry.export import export_micro_benchmark_trace

        trace = export_micro_benchmark_trace(args.trace)
        print(f"wrote {args.trace}: {len(trace['traceEvents'])} trace events")

    extra = ["-k", args.k] if args.k else None
    raw = run_benchmarks(args.benchmarks, extra)
    report = extract_tables(raw)
    header = (
        "Slider reproduction — experimental report\n"
        "==========================================\n"
        "Each section regenerates one table or figure of the paper's\n"
        "evaluation; see EXPERIMENTS.md for paper-vs-measured commentary.\n\n"
    )
    if args.output == "-":
        sys.stdout.write(header + report)
    else:
        Path(args.output).write_text(header + report)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())

"""Plain-text table/series rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output readable and uniform.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render an aligned monospace table with a title rule."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * len(widths))]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
) -> str:
    """Render a figure's data as one row per series (x columns)."""
    headers = [x_label] + [_cell(x) for x in x_values]
    rows = [[name] + list(values) for name, values in series.items()]
    return format_table(title, headers, rows)

"""Experiment driver: identical window schedules across runner variants.

The paper's methodology (§7.1): pick an application and a window mode, move
the window so that p% of the input changes per run, and compare Slider
against recomputing from scratch (Figure 7) and against the strawman
(Figure 8), in both *work* and *time*.

``run_experiment`` executes one (app, mode, change%, variant) cell;
``run_change_sweep`` sweeps the paper's 5..25 % x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.registry import AppSpec
from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import HadoopScheduler, HybridScheduler
from repro.metrics import RunReport
from repro.slider.baseline import VanillaRunner
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode
from repro.telemetry import TelemetrySnapshot

#: Runner variants benchmarks may request.
VARIANTS = ("slider", "vanilla", "strawman")


@dataclass(frozen=True)
class SlideSchedule:
    """A window schedule: the initial window plus per-run (added, removed).

    ``added`` entries are split *counts*; the harness materializes actual
    splits with increasing offsets so appended data is always fresh.
    """

    window_splits: int
    slides: tuple[tuple[int, int], ...]

    @staticmethod
    def for_change(
        mode: WindowMode, window_splits: int, change_percent: int, rounds: int = 2
    ) -> "SlideSchedule":
        """The paper's p%-change schedule for a mode (§7.1 Methodology)."""
        delta = max(1, round(window_splits * change_percent / 100))
        if mode is WindowMode.APPEND:
            slides = tuple((delta, 0) for _ in range(rounds))
        else:
            slides = tuple((delta, delta) for _ in range(rounds))
        return SlideSchedule(window_splits=window_splits, slides=slides)


@dataclass
class WindowExperiment:
    """Measured reports for one variant driven through a schedule."""

    variant: str
    initial: RunReport
    incremental: list[RunReport] = field(default_factory=list)
    #: Background pre-processing work charged before each incremental run
    #: (only populated when the experiment ran with background rounds).
    background_work: list[float] = field(default_factory=list)
    outputs_digest: int = 0
    #: Frozen view of the runner's telemetry backbone after the last run:
    #: per-phase work, counters, span counts.  Reports read this instead
    #: of poking at runner internals.
    telemetry: TelemetrySnapshot | None = None

    def mean_incremental_work(self) -> float:
        return _mean([r.work for r in self.incremental])

    def mean_incremental_time(self) -> float:
        return _mean([r.time for r in self.incremental])


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _digest(outputs: dict) -> int:
    # Cheap order-free digest for cross-variant consistency checks.
    return len(outputs)


def make_cluster(seed: int = 42) -> Cluster:
    """The evaluation cluster: 24 workers, 2 slots each, a few stragglers."""
    return Cluster(ClusterConfig(num_machines=24, slots_per_machine=2, seed=seed))


def _make_runner(
    variant: str,
    spec: AppSpec,
    mode: WindowMode,
    schedule: SlideSchedule,
    cluster: Cluster | None,
    split_mode: bool,
    tree: str | None,
    scheduler=None,
):
    job = spec.make_job()
    if variant == "vanilla":
        return VanillaRunner(
            job,
            mode=mode,
            cluster=cluster,
            scheduler=scheduler or (HadoopScheduler() if cluster else None),
        )
    if variant == "strawman":
        config = SliderConfig(mode=mode, tree="strawman")
        return Slider(
            job, mode=mode, config=config, cluster=cluster, scheduler=scheduler
        )
    if variant == "slider":
        bucket = schedule.slides[0][0] if mode is WindowMode.FIXED else 1
        config = SliderConfig(
            mode=mode,
            tree=tree or "auto",
            bucket_size=bucket,
            split_mode=split_mode,
        )
        return Slider(
            job,
            mode=mode,
            config=config,
            cluster=cluster,
            scheduler=scheduler or (HybridScheduler() if cluster else None),
        )
    raise ValueError(f"unknown variant {variant!r}")


def run_experiment(
    spec: AppSpec,
    mode: WindowMode,
    schedule: SlideSchedule,
    variant: str = "slider",
    seed: int = 17,
    cluster: Cluster | None = None,
    split_mode: bool = False,
    background_each_round: bool = False,
    tree: str | None = None,
    scheduler=None,
) -> WindowExperiment:
    """Drive one runner variant through one schedule; returns its reports."""
    runner = _make_runner(
        variant, spec, mode, schedule, cluster, split_mode, tree, scheduler
    )

    # FIXED mode needs the window to be a whole number of buckets.
    window_splits = schedule.window_splits
    if mode is WindowMode.FIXED:
        bucket = schedule.slides[0][0]
        window_splits = max(bucket, (window_splits // bucket) * bucket)

    initial_splits = spec.make_splits(window_splits, seed, 0)
    experiment = WindowExperiment(variant=variant, initial=None)  # type: ignore[arg-type]
    result = runner.initial_run(initial_splits)
    experiment.initial = result.report

    offset = window_splits
    for added_count, removed in schedule.slides:
        if background_each_round:
            experiment.background_work.append(runner.background_preprocess())
        added = spec.make_splits(added_count, seed, offset)
        offset += added_count
        result = runner.advance(added, removed)
        experiment.incremental.append(result.report)
    experiment.outputs_digest = _digest(result.outputs)
    experiment.telemetry = runner.telemetry.snapshot()
    return experiment


@dataclass
class ChangeSweepResult:
    """Speedup series over the change% x-axis for one (app, mode)."""

    app: str
    mode: WindowMode
    change_percents: list[int]
    work_speedups: list[float]
    time_speedups: list[float]


def run_change_sweep(
    spec: AppSpec,
    mode: WindowMode,
    baseline_variant: str,
    change_percents: Sequence[int] = (5, 10, 15, 20, 25),
    window_splits: int = 40,
    seed: int = 17,
    use_cluster: bool = True,
) -> ChangeSweepResult:
    """Figure 7/8's sweep: Slider's speedup over a baseline vs change%."""
    work_speedups: list[float] = []
    time_speedups: list[float] = []
    for change in change_percents:
        schedule = SlideSchedule.for_change(mode, window_splits, change)
        slider = run_experiment(
            spec,
            mode,
            schedule,
            variant="slider",
            seed=seed,
            cluster=make_cluster() if use_cluster else None,
        )
        baseline = run_experiment(
            spec,
            mode,
            schedule,
            variant=baseline_variant,
            seed=seed,
            cluster=make_cluster() if use_cluster else None,
        )
        work_speedups.append(
            _ratio(baseline.mean_incremental_work(), slider.mean_incremental_work())
        )
        time_speedups.append(
            _ratio(baseline.mean_incremental_time(), slider.mean_incremental_time())
        )
    return ChangeSweepResult(
        app=spec.name,
        mode=mode,
        change_percents=list(change_percents),
        work_speedups=work_speedups,
        time_speedups=time_speedups,
    )


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return float("inf")
    return numerator / denominator

"""The benchmark harness.

Drives Slider, the strawman, and the recompute-from-scratch baseline
through identical window schedules and reduces the results to the numbers
the paper reports: work/time speedups per (application, mode, change%),
phase breakdowns, split-processing latency splits, and case-study tables.
"""

from repro.bench.harness import (
    ChangeSweepResult,
    SlideSchedule,
    WindowExperiment,
    run_change_sweep,
    run_experiment,
)
from repro.bench.format import format_series, format_table

__all__ = [
    "ChangeSweepResult",
    "SlideSchedule",
    "WindowExperiment",
    "run_change_sweep",
    "run_experiment",
    "format_series",
    "format_table",
]

"""Time-based window driving: the convenience layer over Slider.

:class:`~repro.slider.system.Slider` thinks in *splits*; real deployments
think in *time*: "a one-hour window sliding every five minutes".  The
:class:`StreamDriver` consumes timestamped records, buckets them into
per-slide split batches, and drives a Slider through the corresponding
window advances — fixed-width when every slide carries the same number of
splits is not guaranteed, so the driver runs in VARIABLE (or APPEND) mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.common.errors import WindowError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split, make_splits
from repro.slider.system import Slider, SliderConfig, SliderResult
from repro.slider.window import WindowMode

#: Extracts the event time from a record.
TimestampFn = Callable[[Any], float]


@dataclass
class _SlideBatch:
    """Splits admitted for one slide interval."""

    slide_index: int
    splits: list[Split] = field(default_factory=list)


class StreamDriver:
    """Drives a Slider over a stream with a duration-based sliding window.

    ``window`` and ``slide`` are in the stream's time unit.  Records are
    buffered until a slide boundary passes, then chopped into splits and
    fed to the Slider: splits whose slide interval fell out of the window
    are dropped from the front, the new interval's splits are appended.

    Use ``window=None`` for an append-only (landmark) window.
    """

    def __init__(
        self,
        job: MapReduceJob,
        timestamp_fn: TimestampFn,
        slide: float,
        window: float | None = None,
        split_size: int = 100,
        slider_config: SliderConfig | None = None,
        cluster=None,
        chaos=None,
        executor_config=None,
    ) -> None:
        if slide <= 0:
            raise WindowError(f"slide must be positive, got {slide}")
        if window is not None:
            if window <= 0:
                raise WindowError(f"window must be positive, got {window}")
            if window < slide:
                raise WindowError("window must be at least one slide long")
        self.job = job
        self.timestamp_fn = timestamp_fn
        self.slide = slide
        self.window = window
        self.split_size = split_size
        mode = WindowMode.APPEND if window is None else WindowMode.VARIABLE
        self.mode = mode
        self.slider = Slider(
            job,
            mode=mode,
            config=slider_config,
            cluster=cluster,
            chaos=chaos,
            executor_config=executor_config,
        )
        #: Slide intervals currently inside the window, oldest first.
        self._live_batches: list[_SlideBatch] = []
        self._pending: list[Any] = []
        # Boundary k sits at exactly ``k * slide``.  Tracking the integer
        # index instead of accumulating ``boundary += slide`` keeps late
        # boundaries free of float drift, so an event timestamped exactly
        # on a boundary lands in the same slide no matter how many slides
        # preceded it.
        self._boundary_index: int | None = None
        self._slide_index = 0
        self._ran_initial = False
        self.results: list[SliderResult] = []

    @property
    def slides_per_window(self) -> int | None:
        if self.window is None:
            return None
        return int(round(self.window / self.slide))

    def feed(self, records: Iterable[Any]) -> list[SliderResult]:
        """Consume records (non-decreasing timestamps); returns the results
        of any window advances the records triggered."""
        produced: list[SliderResult] = []
        for record in records:
            when = self.timestamp_fn(record)
            if self._boundary_index is None:
                self._boundary_index = int(when // self.slide) + 1
            while when >= self._boundary_index * self.slide:
                result = self._close_slide()
                if result is not None:
                    produced.append(result)
                self._boundary_index += 1
            self._pending.append(record)
        return produced

    def flush(self) -> SliderResult | None:
        """Force the currently buffered records through as a final slide."""
        return self._close_slide()

    def current_outputs(self) -> dict[Any, Any]:
        """Outputs as of the last completed slide."""
        return self.results[-1].outputs if self.results else {}

    def checkpoint(self, path) -> None:
        """Write a durable checkpoint: engine state plus the stream cursor.

        Legal between ``feed`` calls (the engine must be idle).  Records
        already fed but not yet closed into a slide — the unacknowledged
        tail — are captured verbatim and replayed by ``restore``.
        """
        from repro.recovery.checkpoint import write_driver_checkpoint

        write_driver_checkpoint(self, path)

    @staticmethod
    def restore(path, job: MapReduceJob, timestamp_fn: TimestampFn) -> "StreamDriver":
        """Rebuild a driver from ``checkpoint``; replays only the pending
        record tail (completed slides are never re-fed)."""
        from repro.recovery.checkpoint import restore_driver

        return restore_driver(path, job, timestamp_fn)

    # -- internals ---------------------------------------------------------

    def _close_slide(self) -> SliderResult | None:
        # Atomic per slide: any failure inside the engine (a poison record
        # with no quarantine policy, an injected fault, ...) must leave the
        # stream cursor exactly as it was, so the caller can checkpoint or
        # retry without half a slide folded into the buffers.
        saved = (
            self._pending,
            list(self._live_batches),
            self._slide_index,
            self._ran_initial,
        )
        try:
            records, self._pending = self._pending, []
            batch = _SlideBatch(self._slide_index)
            self._slide_index += 1
            if records:
                batch.splits = make_splits(
                    records,
                    split_size=self.split_size,
                    label_prefix=f"slide{batch.slide_index}-",
                )
            self._live_batches.append(batch)

            removed = 0
            limit = self.slides_per_window
            if limit is not None:
                while len(self._live_batches) > limit:
                    expired = self._live_batches.pop(0)
                    removed += len(expired.splits)

            if not self._ran_initial:
                window_splits = [
                    split for live in self._live_batches for split in live.splits
                ]
                result = self.slider.initial_run(window_splits)
                self._ran_initial = True
            else:
                result = self.slider.advance(batch.splits, removed)
        except BaseException:
            (
                self._pending,
                self._live_batches,
                self._slide_index,
                self._ran_initial,
            ) = saved
            raise
        self.results.append(result)
        return result

"""The Slider system: transparent incremental sliding-window analytics.

Glues together the substrates: Map tasks (memoized per split), per-reducer
self-adjusting contraction trees, the Reduce phase, the distributed
memoization cache, and the cluster scheduler that turns per-task costs into
an end-to-end *time* estimate.

The public entry point is :class:`~repro.slider.system.Slider`::

    slider = Slider(job, mode=WindowMode.FIXED)
    result = slider.initial_run(splits)
    result = slider.advance(added=new_splits, removed=2)
    print(result.outputs, result.report.work, result.report.time)
"""

from repro.slider.baseline import VanillaRunner
from repro.slider.system import Slider, SliderConfig, SliderResult
from repro.slider.window import WindowMode

__all__ = [
    "Slider",
    "SliderConfig",
    "SliderResult",
    "VanillaRunner",
    "WindowMode",
]

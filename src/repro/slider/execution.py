"""Time models: evaluate one executed run's cost on the simulated cluster.

The :class:`TimeSimulator` consumes what the unified executor measured
for a run (a :class:`~repro.core.execute.RunExecution`: per-split map
costs, per-reducer work, the executed task graph) and prices it under
the configured time model:

* ``"waves"`` — the legacy coarse cost model: one map wave with a
  barrier, then one reduce wave, with per-task locality preferences.
  Evaluated over the same executed plan, it reproduces every historical
  figure bit-for-bit.
* ``"dag"`` — replays the run's task graph at sub-computation
  granularity with topological readiness, so the makespan tracks the
  graph's critical path.

Chaos schedules route either model through the fault-tolerant executor,
with the engine's lifecycle manager healing the storage layers via
:class:`~repro.cluster.executor.ExecutorHooks`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.executor import ExecutorHooks, execute_dag, execute_two_waves
from repro.cluster.scheduler import SimTask, simulate_two_waves
from repro.common.errors import ReproError
from repro.common.hashing import stable_hash
from repro.core.execute import RunExecution
from repro.core.partition import Partition
from repro.core.taskgraph import TaskGraph, TaskNode
from repro.metrics import Phase
from repro.telemetry import SpanKind

if TYPE_CHECKING:  # pragma: no cover - type-only facade reference
    from repro.cluster.chaos import ChaosSchedule
    from repro.slider.system import Slider


class TimeSimulator:
    """Prices an executed run on the cluster under the configured model."""

    def __init__(self, engine: "Slider") -> None:
        self.engine = engine

    def simulate(
        self, phase_delta: dict[Phase, float], run: RunExecution
    ) -> float:
        """Price this run's tasks on the cluster; fall back to work-as-time."""
        engine = self.engine
        foreground = sum(
            amount
            for phase, amount in phase_delta.items()
            if phase is not Phase.BACKGROUND
        )
        if engine.cluster is None:
            return foreground
        if engine.config.time_model == "dag":
            return self._replay_dag(run.graph)
        return self._wave_cost_model(foreground, run)

    # -- the coarse two-wave cost model --------------------------------------

    def _wave_cost_model(self, foreground: float, run: RunExecution) -> float:
        engine = self.engine
        map_tasks = []
        for uid, cost in run.map_costs.items():
            if cost <= 0:
                continue
            if engine.blocks is not None:
                preferred = engine.blocks.preferred_machine(uid)
            else:
                preferred = stable_hash(uid, salt="splitloc") % len(
                    engine.cluster
                )
            map_tasks.append(
                SimTask(
                    label=f"map:{uid:#x}",
                    cost=cost,
                    preferred_machine=preferred,
                    fetch_bytes=cost,
                    kind="map",
                )
            )
        map_total = sum(t.cost for t in map_tasks)
        reduce_side = foreground - map_total
        reduce_tasks = []
        # Per-reducer costs measured by the executor during the run; any
        # residue (shuffle, map-side memo reads) spreads evenly.
        tree_costs = run.reducer_cost_list(len(engine.trees))
        residue = max(0.0, reduce_side - sum(tree_costs)) / max(
            1, len(engine.trees)
        )
        for reducer_index, tree in enumerate(engine.trees):
            # A reduce task migrated away from its memoized state must pull
            # that state (tree node values) over the network.
            state_size = tree.memo.space()
            cache = getattr(tree, "_cache", None)
            if isinstance(cache, dict):
                state_size += sum(
                    len(p) for p in cache.values() if isinstance(p, Partition)
                )
            reduce_tasks.append(
                SimTask(
                    label=f"reduce:{reducer_index}",
                    cost=max(tree_costs[reducer_index] + residue, 0.0),
                    preferred_machine=stable_hash(
                        (engine.job.name, reducer_index), salt="memoloc"
                    )
                    % len(engine.cluster),
                    fetch_bytes=state_size,
                    kind="reduce",
                )
            )
        schedule = self._chaos_schedule()
        if schedule is None and engine.executor_config is None:
            # Calm run on the default executor knobs: the plain wrapper,
            # bit-identical to the historical greedy figures.
            makespan, assignments = simulate_two_waves(
                map_tasks, reduce_tasks, engine.cluster, engine.scheduler
            )
            self._record_attempts(assignments)
            return makespan
        return self._execute_under_chaos(map_tasks, reduce_tasks, schedule)

    def _record_attempts(self, assignments) -> None:
        """Mirror a calm wave's task placements into the span tree, on each
        machine's trace lane with simulated-clock timestamps."""
        for a in assignments:
            self.engine.telemetry.record_span(
                a.task.label,
                SpanKind.ATTEMPT,
                start=a.start,
                end=a.finish,
                thread=f"m{a.machine_id}",
                task_kind=a.task.kind,
                fetched=a.fetched,
            )

    # -- the dag replay model -------------------------------------------------

    def _replay_dag(self, graph: TaskGraph | None) -> float:
        """Replay the run's task graph at sub-computation granularity.

        Every recorded node becomes one schedulable task with its own
        locality preference; dependency edges gate readiness, so the
        makespan tracks the graph's critical path instead of the coarse
        map-barrier-then-per-reducer-sum of the two-wave model.
        """
        engine = self.engine
        if graph is None:
            raise ReproError(
                'time_model="dag" needs a recorded task graph for the run'
            )
        tasks, deps = self._dag_tasks(graph)
        schedule = self._chaos_schedule()
        if schedule is None:
            report = execute_dag(
                tasks,
                deps,
                engine.cluster,
                engine.scheduler,
                config=engine.executor_config,
                telemetry=engine.telemetry,
            )
            return report.makespan
        repair_bytes_before = (
            engine.cache.stats.repair_bytes if engine.cache is not None else 0.0
        )
        block_traffic_before = (
            engine.blocks.repair_traffic if engine.blocks is not None else 0.0
        )
        hooks = ExecutorHooks(
            on_crash=engine.lifecycle.on_chaos_crash,
            on_detect=engine.lifecycle.on_chaos_detect,
        )
        report = execute_dag(
            tasks,
            deps,
            engine.cluster,
            engine.scheduler,
            config=engine.executor_config,
            chaos=schedule,
            hooks=hooks,
            telemetry=engine.telemetry,
        )
        self._note_recovery(report, repair_bytes_before, block_traffic_before)
        return report.makespan

    def _dag_tasks(
        self, graph: TaskGraph
    ) -> tuple[list[SimTask], dict[str, list[str]]]:
        """Lower graph nodes to SimTasks with locality and dependency maps."""
        labels = [f"n{node.uid}:{node.kind}" for node in graph.nodes]
        tasks: list[SimTask] = []
        deps: dict[str, list[str]] = {}
        for node in graph.nodes:
            tasks.append(
                SimTask(
                    label=labels[node.uid],
                    cost=node.cost,
                    preferred_machine=self._dag_preferred(node),
                    fetch_bytes=node.data_size,
                    kind=node.kind,
                )
            )
            deps[labels[node.uid]] = [labels[dep] for dep in node.deps]
        return tasks, deps

    def _dag_preferred(self, node: TaskNode) -> int | None:
        """Locality score: block-store placement for split-bound nodes,
        distributed-cache ownership for memoized state, and the reducer's
        memo home for the rest of its tree."""
        engine = self.engine
        if node.split_uid is not None:
            if engine.blocks is not None:
                return engine.blocks.preferred_machine(node.split_uid)
            return stable_hash(node.split_uid, salt="splitloc") % len(
                engine.cluster
            )
        if node.memo_uid is not None and engine.cache is not None:
            owner = engine.cache.owner_of(node.memo_uid)
            if owner is not None and engine.cluster.machine(owner).alive:
                return owner
        if node.reducer is not None:
            return stable_hash(
                (engine.job.name, node.reducer), salt="memoloc"
            ) % len(engine.cluster)
        return None

    # -- chaos wiring ---------------------------------------------------------

    def _chaos_schedule(self) -> "ChaosSchedule | None":
        engine = self.engine
        if engine.chaos is None:
            return None
        schedule = engine.chaos.for_run(engine.run_index)
        if schedule is not None and schedule.is_empty():
            return None
        return schedule

    def _execute_under_chaos(
        self,
        map_tasks: list[SimTask],
        reduce_tasks: list[SimTask],
        schedule: "ChaosSchedule | None",
    ) -> float:
        """Run the wave pair on the fault-tolerant executor, reacting to
        crashes with cache/block-store re-replication, and record the
        recovery costs for the run report."""
        engine = self.engine
        repair_bytes_before = (
            engine.cache.stats.repair_bytes if engine.cache is not None else 0.0
        )
        block_traffic_before = (
            engine.blocks.repair_traffic if engine.blocks is not None else 0.0
        )
        hooks = ExecutorHooks(
            on_crash=engine.lifecycle.on_chaos_crash,
            on_detect=engine.lifecycle.on_chaos_detect,
        )
        report = execute_two_waves(
            map_tasks,
            reduce_tasks,
            engine.cluster,
            engine.scheduler,
            config=engine.executor_config,
            chaos=schedule,
            hooks=hooks,
            telemetry=engine.telemetry,
        )
        self._note_recovery(report, repair_bytes_before, block_traffic_before)
        return report.makespan

    def _note_recovery(
        self, report, repair_bytes_before: float, block_traffic_before: float
    ) -> None:
        engine = self.engine
        recovery = report.stats.as_dict()
        recovery["map_finish"] = report.map_finish
        if engine.cache is not None:
            recovery["repair_bytes"] = (
                engine.cache.stats.repair_bytes - repair_bytes_before
            )
        if engine.blocks is not None:
            recovery["block_repair_traffic"] = (
                engine.blocks.repair_traffic - block_traffic_before
            )
        # Merge, not replace: corruption-repair stats recorded by the
        # lifecycle layer earlier in this run must survive the simulation.
        for key, value in recovery.items():
            engine.last_recovery[key] = (
                engine.last_recovery.get(key, 0.0) + value
            )

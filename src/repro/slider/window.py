"""Sliding-window modes and delta validation.

The paper distinguishes three variants (§3-§4), each served by a dedicated
contraction tree:

* ``APPEND`` — the window only grows (coalescing trees);
* ``FIXED`` — equal-sized add/remove slides (rotating trees);
* ``VARIABLE`` — arbitrary shrink/grow (folding trees, optionally the
  randomized variant).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import WindowError


class WindowMode(enum.Enum):
    APPEND = "append"
    FIXED = "fixed"
    VARIABLE = "variable"


@dataclass(frozen=True)
class WindowDelta:
    """One slide: how many splits leave the front, how many join the back."""

    added: int
    removed: int

    def validate(self, mode: WindowMode, window_size: int) -> None:
        if self.added < 0 or self.removed < 0:
            raise WindowError("delta counts must be non-negative")
        if self.removed > window_size:
            raise WindowError(
                f"cannot remove {self.removed} splits from a window of "
                f"{window_size}"
            )
        if mode is WindowMode.APPEND and self.removed:
            raise WindowError("append-only windows cannot remove splits")
        if mode is WindowMode.FIXED and self.added != self.removed:
            raise WindowError(
                f"fixed-width windows require add == remove "
                f"(got add={self.added}, remove={self.removed})"
            )

"""The Slider engine.

Runs a MapReduceJob over a sliding window incrementally:

1. new splits are processed by Map tasks (memoized by split content id —
   splits still in the window never re-run their Map function);
2. each reducer's contraction tree absorbs the per-reducer deltas and
   propagates the change to its root;
3. Reduce runs on every root to produce the final outputs;
4. optionally, the same task graph is replayed on the simulated cluster to
   produce an end-to-end *time* estimate alongside the exact *work* count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.cluster.cache import CacheConfig, DistributedMemoCache, GarbageCollector
from repro.cluster.chaos import ChaosPlan, ChaosSchedule
from repro.cluster.executor import (
    ExecutorConfig,
    ExecutorHooks,
    execute_dag,
    execute_two_waves,
)
from repro.cluster.machine import Cluster
from repro.cluster.scheduler import (
    HybridScheduler,
    Scheduler,
    SimTask,
    simulate_two_waves,
)
from repro.common.errors import CombinerContractError, ReproError, WindowError
from repro.common.hashing import stable_hash
from repro.core.base import ContractionTree
from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.memo import MemoTable
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.core.taskgraph import GraphRecorder, TaskGraph, TaskNode
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import HashPartitioner, run_map_task
from repro.mapreduce.types import Split, SplitWindow
from repro.metrics import Phase, RunReport, WorkMeter
from repro.slider.window import WindowDelta, WindowMode
from repro.telemetry import SpanKind, Telemetry

#: Tree-variant names accepted by SliderConfig.tree.
TREE_VARIANTS = ("auto", "folding", "randomized", "rotating", "coalescing", "strawman")

#: Time-simulation models accepted by SliderConfig.time_model: "waves"
#: replays the legacy coarse two-wave task list (bit-identical to every
#: historical figure); "dag" replays the recorded task graph at
#: sub-computation granularity with topological readiness.
TIME_MODELS = ("waves", "dag")


@dataclass(frozen=True)
class SliderConfig:
    """Configuration for a Slider instance."""

    mode: WindowMode = WindowMode.VARIABLE
    #: Tree variant; "auto" picks the paper's choice for the mode.
    tree: str = "auto"
    #: Splits per rotating-tree bucket (the paper's w), FIXED mode only.
    bucket_size: int = 1
    #: Enable background pre-processing (§4) for FIXED/APPEND modes.
    split_mode: bool = False
    #: Rebuild threshold for the plain folding tree (None = never rebuild).
    rebuild_factor: int | None = None
    #: Seed for the randomized folding tree's coins.
    seed: int = 0
    #: Garbage-collect memoized state that fell out of the window.
    auto_gc: bool = True
    #: How the time simulation replays a run's tasks on the cluster.
    time_model: str = "waves"
    #: Record the per-run task-graph IR (required by time_model="dag").
    record_graph: bool = True

    def __post_init__(self) -> None:
        if self.time_model not in TIME_MODELS:
            raise ValueError(f"unknown time model {self.time_model!r}")
        if self.time_model == "dag" and not self.record_graph:
            raise ValueError('time_model="dag" requires record_graph=True')

    def tree_variant(self) -> str:
        if self.tree != "auto":
            if self.tree not in TREE_VARIANTS:
                raise ValueError(f"unknown tree variant {self.tree!r}")
            return self.tree
        return {
            WindowMode.APPEND: "coalescing",
            WindowMode.FIXED: "rotating",
            WindowMode.VARIABLE: "folding",
        }[self.mode]


@dataclass
class SliderResult:
    """Outputs plus the metrics of one run.

    ``changed_keys``/``removed_keys`` form the output *delta* of this run
    relative to the previous one — what a downstream consumer of the
    incrementally-maintained result needs to apply, without diffing the
    whole output dict itself.
    """

    outputs: dict[Any, Any]
    report: RunReport
    run_index: int
    reused_map_tasks: int = 0
    new_map_tasks: int = 0
    changed_keys: frozenset = frozenset()
    removed_keys: frozenset = frozenset()
    #: The run's task-graph IR (None when recording is disabled).
    graph: TaskGraph | None = None


@dataclass
class _RunSnapshot:
    """Meter/phase snapshot used to compute per-run deltas."""

    totals: dict[Phase, float] = field(default_factory=dict)

    @staticmethod
    def of(meter: WorkMeter) -> "_RunSnapshot":
        return _RunSnapshot(dict(meter.by_phase))

    def delta(self, meter: WorkMeter) -> dict[Phase, float]:
        # Sort the phases: set iteration over enum members follows object
        # hashes, which vary across processes, and the float summation
        # order downstream must not.
        return {
            phase: meter.by_phase.get(phase, 0.0) - self.totals.get(phase, 0.0)
            for phase in sorted(
                set(meter.by_phase) | set(self.totals), key=lambda p: p.value
            )
        }


class Slider:
    """Incremental sliding-window executor for one MapReduceJob."""

    def __init__(
        self,
        job: MapReduceJob,
        mode: WindowMode = WindowMode.VARIABLE,
        config: SliderConfig | None = None,
        cluster: Cluster | None = None,
        scheduler: Scheduler | None = None,
        cache_config: CacheConfig | None = None,
        chaos: ChaosSchedule | ChaosPlan | None = None,
        executor_config: ExecutorConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if config is not None and config.mode is not mode:
            config = replace(config, mode=mode)
        self.job = job
        self.config = config or SliderConfig(mode=mode)
        self.mode = mode
        self.partitioner = HashPartitioner(job.num_reducers)
        #: The telemetry backbone: one span tree shared by the engine, the
        #: trees, the distributed cache, the block store, and the executor.
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(label=f"slider:{job.name}")
        )
        self.meter = WorkMeter(telemetry=self.telemetry)
        self.window = SplitWindow()
        #: Per-run task-graph recorder (the IR every run reifies into).
        self.recorder: GraphRecorder | None = (
            GraphRecorder() if self.config.record_graph else None
        )
        self.cluster = cluster
        self.scheduler = scheduler or HybridScheduler()
        self.cache: DistributedMemoCache | None = None
        self.gc: GarbageCollector | None = None
        self.blocks = None
        if cluster is not None:
            from repro.cluster.storage import BlockStore

            self.cache = DistributedMemoCache(
                cluster, cache_config, telemetry=self.telemetry
            )
            self.gc = GarbageCollector(self.cache)
            self.blocks = BlockStore(cluster, telemetry=self.telemetry)
        #: Fault schedule(s) the time simulation executes under; outputs
        #: are unaffected (the invariant `verify_outputs` checks).
        self.chaos = chaos
        self.executor_config = executor_config
        #: Machines chaos crashed during the latest simulated execution;
        #: healed at the start of the next run when the schedule says so.
        self._chaos_downed: list[int] = []
        self._last_recovery: dict[str, float] = {}
        #: split uid -> per-reducer map-output partitions.
        self._map_memo: dict[int, list[Partition]] = {}
        self.trees: list[ContractionTree] = [
            self._make_tree() for _ in range(job.num_reducers)
        ]
        #: per-reducer memoized Reduce outputs: key -> (root value, output).
        self._reduce_memo: list[dict[Any, tuple[Any, Any]]] = [
            {} for _ in range(job.num_reducers)
        ]
        self._run_index = 0
        self._ran_initial = False
        #: Per-reducer work measured during the latest run (feeds the time
        #: simulation's reduce-task imbalance) and the latest output delta.
        self._last_tree_costs: list[float] = []
        self._last_changed_keys: frozenset = frozenset()
        self._last_removed_keys: frozenset = frozenset()

    # -- tree construction ---------------------------------------------------

    def _make_tree(self) -> ContractionTree:
        memo = MemoTable(backing=self.cache, telemetry=self.telemetry)
        common = dict(
            meter=self.meter,
            memo=memo,
            combine_cost_factor=self.job.costs.combine_cost_factor,
            memo_read_cost=self.job.costs.memo_read_cost_per_key,
            memo_write_cost=self.job.costs.memo_write_cost_per_key,
        )
        variant = self.config.tree_variant()
        try:
            return self._construct_tree(variant, common)
        except CombinerContractError as exc:
            raise CombinerContractError(
                f"job {self.job.name!r}: {exc} "
                f"(tree variant {variant!r})"
            ) from exc

    def _construct_tree(self, variant: str, common: dict) -> ContractionTree:
        if variant == "folding":
            tree: ContractionTree = FoldingTree(
                self.job.combiner,
                rebuild_factor=self.config.rebuild_factor,
                **common,
            )
        elif variant == "randomized":
            tree = RandomizedFoldingTree(
                self.job.combiner, seed=self.config.seed, **common
            )
        elif variant == "rotating":
            tree = RotatingTree(
                self.job.combiner,
                bucket_size=self.config.bucket_size,
                split_mode=self.config.split_mode,
                **common,
            )
        elif variant == "coalescing":
            tree = CoalescingTree(
                self.job.combiner, split_mode=self.config.split_mode, **common
            )
        elif variant == "strawman":
            tree = StrawmanTree(self.job.combiner, **common)
        else:
            raise ValueError(f"unknown tree variant {variant!r}")
        tree.recorder = self.recorder
        return tree

    # -- lifecycle -------------------------------------------------------------

    def initial_run(self, splits: Sequence[Split]) -> SliderResult:
        """Process the first window from scratch, building all trees."""
        if self._ran_initial:
            raise WindowError("initial_run may only be called once")
        self._ran_initial = True
        self._heal_chaos()
        snapshot = _RunSnapshot.of(self.meter)
        with self.telemetry.span(
            "initial", SpanKind.WINDOW_UPDATE, run_index=self._run_index
        ):
            if self.recorder is not None:
                self.recorder.begin_run("initial")
            with self.telemetry.span("map", SpanKind.PHASE):
                new_map_costs = self._run_maps(splits)
            self.window.append(list(splits))

            per_reducer = self._reducer_leaves(splits)
            with self.telemetry.span("contraction", SpanKind.PHASE):
                roots = self._advance_trees(
                    lambda r, tree: tree.initial_run(per_reducer[r])
                )
            with self.telemetry.span("reduce", SpanKind.PHASE):
                outputs = self._reduce_all(roots)
            return self._finish_run(
                snapshot, outputs, new_map_costs, reused=0, label="initial"
            )

    def advance(self, added: Sequence[Split], removed: int) -> SliderResult:
        """Slide the window and incrementally update the output."""
        if not self._ran_initial:
            raise WindowError("advance called before initial_run")
        WindowDelta(len(added), removed).validate(self.mode, len(self.window))

        self._heal_chaos()
        snapshot = _RunSnapshot.of(self.meter)
        with self.telemetry.span(
            f"incremental-{self._run_index}",
            SpanKind.WINDOW_UPDATE,
            run_index=self._run_index,
            added=len(added),
            removed=removed,
        ):
            if self.recorder is not None:
                self.recorder.begin_run(f"incremental-{self._run_index}")
            reused = sum(1 for s in added if s.uid in self._map_memo)
            with self.telemetry.span("map", SpanKind.PHASE):
                new_map_costs = self._run_maps(added)
            self.window.drop_front(removed)
            self.window.append(list(added))

            per_reducer = self._reducer_leaves(added)
            with self.telemetry.span("contraction", SpanKind.PHASE):
                roots = self._advance_trees(
                    lambda r, tree: tree.advance(per_reducer[r], removed)
                )
            with self.telemetry.span("reduce", SpanKind.PHASE):
                outputs = self._reduce_all(roots)
            result = self._finish_run(
                snapshot,
                outputs,
                new_map_costs,
                reused=reused,
                label=f"incremental-{self._run_index}",
            )
            if self.config.auto_gc:
                self.collect_garbage()
            return result

    def background_preprocess(self) -> float:
        """Run the best-effort background phase on every tree (§4).

        Returns the background work charged.  No-op for trees without a
        split-processing mode.
        """
        before = self.meter.by_phase.get(Phase.BACKGROUND, 0.0)
        with self.telemetry.span("background", SpanKind.PHASE):
            for tree in self.trees:
                preprocess = getattr(tree, "background_preprocess", None)
                if preprocess is not None:
                    preprocess()
        return self.meter.by_phase.get(Phase.BACKGROUND, 0.0) - before

    # -- internals ---------------------------------------------------------

    def _run_maps(  # analysis: charge-in-caller-span (map phase span)
        self, splits: Sequence[Split]
    ) -> dict[int, float]:
        """Run (or reuse) Map tasks; returns per-split charged cost."""
        if self.blocks is not None:
            self.blocks.store_all(splits)
        recorder = self.recorder
        costs: dict[int, float] = {}
        for split in splits:
            if split.uid in self._map_memo:
                read_cost = self.job.costs.memo_read_cost_per_key * max(
                    1, len(split)
                )
                self.meter.charge(Phase.MEMO_READ, read_cost)
                if recorder is not None:
                    recorder.map_reuse(
                        split.uid, self._map_memo[split.uid], cost=read_cost
                    )
                costs[split.uid] = 0.0
                continue
            before = self.meter.total()
            map_before = self.meter.by_phase.get(Phase.MAP, 0.0)
            shuffle_before = self.meter.by_phase.get(Phase.SHUFFLE, 0.0)
            self._map_memo[split.uid] = run_map_task(
                self.job,
                split.records,
                self.partitioner,
                self.meter,
                label=f"map:{split.uid:#x}",
            )
            costs[split.uid] = self.meter.total() - before
            if recorder is not None:
                recorder.map_task(
                    split.uid,
                    self._map_memo[split.uid],
                    map_cost=self.meter.by_phase.get(Phase.MAP, 0.0)
                    - map_before,
                    shuffle_cost=self.meter.by_phase.get(Phase.SHUFFLE, 0.0)
                    - shuffle_before,
                )
        return costs

    def _advance_trees(self, step) -> list[Partition]:
        """Run ``step`` on every tree, recording per-reducer work (which the
        time simulation uses for realistic reduce-task imbalance)."""
        roots = []
        self._last_tree_costs = []
        for reducer_index, tree in enumerate(self.trees):
            before = self.meter.total()
            with self.telemetry.span(
                f"reducer:{reducer_index}", SpanKind.TASK, reducer=reducer_index
            ):
                if self.recorder is not None:
                    with self.recorder.reducer_context(reducer_index):
                        roots.append(step(reducer_index, tree))
                else:
                    roots.append(step(reducer_index, tree))
            self._last_tree_costs.append(self.meter.total() - before)
        return roots

    def _reducer_leaves(self, splits: Sequence[Split]) -> list[list[Partition]]:
        per_reducer: list[list[Partition]] = [
            [] for _ in range(self.job.num_reducers)
        ]
        for split in splits:
            outputs = self._map_memo[split.uid]
            for reducer_index, partition in enumerate(outputs):
                per_reducer[reducer_index].append(partition)
        return per_reducer

    def _reduce_all(  # analysis: charge-in-caller-span (reduce phase span)
        self, roots: list[Partition]
    ) -> dict[Any, Any]:
        """Apply Reduce per key, reusing outputs for unchanged root values.

        Change propagation is per-key (Algorithm 1): a key whose combined
        value did not change between runs keeps its memoized Reduce output
        at only a memo-read cost; changed and new keys pay the full Reduce
        cost.
        """
        outputs: dict[Any, Any] = {}
        read_cost = self.job.costs.memo_read_cost_per_key
        reduce_cost = self.job.costs.reduce_cost_per_key
        recorder = self.recorder
        changed_keys: set[Any] = set()
        removed_keys: set[Any] = set()
        for reducer_index, root in enumerate(roots):
            reduce_start = self.meter.total()
            memo = self._reduce_memo[reducer_index]
            fresh: dict[Any, tuple[Any, Any]] = {}
            changed = 0
            unchanged = 0
            for key, value in root.items():
                cached = memo.get(key)
                if cached is not None and cached[0] == value:
                    output = cached[1]
                    unchanged += 1
                else:
                    output = self.job.reduce_fn(key, value)
                    changed += 1
                    changed_keys.add(key)
                    if recorder is not None:
                        with recorder.reducer_context(reducer_index):
                            recorder.reduce_key(root, key, cost=reduce_cost)
                fresh[key] = (value, output)
                outputs[key] = output
            removed_keys.update(key for key in memo if key not in fresh)
            self._reduce_memo[reducer_index] = fresh
            if changed:
                self.meter.charge(Phase.REDUCE, changed * reduce_cost)
            if unchanged:
                self.meter.charge(Phase.MEMO_READ, unchanged * read_cost)
                if recorder is not None:
                    with recorder.reducer_context(reducer_index):
                        recorder.reduce_reuse(
                            root, unchanged, cost=unchanged * read_cost
                        )
            if reducer_index < len(self._last_tree_costs):
                self._last_tree_costs[reducer_index] += (
                    self.meter.total() - reduce_start
                )
        self._last_changed_keys = frozenset(changed_keys)
        self._last_removed_keys = frozenset(removed_keys)
        return outputs

    def _finish_run(
        self,
        snapshot: _RunSnapshot,
        outputs: dict[Any, Any],
        new_map_costs: dict[int, float],
        reused: int,
        label: str,
    ) -> SliderResult:
        phase_delta = snapshot.delta(self.meter)
        graph = self.recorder.end_run() if self.recorder is not None else None
        work = sum(
            amount
            for phase, amount in phase_delta.items()
            if phase is not Phase.BACKGROUND
        )
        with self.telemetry.span("execute", SpanKind.PHASE, label=label):
            time = self._simulate_time(phase_delta, new_map_costs, graph)
        report = RunReport(
            label=label,
            work=work,
            time=time,
            space=self.space(),
            breakdown={phase.value: amount for phase, amount in phase_delta.items()},
            recovery=dict(self._last_recovery),
        )
        self._last_recovery = {}
        result = SliderResult(
            outputs=outputs,
            report=report,
            run_index=self._run_index,
            reused_map_tasks=reused,
            new_map_tasks=sum(1 for cost in new_map_costs.values() if cost > 0),
            changed_keys=self._last_changed_keys,
            removed_keys=self._last_removed_keys,
            graph=graph,
        )
        self._run_index += 1
        return result

    def _simulate_time(
        self,
        phase_delta: dict[Phase, float],
        new_map_costs: dict[int, float],
        graph: TaskGraph | None = None,
    ) -> float:
        """Replay this run's tasks on the cluster; fall back to work-as-time."""
        foreground = sum(
            amount
            for phase, amount in phase_delta.items()
            if phase is not Phase.BACKGROUND
        )
        if self.cluster is None:
            return foreground
        if self.config.time_model == "dag":
            return self._replay_dag(graph)

        map_tasks = []
        for uid, cost in new_map_costs.items():
            if cost <= 0:
                continue
            if self.blocks is not None:
                preferred = self.blocks.preferred_machine(uid)
            else:
                preferred = stable_hash(uid, salt="splitloc") % len(self.cluster)
            map_tasks.append(
                SimTask(
                    label=f"map:{uid:#x}",
                    cost=cost,
                    preferred_machine=preferred,
                    fetch_bytes=cost,
                    kind="map",
                )
            )
        map_total = sum(t.cost for t in map_tasks)
        reduce_side = foreground - map_total
        reduce_tasks = []
        # Per-reducer costs measured during the run; any residue (shuffle,
        # map-side memo reads) spreads evenly.
        tree_costs = self._last_tree_costs
        if len(tree_costs) != len(self.trees):
            tree_costs = [0.0] * len(self.trees)
        residue = max(0.0, reduce_side - sum(tree_costs)) / max(
            1, len(self.trees)
        )
        for reducer_index, tree in enumerate(self.trees):
            # A reduce task migrated away from its memoized state must pull
            # that state (tree node values) over the network.
            state_size = tree.memo.space()
            cache = getattr(tree, "_cache", None)
            if isinstance(cache, dict):
                state_size += sum(
                    len(p) for p in cache.values() if isinstance(p, Partition)
                )
            reduce_tasks.append(
                SimTask(
                    label=f"reduce:{reducer_index}",
                    cost=max(tree_costs[reducer_index] + residue, 0.0),
                    preferred_machine=stable_hash(
                        (self.job.name, reducer_index), salt="memoloc"
                    )
                    % len(self.cluster),
                    fetch_bytes=state_size,
                    kind="reduce",
                )
            )
        schedule = None
        if self.chaos is not None:
            schedule = self.chaos.for_run(self._run_index)
            if schedule is not None and schedule.is_empty():
                schedule = None
        if schedule is None and self.executor_config is None:
            # Calm run on the default executor knobs: the plain wrapper,
            # bit-identical to the historical greedy figures.
            makespan, assignments = simulate_two_waves(
                map_tasks, reduce_tasks, self.cluster, self.scheduler
            )
            self._record_attempts(assignments)
            return makespan
        return self._execute_under_chaos(map_tasks, reduce_tasks, schedule)

    def _record_attempts(self, assignments) -> None:
        """Mirror a calm wave's task placements into the span tree, on each
        machine's trace lane with simulated-clock timestamps."""
        for a in assignments:
            self.telemetry.record_span(
                a.task.label,
                SpanKind.ATTEMPT,
                start=a.start,
                end=a.finish,
                thread=f"m{a.machine_id}",
                task_kind=a.task.kind,
                fetched=a.fetched,
            )

    def _replay_dag(self, graph: TaskGraph | None) -> float:
        """Replay the run's task graph at sub-computation granularity.

        Every recorded node becomes one schedulable task with its own
        locality preference; dependency edges gate readiness, so the
        makespan tracks the graph's critical path instead of the coarse
        map-barrier-then-per-reducer-sum of the two-wave replay.
        """
        if graph is None:
            raise ReproError(
                'time_model="dag" needs a recorded task graph for the run'
            )
        tasks, deps = self._dag_tasks(graph)
        schedule = None
        if self.chaos is not None:
            schedule = self.chaos.for_run(self._run_index)
            if schedule is not None and schedule.is_empty():
                schedule = None
        if schedule is None:
            report = execute_dag(
                tasks,
                deps,
                self.cluster,
                self.scheduler,
                config=self.executor_config,
                telemetry=self.telemetry,
            )
            return report.makespan
        repair_bytes_before = (
            self.cache.stats.repair_bytes if self.cache is not None else 0.0
        )
        block_traffic_before = (
            self.blocks.repair_traffic if self.blocks is not None else 0.0
        )
        hooks = ExecutorHooks(
            on_crash=self._on_chaos_crash, on_detect=self._on_chaos_detect
        )
        report = execute_dag(
            tasks,
            deps,
            self.cluster,
            self.scheduler,
            config=self.executor_config,
            chaos=schedule,
            hooks=hooks,
            telemetry=self.telemetry,
        )
        recovery = report.stats.as_dict()
        recovery["map_finish"] = report.map_finish
        if self.cache is not None:
            recovery["repair_bytes"] = (
                self.cache.stats.repair_bytes - repair_bytes_before
            )
        if self.blocks is not None:
            recovery["block_repair_traffic"] = (
                self.blocks.repair_traffic - block_traffic_before
            )
        self._last_recovery = recovery
        return report.makespan

    def _dag_tasks(
        self, graph: TaskGraph
    ) -> tuple[list[SimTask], dict[str, list[str]]]:
        """Lower graph nodes to SimTasks with locality and dependency maps."""
        labels = [f"n{node.uid}:{node.kind}" for node in graph.nodes]
        tasks: list[SimTask] = []
        deps: dict[str, list[str]] = {}
        for node in graph.nodes:
            tasks.append(
                SimTask(
                    label=labels[node.uid],
                    cost=node.cost,
                    preferred_machine=self._dag_preferred(node),
                    fetch_bytes=node.data_size,
                    kind=node.kind,
                )
            )
            deps[labels[node.uid]] = [labels[dep] for dep in node.deps]
        return tasks, deps

    def _dag_preferred(self, node: TaskNode) -> int | None:
        """Locality score: block-store placement for split-bound nodes,
        distributed-cache ownership for memoized state, and the reducer's
        memo home for the rest of its tree."""
        if node.split_uid is not None:
            if self.blocks is not None:
                return self.blocks.preferred_machine(node.split_uid)
            return stable_hash(node.split_uid, salt="splitloc") % len(
                self.cluster
            )
        if node.memo_uid is not None and self.cache is not None:
            owner = self.cache.owner_of(node.memo_uid)
            if owner is not None and self.cluster.machine(owner).alive:
                return owner
        if node.reducer is not None:
            return stable_hash(
                (self.job.name, node.reducer), salt="memoloc"
            ) % len(self.cluster)
        return None

    def _execute_under_chaos(
        self,
        map_tasks: list[SimTask],
        reduce_tasks: list[SimTask],
        schedule: ChaosSchedule | None,
    ) -> float:
        """Run the wave pair on the fault-tolerant executor, reacting to
        crashes with cache/block-store re-replication, and record the
        recovery costs for the run report."""
        repair_bytes_before = (
            self.cache.stats.repair_bytes if self.cache is not None else 0.0
        )
        block_traffic_before = (
            self.blocks.repair_traffic if self.blocks is not None else 0.0
        )
        hooks = ExecutorHooks(
            on_crash=self._on_chaos_crash, on_detect=self._on_chaos_detect
        )
        report = execute_two_waves(
            map_tasks,
            reduce_tasks,
            self.cluster,
            self.scheduler,
            config=self.executor_config,
            chaos=schedule,
            hooks=hooks,
            telemetry=self.telemetry,
        )
        recovery = report.stats.as_dict()
        recovery["map_finish"] = report.map_finish
        if self.cache is not None:
            recovery["repair_bytes"] = (
                self.cache.stats.repair_bytes - repair_bytes_before
            )
        if self.blocks is not None:
            recovery["block_repair_traffic"] = (
                self.blocks.repair_traffic - block_traffic_before
            )
        self._last_recovery = recovery
        return report.makespan

    def _on_chaos_crash(self, machine_id: int, when: float) -> None:
        """The machine physically died: its RAM (cache shard) is gone and
        the trees' process-local memo views can no longer be trusted."""
        self._chaos_downed.append(machine_id)
        if self.cache is not None:
            self.cache.on_machine_failure(machine_id)
        for tree in self.trees:
            tree.memo.entries.clear()

    def _on_chaos_detect(self, machine_id: int, when: float) -> None:
        """The master noticed the crash: re-replicate what lost a copy."""
        if self.blocks is not None:
            self.blocks.on_machine_failure(machine_id)
        if self.cache is not None:
            self.cache.repair()

    def _heal_chaos(self) -> None:
        """Revive chaos-crashed machines before the next run when the
        schedule heals (mirrors FaultInjector's ``heal``)."""
        if not self._chaos_downed:
            return
        if self.chaos is None or getattr(self.chaos, "heal", True):
            for machine_id in self._chaos_downed:
                if not self.cluster.machine(machine_id).alive:
                    self.cluster.revive(machine_id)
        self._chaos_downed = []

    def set_chaos(
        self,
        chaos: ChaosSchedule | ChaosPlan | None,
        executor_config: ExecutorConfig | None = None,
    ) -> None:
        """Swap the fault schedule (and optionally executor knobs) between
        runs; pass ``None`` to go back to calm execution."""
        self.chaos = chaos
        if executor_config is not None:
            self.executor_config = executor_config

    # -- maintenance ---------------------------------------------------------

    def on_machine_failure(self, machine_id: int) -> int:
        """React to a worker crash (§6).

        The crashed machine's share of the in-memory distributed cache is
        lost; the block store re-replicates its blocks; and the trees'
        process-local memo views are invalidated, so subsequent lookups go
        through the shim I/O layer (replicas when the memory copy is
        gone).  Returns the number of in-memory cache objects lost.
        """
        lost = 0
        if self.cache is not None:
            lost = self.cache.on_machine_failure(machine_id)
        if self.blocks is not None:
            self.blocks.on_machine_failure(machine_id)
        for tree in self.trees:
            tree.memo.entries.clear()
        return lost

    def collect_garbage(self) -> int:
        """Drop memoized state that the current window can no longer use."""
        live_split_uids = {split.uid for split in self.window}
        dead = [uid for uid in self._map_memo if uid not in live_split_uids]
        for uid in dead:
            del self._map_memo[uid]
            if self.blocks is not None:
                self.blocks.drop_split(uid)
        dropped = len(dead)
        for tree in self.trees:
            live = getattr(tree, "live_memo_uids", None)
            if live is not None:
                dropped += tree.memo.retain_only(live())
        if self.gc is not None and self.cache is not None:
            # The distributed cache mirrors tree memo tables; retain union.
            live_uids: set[int] = set()
            for tree in self.trees:
                live = getattr(tree, "live_memo_uids", None)
                if live is not None:
                    live_uids |= live()
                else:
                    live_uids |= set(tree.memo.entries)
            self.gc.collect(live_uids)
        return dropped

    def space(self) -> float:
        """Memoized state retained across runs (Figure 13's space metric)."""
        map_space = sum(
            sum(len(p) for p in partitions)
            for partitions in self._map_memo.values()
        )
        tree_space = sum(tree.memo.space() for tree in self.trees)
        cache_space = 0.0
        for tree in self.trees:
            cache = getattr(tree, "_cache", None)
            if isinstance(cache, dict):
                cache_space += sum(len(p) for p in cache.values())
        return float(map_space) + tree_space + cache_space

    def current_outputs(self) -> dict[Any, Any]:
        """Re-derive outputs from current roots without charging work."""
        outputs: dict[Any, Any] = {}
        for tree in self.trees:
            for key, value in tree.root().items():
                outputs[key] = self.job.reduce_fn(key, value)
        return outputs

    def verify_outputs(self, outputs: dict[Any, Any] | None = None) -> int:
        """Invariant check: outputs equal a from-scratch batch run.

        Chaos only perturbs the *time* simulation and the storage layers;
        the incremental computation must still produce exactly what a
        fault-free batch execution over the current window produces.
        Raises :class:`~repro.common.errors.ReproError` on any
        divergence; returns the number of keys checked.
        """
        from repro.mapreduce.runtime import BatchRuntime

        expected = BatchRuntime(self.job).run(list(self.window)).outputs
        actual = outputs if outputs is not None else self.current_outputs()
        if actual != expected:
            missing = sorted(
                str(k) for k in expected.keys() - actual.keys()
            )[:5]
            extra = sorted(str(k) for k in actual.keys() - expected.keys())[:5]
            wrong = sorted(
                str(k)
                for k in expected.keys() & actual.keys()
                if expected[k] != actual[k]
            )[:5]
            raise ReproError(
                "incremental outputs diverged from the batch run: "
                f"missing={missing} extra={extra} wrong={wrong}"
            )
        return len(expected)

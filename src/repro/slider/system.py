"""The Slider engine facade.

Runs a MapReduceJob over a sliding window incrementally.  Since the
plan/execute split, this module is a thin orchestrator over four
collaborators, one per concern:

* :class:`~repro.slider.planning.RunPlanner` — assembles each run's plan
  (map steps, contraction-tree steps, reduce steps) and drives it;
* :class:`~repro.core.execute.PlanExecutor` — the single execution
  substrate: resolves every planned step (memo lookup, combine, charge,
  record) and measures what the time models consume;
* :class:`~repro.slider.execution.TimeSimulator` — prices the executed
  run on the simulated cluster (``"waves"`` cost model or ``"dag"``
  replay, calm or under chaos);
* :class:`~repro.slider.lifecycle.LifecycleManager` — cross-run state:
  failure healing, garbage collection, space, output verification.

Each run reifies into a :class:`~repro.core.plan.Plan` (memo-independent
description of the window update) plus an executed
:class:`~repro.core.taskgraph.TaskGraph` (what actually ran, with
costs), both returned on the :class:`SliderResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.cluster.cache import CacheConfig, DistributedMemoCache, GarbageCollector
from repro.cluster.chaos import ChaosPlan, ChaosSchedule
from repro.cluster.executor import ExecutorConfig
from repro.cluster.machine import Cluster
from repro.cluster.scheduler import HybridScheduler, Scheduler
from repro.common.errors import WindowError
from repro.core.backends import ExecutionBackend, make_backend
from repro.core.base import ContractionTree
from repro.core.compile import CompiledPlan, PlanCache
from repro.core.execute import PlanExecutor, RunExecution
from repro.core.partition import Partition
from repro.core.poison import DeadLetterQueue, PoisonContext
from repro.core.plan import Plan
from repro.core.taskgraph import TaskGraph
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import HashPartitioner
from repro.mapreduce.types import Split, SplitWindow
from repro.metrics import Phase, RunReport, WorkMeter
from repro.slider.config import TIME_MODELS, TREE_VARIANTS, SliderConfig
from repro.slider.execution import TimeSimulator
from repro.slider.lifecycle import LifecycleManager
from repro.slider.planning import RunPlanner
from repro.slider.window import WindowDelta, WindowMode
from repro.telemetry import SpanKind, Telemetry

__all__ = [
    "Slider",
    "SliderConfig",
    "SliderResult",
    "TIME_MODELS",
    "TREE_VARIANTS",
]


@dataclass
class SliderResult:
    """Outputs plus the metrics of one run.

    ``changed_keys``/``removed_keys`` form the output *delta* of this run
    relative to the previous one — what a downstream consumer of the
    incrementally-maintained result needs to apply, without diffing the
    whole output dict itself.
    """

    outputs: dict[Any, Any]
    report: RunReport
    run_index: int
    reused_map_tasks: int = 0
    new_map_tasks: int = 0
    changed_keys: frozenset = frozenset()
    removed_keys: frozenset = frozenset()
    #: The run's executed task-graph IR (always recorded).
    graph: TaskGraph | None = None
    #: The run's plan: the memo-independent step sequence that was executed.
    plan: Plan | None = None
    #: The compiled form of the plan (fused groups + kernel hints); set
    #: whenever the compile layer engaged — on a plan-cache hit this is the
    #: replayed template, on a cacheable miss the freshly compiled store.
    compiled: CompiledPlan | None = None
    #: True when this run replayed a cached plan (replanning was skipped).
    plan_cache_hit: bool = False
    #: Poison records/keys quarantined during this run (empty unless the
    #: engine was configured with a poison policy and user code raised).
    dead_letters: tuple = ()


class Slider:
    """Incremental sliding-window executor for one MapReduceJob."""

    def __init__(
        self,
        job: MapReduceJob,
        mode: WindowMode = WindowMode.VARIABLE,
        config: SliderConfig | None = None,
        cluster: Cluster | None = None,
        scheduler: Scheduler | None = None,
        cache_config: CacheConfig | None = None,
        chaos: ChaosSchedule | ChaosPlan | None = None,
        executor_config: ExecutorConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if config is not None and config.mode is not mode:
            config = replace(config, mode=mode)
        self.job = job
        self.config = config or SliderConfig(mode=mode)
        self.mode = mode
        self.partitioner = HashPartitioner(job.num_reducers)
        #: The telemetry backbone: one span tree shared by the engine, the
        #: trees, the distributed cache, the block store, and the executor.
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(label=f"slider:{job.name}")
        )
        self.meter = WorkMeter(telemetry=self.telemetry)
        self.window = SplitWindow()
        #: The unified plan executor: every sub-computation of every run —
        #: the engine's map/reduce passes and all tree combines — resolves
        #: here, and each run reifies into its plan/graph pair.
        self.executor = PlanExecutor(meter=self.meter)
        #: Dead-letter channel for poison records/keys (graceful
        #: degradation); None unless the config sets a poison policy.
        self.dead_letters: DeadLetterQueue | None = None
        if self.config.poison_policy is not None:
            self.dead_letters = DeadLetterQueue(
                policy=self.config.poison_policy, telemetry=self.telemetry
            )
            self.executor.poison = PoisonContext(queue=self.dead_letters)
        self.cluster = cluster
        self.scheduler = scheduler or HybridScheduler()
        self.cache: DistributedMemoCache | None = None
        self.gc: GarbageCollector | None = None
        self.blocks = None
        if cluster is not None:
            from repro.cluster.storage import BlockStore

            self.cache = DistributedMemoCache(
                cluster, cache_config, telemetry=self.telemetry
            )
            self.gc = GarbageCollector(self.cache)
            self.blocks = BlockStore(cluster, telemetry=self.telemetry)
        #: Fault schedule(s) the time simulation executes under; outputs
        #: are unaffected (the invariant `verify_outputs` checks).
        self.chaos = chaos
        self.executor_config = executor_config
        #: Machines chaos crashed during the latest simulated execution;
        #: healed at the start of the next run when the schedule says so.
        self.chaos_downed: list[int] = []
        self.last_recovery: dict[str, float] = {}
        #: split uid -> per-reducer map-output partitions.
        self.map_memo: dict[int, list[Partition]] = {}
        #: per-reducer memoized Reduce outputs: key -> (root value, output).
        self.reduce_memo: list[dict[Any, tuple[Any, Any]]] = [
            {} for _ in range(job.num_reducers)
        ]
        #: Compiled plans keyed by window-motion signature; steady-state
        #: advances replay out of here instead of replanning.
        self.plan_cache = PlanCache(capacity=self.config.plan_cache_capacity)
        #: The execution-backend seam: decides per run whether certified
        #: contraction slices dispatch to worker processes or run here.
        #: Constructed before the trees — it supplies their memo stores.
        self.backend: ExecutionBackend = make_backend(
            self.config.execution_backend, self.config.workers
        )
        self.planner = RunPlanner(self)
        self.timing = TimeSimulator(self)
        self.lifecycle = LifecycleManager(self)
        self.trees: list[ContractionTree] = self.planner.make_trees()
        self.run_index = 0
        self._ran_initial = False
        #: The latest run's output delta.
        self._last_changed_keys: frozenset = frozenset()
        self._last_removed_keys: frozenset = frozenset()

    # -- lifecycle -------------------------------------------------------------

    def initial_run(self, splits: Sequence[Split]) -> SliderResult:
        """Process the first window from scratch, building all trees."""
        if self._ran_initial:
            raise WindowError("initial_run may only be called once")
        self._ran_initial = True
        self.lifecycle.heal_chaos()
        self.lifecycle.reset_degradation()
        phase_before = dict(self.telemetry.by_phase)
        with self.telemetry.span(
            "initial", SpanKind.WINDOW_UPDATE, run_index=self.run_index
        ):
            self.lifecycle.inject_corruption()
            if self.executor.poison is not None:
                self.executor.poison.context = "initial"
            self.executor.begin_run("initial")
            with self.telemetry.span("map", SpanKind.PHASE):
                self.planner.run_maps(splits)
            self.window.append(list(splits))

            per_reducer = self.planner.reducer_leaves(splits)
            with self.telemetry.span("contraction", SpanKind.PHASE):
                roots = self.planner.advance_trees(
                    lambda r, tree: tree.initial_run(per_reducer[r])
                )
            with self.telemetry.span("reduce", SpanKind.PHASE):
                outputs = self._reduce(roots)
            return self._finish_run(
                phase_before, outputs, reused=0, label="initial"
            )

    def advance(self, added: Sequence[Split], removed: int) -> SliderResult:
        """Slide the window and incrementally update the output."""
        if not self._ran_initial:
            raise WindowError("advance called before initial_run")
        WindowDelta(len(added), removed).validate(self.mode, len(self.window))

        self.lifecycle.heal_chaos()
        self.lifecycle.reset_degradation()
        phase_before = dict(self.telemetry.by_phase)
        with self.telemetry.span(
            f"incremental-{self.run_index}",
            SpanKind.WINDOW_UPDATE,
            run_index=self.run_index,
            added=len(added),
            removed=removed,
        ):
            self.lifecycle.inject_corruption()
            if self.executor.poison is not None:
                self.executor.poison.context = f"incremental-{self.run_index}"
            # The cache-aware front end: keys the advance off pre-mutation
            # tree structure; a hit opens the executor in replay mode.
            self.planner.begin_run(
                f"incremental-{self.run_index}", added, removed
            )
            with self.telemetry.span("map", SpanKind.PHASE):
                reused = self.planner.run_maps(added)
            self.window.drop_front(removed)
            self.window.append(list(added))

            per_reducer = self.planner.reducer_leaves(added)
            with self.telemetry.span("contraction", SpanKind.PHASE):
                roots = self.backend.contract(self, per_reducer, removed)
            with self.telemetry.span("reduce", SpanKind.PHASE):
                outputs = self._reduce(roots)
            result = self._finish_run(
                phase_before,
                outputs,
                reused=reused,
                label=f"incremental-{self.run_index}",
            )
            if self.config.auto_gc:
                self.collect_garbage()
            return result

    def background_preprocess(self) -> float:
        """Run the best-effort background phase on every tree (§4).

        Returns the background work charged.  No-op for trees without a
        split-processing mode.
        """
        before = self.meter.by_phase.get(Phase.BACKGROUND, 0.0)
        with self.telemetry.span("background", SpanKind.PHASE):
            for tree in self.trees:
                preprocess = getattr(tree, "background_preprocess", None)
                if preprocess is not None:
                    preprocess()
        return self.meter.by_phase.get(Phase.BACKGROUND, 0.0) - before

    # -- run assembly ---------------------------------------------------------

    def _reduce(self, roots: list[Partition]) -> dict[Any, Any]:
        outputs, changed, removed = self.planner.reduce_all(roots)
        self._last_changed_keys = changed
        self._last_removed_keys = removed
        return outputs

    def _phase_delta(
        self, before: dict[Phase, float]
    ) -> dict[Phase, float]:
        """Per-run work delta, read directly off the telemetry backbone.

        Sorts the phases: set iteration over enum members follows object
        hashes, which vary across processes, and the float summation
        order downstream must not.
        """
        after = self.telemetry.by_phase
        return {
            phase: after.get(phase, 0.0) - before.get(phase, 0.0)
            for phase in sorted(set(after) | set(before), key=lambda p: p.value)
        }

    def _finish_run(
        self,
        phase_before: dict[Phase, float],
        outputs: dict[Any, Any],
        reused: int,
        label: str,
    ) -> SliderResult:
        phase_delta = self._phase_delta(phase_before)
        run: RunExecution = self.executor.end_run()
        compiled = run.compiled
        if compiled is None:
            # A cacheable fresh advance compiles + stores here; initial
            # runs and uncacheable runs are a no-op (no pending key).
            compiled = self.planner.finish_run(run.plan)
        work = sum(
            amount
            for phase, amount in phase_delta.items()
            if phase is not Phase.BACKGROUND
        )
        with self.telemetry.span("execute", SpanKind.PHASE, label=label):
            time = self.timing.simulate(phase_delta, run)
        report = RunReport(
            label=label,
            work=work,
            time=time,
            space=self.space(),
            breakdown={phase.value: amount for phase, amount in phase_delta.items()},
            recovery=dict(self.last_recovery),
        )
        self.last_recovery = {}
        result = SliderResult(
            outputs=outputs,
            report=report,
            run_index=self.run_index,
            reused_map_tasks=reused,
            new_map_tasks=sum(1 for cost in run.map_costs.values() if cost > 0),
            changed_keys=self._last_changed_keys,
            removed_keys=self._last_removed_keys,
            graph=run.graph,
            plan=run.plan,
            compiled=compiled,
            plan_cache_hit=run.replayed,
            dead_letters=(
                self.dead_letters.drain()
                if self.dead_letters is not None
                else ()
            ),
        )
        self.run_index += 1
        return result

    # -- delegated maintenance ------------------------------------------------

    def set_chaos(
        self,
        chaos: ChaosSchedule | ChaosPlan | None,
        executor_config: ExecutorConfig | None = None,
    ) -> None:
        """Swap the fault schedule (and optionally executor knobs) between
        runs; pass ``None`` to go back to calm execution."""
        self.chaos = chaos
        if executor_config is not None:
            self.executor_config = executor_config

    def on_machine_failure(self, machine_id: int) -> int:
        """React to a worker crash (§6); see LifecycleManager."""
        return self.lifecycle.on_machine_failure(machine_id)

    def collect_garbage(self) -> int:
        """Drop memoized state that the current window can no longer use."""
        return self.lifecycle.collect_garbage()

    def close(self) -> None:
        """Release execution-backend resources (worker pool, shared
        segment).  Idempotent; only needed for long test sessions — the
        backend also cleans up on garbage collection and process exit."""
        self.backend.close()

    def space(self) -> float:
        """Memoized state retained across runs (Figure 13's space metric)."""
        return self.lifecycle.space()

    def current_outputs(self) -> dict[Any, Any]:
        """Re-derive outputs from current roots without charging work."""
        return self.lifecycle.current_outputs()

    def verify_outputs(self, outputs: dict[Any, Any] | None = None) -> int:
        """Invariant check: outputs equal a from-scratch batch run."""
        return self.lifecycle.verify_outputs(outputs)

    # -- durability -----------------------------------------------------------

    def checkpoint(self, path) -> None:
        """Write a durable, fingerprinted checkpoint of all cross-run state.

        See :mod:`repro.recovery.checkpoint`.  Refuses mid-run (open plan
        or open spans) with :class:`~repro.common.errors.CheckpointError`.
        """
        from repro.recovery.checkpoint import write_checkpoint

        write_checkpoint(self, path)

    @staticmethod
    def restore(path, job: MapReduceJob) -> "Slider":
        """Rebuild a Slider from a checkpoint written by :meth:`checkpoint`.

        ``job`` must be the same job the checkpoint was taken from (jobs
        carry user functions, which checkpoints do not serialize); segment
        fingerprints are verified eagerly and a mismatch raises
        :class:`~repro.common.errors.CorruptionError`.
        """
        from repro.recovery.checkpoint import restore_slider

        return restore_slider(path, job)

"""Slider configuration: tree variant, window mode, and time model."""

from __future__ import annotations

import os

from dataclasses import dataclass, field

from repro.core.backends import EXECUTION_BACKENDS
from repro.core.poison import PoisonPolicy
from repro.slider.window import WindowMode

#: Tree-variant names accepted by SliderConfig.tree.
TREE_VARIANTS = ("auto", "folding", "randomized", "rotating", "coalescing", "strawman")


def _default_backend() -> str:
    """Environment-selectable default so an unmodified test suite can run
    under another backend (the CI process-matrix job sets
    ``REPRO_EXECUTION_BACKEND=process``)."""
    return os.environ.get("REPRO_EXECUTION_BACKEND", "inprocess")


def _default_workers() -> int:
    return int(os.environ.get("REPRO_WORKERS", "2"))

#: Time-simulation models accepted by SliderConfig.time_model: "waves"
#: evaluates the legacy coarse two-wave cost model over the executed plan
#: (bit-identical to every historical figure); "dag" replays the run's
#: task graph at sub-computation granularity with topological readiness.
TIME_MODELS = ("waves", "dag")

#: Memo fingerprint-verification modes accepted by SliderConfig.memo_verify.
MEMO_VERIFY_MODES = ("off", "tainted", "paranoid")


@dataclass(frozen=True)
class SliderConfig:
    """Configuration for a Slider instance."""

    mode: WindowMode = WindowMode.VARIABLE
    #: Tree variant; "auto" picks the paper's choice for the mode.
    tree: str = "auto"
    #: Splits per rotating-tree bucket (the paper's w), FIXED mode only.
    bucket_size: int = 1
    #: Enable background pre-processing (§4) for FIXED/APPEND modes.
    split_mode: bool = False
    #: Rebuild threshold for the plain folding tree (None = never rebuild).
    rebuild_factor: int | None = None
    #: Seed for the randomized folding tree's coins.
    seed: int = 0
    #: Garbage-collect memoized state that fell out of the window.
    auto_gc: bool = True
    #: How the time simulation replays a run's tasks on the cluster.
    time_model: str = "waves"
    #: Reuse compiled plans across structurally identical window advances
    #: (replanning is skipped on a hit; outputs and work are bit-identical).
    plan_cache: bool = True
    #: Dispatch fused combine runs of replayed plans through the
    #: vectorized batch kernels (numeric combiners only; scalar fallback).
    plan_fusion: bool = True
    #: Max compiled plans retained (LRU).  Must cover the steady-state
    #: motion period — a folding tree's structural state recurs with
    #: period ≈ the window size — or steady advances never re-hit.
    plan_cache_capacity: int = 256
    #: Quarantine poison records/keys under this retry policy instead of
    #: failing the run; ``None`` propagates user-code exceptions unchanged.
    poison_policy: PoisonPolicy | None = None
    #: Max entries each tree memo table retains; exhausting the budget
    #: degrades new sub-computations toward strawman recomputation.
    memo_budget: int | None = None
    #: Memo fingerprint verification on read: "off", "tainted" (only
    #: entries marked suspect, each verified once), or "paranoid".
    memo_verify: str = "tainted"
    #: Where certified contraction work executes: "inprocess" (default,
    #: bit-identical single-process path) or "process" (persistent forked
    #: worker pool over a shared-memory memo store; ineligible runs fall
    #: back per the backend's dispatch ladder).  Defaults honor the
    #: ``REPRO_EXECUTION_BACKEND`` / ``REPRO_WORKERS`` environment.
    execution_backend: str = field(default_factory=_default_backend)
    #: Worker processes the process backend may fork (capped at the
    #: job's reducer count); ignored by the in-process backend.
    workers: int = field(default_factory=_default_workers)

    def __post_init__(self) -> None:
        if self.time_model not in TIME_MODELS:
            raise ValueError(f"unknown time model {self.time_model!r}")
        if self.memo_verify not in MEMO_VERIFY_MODES:
            raise ValueError(
                f"unknown memo_verify mode {self.memo_verify!r} "
                f"(choose from {MEMO_VERIFY_MODES})"
            )
        if self.memo_budget is not None and self.memo_budget < 0:
            raise ValueError(
                f"memo_budget must be non-negative, got {self.memo_budget}"
            )
        if self.plan_cache_capacity < 1:
            raise ValueError(
                f"plan_cache_capacity must be positive, got "
                f"{self.plan_cache_capacity}"
            )
        if self.execution_backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown execution backend {self.execution_backend!r} "
                f"(choose from {EXECUTION_BACKENDS})"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {self.workers}")

    def tree_variant(self) -> str:
        if self.tree != "auto":
            if self.tree not in TREE_VARIANTS:
                raise ValueError(f"unknown tree variant {self.tree!r}")
            return self.tree
        return {
            WindowMode.APPEND: "coalescing",
            WindowMode.FIXED: "rotating",
            WindowMode.VARIABLE: "folding",
        }[self.mode]

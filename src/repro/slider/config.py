"""Slider configuration: tree variant, window mode, and time model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.poison import PoisonPolicy
from repro.slider.window import WindowMode

#: Tree-variant names accepted by SliderConfig.tree.
TREE_VARIANTS = ("auto", "folding", "randomized", "rotating", "coalescing", "strawman")

#: Time-simulation models accepted by SliderConfig.time_model: "waves"
#: evaluates the legacy coarse two-wave cost model over the executed plan
#: (bit-identical to every historical figure); "dag" replays the run's
#: task graph at sub-computation granularity with topological readiness.
TIME_MODELS = ("waves", "dag")

#: Memo fingerprint-verification modes accepted by SliderConfig.memo_verify.
MEMO_VERIFY_MODES = ("off", "tainted", "paranoid")


@dataclass(frozen=True)
class SliderConfig:
    """Configuration for a Slider instance."""

    mode: WindowMode = WindowMode.VARIABLE
    #: Tree variant; "auto" picks the paper's choice for the mode.
    tree: str = "auto"
    #: Splits per rotating-tree bucket (the paper's w), FIXED mode only.
    bucket_size: int = 1
    #: Enable background pre-processing (§4) for FIXED/APPEND modes.
    split_mode: bool = False
    #: Rebuild threshold for the plain folding tree (None = never rebuild).
    rebuild_factor: int | None = None
    #: Seed for the randomized folding tree's coins.
    seed: int = 0
    #: Garbage-collect memoized state that fell out of the window.
    auto_gc: bool = True
    #: How the time simulation replays a run's tasks on the cluster.
    time_model: str = "waves"
    #: Reuse compiled plans across structurally identical window advances
    #: (replanning is skipped on a hit; outputs and work are bit-identical).
    plan_cache: bool = True
    #: Dispatch fused combine runs of replayed plans through the
    #: vectorized batch kernels (numeric combiners only; scalar fallback).
    plan_fusion: bool = True
    #: Max compiled plans retained (LRU).  Must cover the steady-state
    #: motion period — a folding tree's structural state recurs with
    #: period ≈ the window size — or steady advances never re-hit.
    plan_cache_capacity: int = 256
    #: Quarantine poison records/keys under this retry policy instead of
    #: failing the run; ``None`` propagates user-code exceptions unchanged.
    poison_policy: PoisonPolicy | None = None
    #: Max entries each tree memo table retains; exhausting the budget
    #: degrades new sub-computations toward strawman recomputation.
    memo_budget: int | None = None
    #: Memo fingerprint verification on read: "off", "tainted" (only
    #: entries marked suspect, each verified once), or "paranoid".
    memo_verify: str = "tainted"

    def __post_init__(self) -> None:
        if self.time_model not in TIME_MODELS:
            raise ValueError(f"unknown time model {self.time_model!r}")
        if self.memo_verify not in MEMO_VERIFY_MODES:
            raise ValueError(
                f"unknown memo_verify mode {self.memo_verify!r} "
                f"(choose from {MEMO_VERIFY_MODES})"
            )
        if self.memo_budget is not None and self.memo_budget < 0:
            raise ValueError(
                f"memo_budget must be non-negative, got {self.memo_budget}"
            )
        if self.plan_cache_capacity < 1:
            raise ValueError(
                f"plan_cache_capacity must be positive, got "
                f"{self.plan_cache_capacity}"
            )

    def tree_variant(self) -> str:
        if self.tree != "auto":
            if self.tree not in TREE_VARIANTS:
                raise ValueError(f"unknown tree variant {self.tree!r}")
            return self.tree
        return {
            WindowMode.APPEND: "coalescing",
            WindowMode.FIXED: "rotating",
            WindowMode.VARIABLE: "folding",
        }[self.mode]

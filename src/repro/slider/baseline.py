"""The recompute-from-scratch baseline with a Slider-compatible lifecycle.

Wraps :class:`~repro.mapreduce.runtime.BatchRuntime` in the same
``initial_run`` / ``advance`` interface as :class:`~repro.slider.system.Slider`
so benchmarks can drive both through identical window schedules and compare
work and simulated time run-for-run (the denominators of Figure 7).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.machine import Cluster
from repro.cluster.scheduler import (
    HadoopScheduler,
    Scheduler,
    SimTask,
    simulate_two_waves,
)
from repro.common.errors import WindowError
from repro.common.hashing import stable_hash
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import BatchRuntime
from repro.mapreduce.types import Split, SplitWindow
from repro.metrics import RunReport
from repro.slider.system import SliderResult
from repro.slider.window import WindowDelta, WindowMode
from repro.telemetry import SpanKind, Telemetry


class VanillaRunner:
    """Re-runs the whole window from scratch on every slide."""

    def __init__(
        self,
        job: MapReduceJob,
        mode: WindowMode = WindowMode.VARIABLE,
        cluster: Cluster | None = None,
        scheduler: Scheduler | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.job = job
        self.mode = mode
        #: Telemetry backbone: each batch run's span tree is grafted here
        #: and the wave placements land on machine lanes alongside it.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(label=f"vanilla:{job.name}")
        )
        self.runtime = BatchRuntime(job, telemetry=self.telemetry)
        self.window = SplitWindow()
        self.cluster = cluster
        self.scheduler = scheduler or HadoopScheduler()
        self.blocks = None
        if cluster is not None:
            from repro.cluster.storage import BlockStore

            self.blocks = BlockStore(cluster, telemetry=self.telemetry)
        self._run_index = 0
        self._ran_initial = False

    def initial_run(self, splits: Sequence[Split]) -> SliderResult:
        if self._ran_initial:
            raise WindowError("initial_run may only be called once")
        self._ran_initial = True
        self.window.append(list(splits))
        return self._run("initial")

    def advance(self, added: Sequence[Split], removed: int) -> SliderResult:
        if not self._ran_initial:
            raise WindowError("advance called before initial_run")
        WindowDelta(len(added), removed).validate(self.mode, len(self.window))
        self.window.drop_front(removed)
        self.window.append(list(added))
        return self._run(f"incremental-{self._run_index}")

    def background_preprocess(self) -> float:
        """Vanilla Hadoop has no background phase; present for API parity."""
        return 0.0

    def _run(self, label: str) -> SliderResult:
        with self.telemetry.span(
            label, SpanKind.WINDOW_UPDATE, run_index=self._run_index
        ):
            return self._run_inner(label)

    def _run_inner(self, label: str) -> SliderResult:
        if self.blocks is not None:
            self.blocks.store_all(self.window.splits)
        job_result = self.runtime.run(self.window.splits, label=f"batch-{label}")
        work = job_result.work
        with self.telemetry.span("execute", SpanKind.PHASE):
            time = self._simulate_time(job_result)
        report = RunReport(
            label=label,
            work=work,
            time=time,
            space=0.0,
            breakdown=job_result.meter.snapshot(),
        )
        result = SliderResult(
            outputs=job_result.outputs,
            report=report,
            run_index=self._run_index,
            reused_map_tasks=0,
            new_map_tasks=len(self.window),
        )
        self._run_index += 1
        return result

    def _simulate_time(self, job_result) -> float:
        if self.cluster is None:
            return job_result.work
        map_tasks = []
        reduce_tasks = []
        for record in job_result.tasks:
            preferred = None
            if record.kind == "map":
                if self.blocks is not None and record.split_uid is not None:
                    preferred = self.blocks.preferred_machine(record.split_uid)
                else:
                    preferred = stable_hash(record.label, salt="splitloc") % len(
                        self.cluster
                    )
            task = SimTask(
                label=record.label,
                cost=record.cost,
                preferred_machine=preferred,
                fetch_bytes=record.input_bytes,
                kind=record.kind,
            )
            (map_tasks if record.kind == "map" else reduce_tasks).append(task)
        makespan, assignments = simulate_two_waves(
            map_tasks, reduce_tasks, self.cluster, self.scheduler
        )
        for a in assignments:
            self.telemetry.record_span(
                a.task.label,
                SpanKind.ATTEMPT,
                start=a.start,
                end=a.finish,
                thread=f"m{a.machine_id}",
                task_kind=a.task.kind,
                fetched=a.fetched,
            )
        return makespan

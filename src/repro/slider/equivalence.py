"""Per-variant plan-vs-legacy equivalence report.

The plan/execute refactor is gated on observational equivalence: for every
tree variant, the unified plan/execute path must reproduce the seed
(inline execute-then-replay) path bit for bit — outputs, per-phase work
totals, and the legacy ``time_model="waves"`` makespans.  The seed numbers
were captured once, from the seed code path, into
``tests/integration/golden_plan_equivalence.json``; this module replays
the same scenario and diffs against them.

Used two ways:

* ``tests/integration/test_plan_equivalence.py`` asserts the diff is
  empty (the blocking gate);
* ``python -m repro.slider.equivalence --out report.json`` emits the full
  per-variant report, which CI publishes as a workflow artifact alongside
  the trace export.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any

from repro.cluster.machine import Cluster, ClusterConfig
from repro.common.hashing import stable_hash
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

#: The five variants and the window mode each is exercised under.
SCENARIO_VARIANTS = (
    ("folding", "variable"),
    ("randomized", "variable"),
    ("strawman", "variable"),
    ("rotating", "fixed"),
    ("coalescing", "append"),
)

_MODES = {
    "variable": WindowMode.VARIABLE,
    "fixed": WindowMode.FIXED,
    "append": WindowMode.APPEND,
}


def _scenario_job() -> MapReduceJob:
    return MapReduceJob(
        name="equivalence-counts",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def _scenario_split(i: int, spread: int = 12, n: int = 20) -> Split:
    return Split.from_records(
        [f"w{(i * 7 + j) % spread}" for j in range(n)], label=f"s{i}"
    )


def _outputs_fingerprint(outputs: dict[Any, Any]) -> str:
    items = sorted((repr(k), repr(v)) for k, v in outputs.items())
    return f"{stable_hash(tuple(items), salt='equiv-out'):#x}"


def _run_record(result) -> dict[str, Any]:
    record = {
        "label": result.report.label,
        "work": result.report.work,
        "time": result.report.time,
        "space": result.report.space,
        "breakdown": dict(sorted(result.report.breakdown.items())),
        "outputs": _outputs_fingerprint(result.outputs),
        "changed_keys": len(result.changed_keys),
        "removed_keys": len(result.removed_keys),
    }
    if result.graph is not None:
        record["graph_nodes"] = len(result.graph)
        record["graph_kinds"] = dict(
            sorted(result.graph.counts_by_kind().items())
        )
    return record


def variant_scenario(variant: str, mode_name: str) -> list[dict[str, Any]]:
    """Run the fixed scenario for one variant; returns per-run records.

    The scenario pins everything the simulation depends on (cluster shape,
    straggler fraction, split contents), so every field in the records is
    a deterministic function of the code path that produced it.
    """
    mode = _MODES[mode_name]
    cluster = Cluster(
        ClusterConfig(num_machines=8, straggler_fraction=0.0)
    )
    slider = Slider(
        _scenario_job(),
        mode,
        config=SliderConfig(mode=mode, tree=variant),
        cluster=cluster,
    )
    removed = 0 if mode is WindowMode.APPEND else 2
    records = [
        _run_record(slider.initial_run([_scenario_split(i) for i in range(6)]))
    ]
    records.append(
        _run_record(
            slider.advance([_scenario_split(10), _scenario_split(11)], removed)
        )
    )
    single = 0 if mode is WindowMode.APPEND else 1
    records.append(
        _run_record(slider.advance([_scenario_split(12)], single))
    )
    if mode is not WindowMode.FIXED:
        records.append(_run_record(slider.advance([], 0)))
    slider.verify_outputs()
    return records


def collect() -> dict[str, list[dict[str, Any]]]:
    """Run the scenario for all five variants."""
    return {
        variant: variant_scenario(variant, mode_name)
        for variant, mode_name in SCENARIO_VARIANTS
    }


def diff_against(
    golden: dict[str, list[dict[str, Any]]],
    current: dict[str, list[dict[str, Any]]],
) -> list[str]:
    """Human-readable mismatches between golden and current records."""
    problems: list[str] = []
    for variant, golden_runs in golden.items():
        runs = current.get(variant)
        if runs is None:
            problems.append(f"{variant}: missing from current report")
            continue
        if len(runs) != len(golden_runs):
            problems.append(
                f"{variant}: {len(runs)} runs vs {len(golden_runs)} golden"
            )
            continue
        for expected, got in zip(golden_runs, runs):
            label = expected.get("label", "?")
            for field in sorted(set(expected) | set(got)):
                if expected.get(field) != got.get(field):
                    problems.append(
                        f"{variant}/{label}.{field}: "
                        f"golden={expected.get(field)!r} got={got.get(field)!r}"
                    )
    return problems


def default_golden_path() -> Path:
    return (
        Path(__file__).resolve().parents[3]
        / "tests"
        / "integration"
        / "golden_plan_equivalence.json"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.slider.equivalence",
        description="Per-variant plan-vs-legacy equivalence report.",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--golden",
        type=Path,
        default=None,
        help="golden records to diff against (default: the checked-in seed "
        "records, when present)",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite the golden file from the current code path",
    )
    args = parser.parse_args(argv)

    current = collect()
    golden_path = args.golden or default_golden_path()
    report: dict[str, Any] = {"scenario": "plan-vs-legacy", "runs": current}

    if args.update_golden:
        golden_path.write_text(json.dumps(current, indent=2, sort_keys=True))
        print(f"golden records written to {golden_path}")
        problems: list[str] = []
    elif golden_path.exists():
        golden = json.loads(golden_path.read_text())
        problems = diff_against(golden, current)
        report["golden"] = str(golden_path)
        report["equivalent"] = not problems
        report["mismatches"] = problems
    else:
        problems = []
        report["equivalent"] = None
        report["mismatches"] = []
        print(f"note: no golden records at {golden_path}; reporting only")

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {args.out}")

    for problem in problems:
        print(f"MISMATCH {problem}")
    ok = not problems
    total = sum(len(runs) for runs in current.values())
    print(
        f"{len(current)} variants, {total} runs: "
        + ("equivalent" if ok else f"{len(problems)} mismatches")
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())

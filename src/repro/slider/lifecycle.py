"""Cross-run lifecycle: failure healing, garbage collection, verification.

The :class:`LifecycleManager` owns everything that happens *between* a
Slider's runs: reviving chaos-crashed machines, reacting to worker
failures (§6), dropping memoized state the window can no longer use,
measuring retained space (Figure 13), and checking the core invariant —
incremental outputs always equal a from-scratch batch run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import ReproError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - type-only facade reference
    from repro.slider.system import Slider


class LifecycleManager:
    """Maintains a Slider's cross-run state (storage, failures, GC)."""

    def __init__(self, engine: "Slider") -> None:
        self.engine = engine

    # -- failure handling ----------------------------------------------------

    def heal_chaos(self) -> None:
        """Revive chaos-crashed machines before the next run when the
        schedule heals (mirrors FaultInjector's ``heal``)."""
        engine = self.engine
        if not engine.chaos_downed:
            return
        if engine.chaos is None or getattr(engine.chaos, "heal", True):
            for machine_id in engine.chaos_downed:
                if not engine.cluster.machine(machine_id).alive:
                    engine.cluster.revive(machine_id)
        engine.chaos_downed = []

    def reset_degradation(self) -> int:
        """Re-arm degraded memo tables at the start of a fresh run.

        A backing-store failure flips a table into local-only mode for
        the rest of its run; a new run should try the backing again (it
        may have been repaired or re-replicated in between).  Returns
        the number of tables that were actually reset; each reset emits
        a ``memo.degraded_reset`` telemetry instant.
        """
        return sum(
            1 for tree in self.engine.trees if tree.memo.reset_degraded()
        )

    def on_chaos_crash(self, machine_id: int, when: float) -> None:
        """The machine physically died: its RAM (cache shard) is gone and
        the trees' process-local memo views can no longer be trusted."""
        engine = self.engine
        engine.chaos_downed.append(machine_id)
        if engine.cache is not None:
            engine.cache.on_machine_failure(machine_id)
        for tree in engine.trees:
            tree.memo.entries.clear()

    def on_chaos_detect(self, machine_id: int, when: float) -> None:
        """The master noticed the crash: re-replicate what lost a copy."""
        engine = self.engine
        if engine.blocks is not None:
            engine.blocks.on_machine_failure(machine_id)
        if engine.cache is not None:
            engine.cache.repair()

    def on_machine_failure(self, machine_id: int) -> int:
        """React to a worker crash (§6).

        The crashed machine's share of the in-memory distributed cache is
        lost; the block store re-replicates its blocks; and the trees'
        process-local memo views are invalidated, so subsequent lookups go
        through the shim I/O layer (replicas when the memory copy is
        gone).  Returns the number of in-memory cache objects lost.
        """
        engine = self.engine
        if engine.cluster is None:
            raise SchedulingError(
                f"on_machine_failure({machine_id}): this Slider runs "
                "without a cluster — construct it with Slider(..., "
                "cluster=Cluster(...)) to simulate machine failures"
            )
        engine.cluster.machine(machine_id)  # raises on unknown ids
        lost = 0
        if engine.cache is not None:
            lost = engine.cache.on_machine_failure(machine_id)
        if engine.blocks is not None:
            engine.blocks.on_machine_failure(machine_id)
        for tree in engine.trees:
            tree.memo.entries.clear()
        return lost

    # -- corruption injection and repair -------------------------------------

    def inject_corruption(self) -> dict[str, float]:
        """Inject this run's scheduled corruption and repair it eagerly.

        Called inside the window-update span, before the run's plan opens:
        the repair recomputes land in the run's phase delta, so corruption
        costs work but never changes outputs.  Merges repair stats into
        ``engine.last_recovery`` and returns them.
        """
        engine = self.engine
        schedule = None
        if engine.chaos is not None:
            schedule = engine.chaos.for_run(engine.run_index)
        if schedule is None or not getattr(schedule, "corruptions", None):
            return {}
        from repro.recovery.repair import inject_and_repair

        stats = inject_and_repair(engine, schedule)
        for key, value in stats.items():
            engine.last_recovery[key] = (
                engine.last_recovery.get(key, 0.0) + value
            )
        return stats

    # -- garbage collection and space ----------------------------------------

    def collect_garbage(self) -> int:
        """Drop memoized state that the current window can no longer use."""
        engine = self.engine
        live_split_uids = {split.uid for split in engine.window}
        dead = [uid for uid in engine.map_memo if uid not in live_split_uids]
        for uid in dead:
            del engine.map_memo[uid]
            if engine.blocks is not None:
                engine.blocks.drop_split(uid)
        dropped = len(dead)
        for tree in engine.trees:
            live = getattr(tree, "live_memo_uids", None)
            if live is not None:
                dropped += tree.memo.retain_only(live())
        if engine.gc is not None and engine.cache is not None:
            # The distributed cache mirrors tree memo tables; retain union.
            live_uids: set[int] = set()
            for tree in engine.trees:
                live = getattr(tree, "live_memo_uids", None)
                if live is not None:
                    live_uids |= live()
                else:
                    live_uids |= set(tree.memo.entries)
            engine.gc.collect(live_uids)
        return dropped

    def space(self) -> float:
        """Memoized state retained across runs (Figure 13's space metric)."""
        engine = self.engine
        map_space = sum(
            sum(len(p) for p in partitions)
            for partitions in engine.map_memo.values()
        )
        tree_space = sum(tree.memo.space() for tree in engine.trees)
        cache_space = 0.0
        for tree in engine.trees:
            cache = getattr(tree, "_cache", None)
            if isinstance(cache, dict):
                cache_space += sum(len(p) for p in cache.values())
        return float(map_space) + tree_space + cache_space

    # -- output verification --------------------------------------------------

    def current_outputs(self) -> dict[Any, Any]:
        """Re-derive outputs from current roots without charging work."""
        engine = self.engine
        outputs: dict[Any, Any] = {}
        for tree in engine.trees:
            for key, value in tree.root().items():
                outputs[key] = engine.job.reduce_fn(key, value)
        return outputs

    def verify_outputs(self, outputs: dict[Any, Any] | None = None) -> int:
        """Invariant check: outputs equal a from-scratch batch run.

        Chaos only perturbs the *time* simulation and the storage layers;
        the incremental computation must still produce exactly what a
        fault-free batch execution over the current window produces.
        Raises :class:`~repro.common.errors.ReproError` on any
        divergence; returns the number of keys checked.
        """
        from repro.mapreduce.runtime import BatchRuntime

        engine = self.engine
        expected = BatchRuntime(engine.job).run(list(engine.window)).outputs
        actual = outputs if outputs is not None else self.current_outputs()
        if actual != expected:
            missing = sorted(
                str(k) for k in expected.keys() - actual.keys()
            )[:5]
            extra = sorted(str(k) for k in actual.keys() - expected.keys())[:5]
            wrong = sorted(
                str(k)
                for k in expected.keys() & actual.keys()
                if expected[k] != actual[k]
            )[:5]
            raise ReproError(
                "incremental outputs diverged from the batch run: "
                f"missing={missing} extra={extra} wrong={wrong}"
            )
        return len(expected)

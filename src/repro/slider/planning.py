"""Run planning: the cache-aware front end over plan assembly.

The :class:`RunPlanner` drives one window update's planning passes.  It
owns no cross-run state — that lives on the :class:`~repro.slider.system.
Slider` facade — and it never computes a value itself: every step it (or
a tree it drives) assembles is emitted into the run's
:class:`~repro.core.plan.Plan` and resolved by the engine's shared
:class:`~repro.core.execute.PlanExecutor`.

Since the plan-compile layer, the planner is also the plan cache's front
end: :meth:`RunPlanner.begin_run` keys the upcoming advance by (config
fingerprint, job identity, window motion, per-tree structure key) and on
a hit opens the executor in *replay* mode — trees still drive execution,
but step emission (the replanning work) is skipped and fused combines
dispatch through the batch kernels.  On a miss the freshly planned run is
compiled and stored by :meth:`RunPlanner.finish_run`.  Chaos bypasses the
cache, and the data-dependent variants (randomized, strawman) never enter
it — their ``plan_structure_key`` is ``None``.

* **Map plan** — one ``map`` step per split in the update; the split uid
  is the step's plan-level cache edge.  Execution resolves it against the
  engine's map memo: a hit is a ``memo_read`` node (the split still in
  the window never re-runs its Map function), a miss runs the Map task
  and records ``map`` + ``shuffle`` nodes.
* **Tree plan** — each reducer's contraction tree plans the combines its
  delta needs, inside that reducer's attribution scope.
* **Reduce plan** — one ``reduce`` step per reducer; execution applies
  per-key change propagation (Algorithm 1), reducing changed keys and
  serving unchanged ones from the reduce memo.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

import dataclasses

from repro.common.errors import CombinerContractError
from repro.core.base import ContractionTree
from repro.core.compile import CompiledPlan, compile_plan
from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.memo import MemoTable
from repro.core.partition import Partition
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.mapreduce.shuffle import run_map_task
from repro.mapreduce.types import Split
from repro.metrics import Phase
from repro.telemetry import SpanKind

if TYPE_CHECKING:  # pragma: no cover - type-only facade reference
    from repro.slider.system import Slider


class RunPlanner:
    """Assembles and drives one run's plan against the engine's executor."""

    def __init__(self, engine: "Slider") -> None:
        self.engine = engine
        #: Key the in-flight run's fresh plan will be stored under (None
        #: when the run is uncacheable, bypassed, or replaying a hit).
        self._pending_key: tuple | None = None

    # -- the plan-cache front end -------------------------------------------

    def begin_run(
        self, label: str, added: Sequence[Split], removed: int
    ) -> CompiledPlan | None:
        """Open an advance on the executor, replaying a cached plan if the
        motion key hits.  Must be called *before* any tree state mutates —
        the key captures the pre-advance structure."""
        engine = self.engine
        key = self._plan_key(added, removed)
        compiled = None
        if key is not None:
            compiled = engine.plan_cache.lookup(key)
            if compiled is not None:
                engine.telemetry.count("plan_cache.hits")
                engine.telemetry.count(
                    "plan_cache.steps_replayed", len(compiled)
                )
            else:
                engine.telemetry.count("plan_cache.misses")
        self._pending_key = key if compiled is None else None
        engine.executor.begin_run(label, compiled=compiled)
        return compiled

    def finish_run(self, plan) -> CompiledPlan | None:
        """Compile and store the run planned fresh under the pending key."""
        engine = self.engine
        key, self._pending_key = self._pending_key, None
        if key is None:
            return None
        with engine.telemetry.span("compile", SpanKind.PHASE):
            compiled = compile_plan(
                plan,
                engine.job.combiner,
                fusion=engine.config.plan_fusion,
            )
            engine.plan_cache.store(key, compiled)
            engine.telemetry.count(
                "compile.fused_groups", len(compiled.fused)
            )
            engine.telemetry.count(
                "compile.batched_steps", compiled.batched_step_count()
            )
        return compiled

    def _plan_key(self, added: Sequence[Split], removed: int) -> tuple | None:
        engine = self.engine
        config = engine.config
        if not config.plan_cache:
            return None
        if self._chaos_active():
            engine.telemetry.count("plan_cache.bypasses")
            engine.plan_cache.stats.bypasses += 1
            return None
        structure = []
        for tree in engine.trees:
            tree_key = tree.plan_structure_key()
            if tree_key is None:
                engine.telemetry.count("plan_cache.uncacheable")
                engine.plan_cache.stats.uncacheable += 1
                return None
            structure.append(tree_key)
        return (
            "advance",
            len(added),
            removed,
            _config_key(config),
            _job_key(engine.job),
            tuple(structure),
        )

    def _chaos_active(self) -> bool:
        """Any fault schedule for this run bypasses the cache: chaos paths
        may branch execution in ways the compiled template cannot see."""
        chaos = self.engine.chaos
        if chaos is None:
            return False
        return chaos.for_run(self.engine.run_index) is not None

    # -- tree assembly -------------------------------------------------------

    def make_trees(self) -> list[ContractionTree]:
        return [
            self.make_tree(reducer)
            for reducer in range(self.engine.job.num_reducers)
        ]

    def make_tree(self, reducer: int = 0) -> ContractionTree:
        engine = self.engine
        memo = MemoTable(
            entries=engine.backend.tree_store(engine, reducer),
            backing=engine.cache,
            telemetry=engine.telemetry,
            verify_mode=engine.config.memo_verify,
            capacity=engine.config.memo_budget,
        )
        common = dict(
            meter=engine.meter,
            memo=memo,
            combine_cost_factor=engine.job.costs.combine_cost_factor,
            memo_read_cost=engine.job.costs.memo_read_cost_per_key,
            memo_write_cost=engine.job.costs.memo_write_cost_per_key,
            executor=engine.executor,
        )
        variant = engine.config.tree_variant()
        try:
            return self._construct_tree(variant, common)
        except CombinerContractError as exc:
            raise CombinerContractError(
                f"job {engine.job.name!r}: {exc} "
                f"(tree variant {variant!r})"
            ) from exc

    def _construct_tree(self, variant: str, common: dict) -> ContractionTree:
        engine = self.engine
        if variant == "folding":
            return FoldingTree(
                engine.job.combiner,
                rebuild_factor=engine.config.rebuild_factor,
                **common,
            )
        if variant == "randomized":
            return RandomizedFoldingTree(
                engine.job.combiner, seed=engine.config.seed, **common
            )
        if variant == "rotating":
            return RotatingTree(
                engine.job.combiner,
                bucket_size=engine.config.bucket_size,
                split_mode=engine.config.split_mode,
                **common,
            )
        if variant == "coalescing":
            return CoalescingTree(
                engine.job.combiner, split_mode=engine.config.split_mode, **common
            )
        if variant == "strawman":
            return StrawmanTree(engine.job.combiner, **common)
        raise ValueError(f"unknown tree variant {variant!r}")

    # -- map plan ------------------------------------------------------------

    def run_maps(  # analysis: charge-in-caller-span (map phase span)
        self, splits: Sequence[Split]
    ) -> int:
        """Plan and resolve the Map step of every split.

        Returns the number of steps served by the map memo; per-split
        resolved costs accumulate on the executor
        (:meth:`~repro.core.execute.PlanExecutor.record_map_cost`).
        """
        engine = self.engine
        executor = engine.executor
        recorder = executor.recorder
        meter = engine.meter
        if engine.blocks is not None:
            engine.blocks.store_all(splits)
        reused = sum(1 for s in splits if s.uid in engine.map_memo)
        for split in splits:
            executor.plan_step(
                "map",
                label=f"map:{split.uid:#x}",
                phase=Phase.MAP,
                n_inputs=1,
                memo_uid=split.uid,
            )
            if split.uid in engine.map_memo:
                read_cost = engine.job.costs.memo_read_cost_per_key * max(
                    1, len(split)
                )
                meter.charge(Phase.MEMO_READ, read_cost)
                recorder.map_reuse(
                    split.uid, engine.map_memo[split.uid], cost=read_cost
                )
                executor.record_map_cost(split.uid, 0.0)
                continue
            before = meter.total()
            map_before = meter.by_phase.get(Phase.MAP, 0.0)
            shuffle_before = meter.by_phase.get(Phase.SHUFFLE, 0.0)
            engine.map_memo[split.uid] = run_map_task(
                engine.job,
                split.records,
                engine.partitioner,
                meter,
                label=f"map:{split.uid:#x}",
                poison=executor.poison,
            )
            executor.record_map_cost(split.uid, meter.total() - before)
            recorder.map_task(
                split.uid,
                engine.map_memo[split.uid],
                map_cost=meter.by_phase.get(Phase.MAP, 0.0) - map_before,
                shuffle_cost=meter.by_phase.get(Phase.SHUFFLE, 0.0)
                - shuffle_before,
            )
        return reused

    def reducer_leaves(
        self, splits: Sequence[Split]
    ) -> list[list[Partition]]:
        engine = self.engine
        per_reducer: list[list[Partition]] = [
            [] for _ in range(engine.job.num_reducers)
        ]
        for split in splits:
            outputs = engine.map_memo[split.uid]
            for reducer_index, partition in enumerate(outputs):
                per_reducer[reducer_index].append(partition)
        return per_reducer

    # -- tree plan -----------------------------------------------------------

    def advance_trees(
        self, step: Callable[[int, ContractionTree], Partition]
    ) -> list[Partition]:
        """Run ``step`` on every tree inside its reducer attribution scope
        (the executor measures per-reducer work for the wave time model's
        reduce-task imbalance)."""
        engine = self.engine
        roots = []
        for reducer_index, tree in enumerate(engine.trees):
            with engine.telemetry.span(
                f"reducer:{reducer_index}", SpanKind.TASK, reducer=reducer_index
            ):
                with engine.executor.reducer_scope(reducer_index):
                    roots.append(step(reducer_index, tree))
        return roots

    # -- reduce plan ---------------------------------------------------------

    def reduce_all(  # analysis: charge-in-caller-span (reduce phase span)
        self, roots: list[Partition]
    ) -> tuple[dict[Any, Any], frozenset, frozenset]:
        """Plan one ``reduce`` step per reducer and resolve it per key.

        Change propagation is per-key (Algorithm 1): a key whose combined
        value did not change between runs keeps its memoized Reduce output
        at only a memo-read cost; changed and new keys pay the full Reduce
        cost.  Returns ``(outputs, changed_keys, removed_keys)``.
        """
        engine = self.engine
        executor = engine.executor
        recorder = executor.recorder
        meter = engine.meter
        outputs: dict[Any, Any] = {}
        read_cost = engine.job.costs.memo_read_cost_per_key
        reduce_cost = engine.job.costs.reduce_cost_per_key
        changed_keys: set[Any] = set()
        removed_keys: set[Any] = set()
        for reducer_index, root in enumerate(roots):
            executor.plan_step(
                "reduce",
                label=f"reduce:{reducer_index}",
                phase=Phase.REDUCE,
                n_inputs=1,
                reducer=reducer_index,
            )
            with executor.reducer_scope(reducer_index):
                memo = engine.reduce_memo[reducer_index]
                fresh: dict[Any, tuple[Any, Any]] = {}
                changed = 0
                unchanged = 0
                for key, value in root.items():
                    cached = memo.get(key)
                    if cached is not None and cached[0] == value:
                        output = cached[1]
                        unchanged += 1
                    else:
                        output = engine.job.reduce_fn(key, value)
                        changed += 1
                        changed_keys.add(key)
                        recorder.reduce_key(root, key, cost=reduce_cost)
                    fresh[key] = (value, output)
                    outputs[key] = output
                removed_keys.update(key for key in memo if key not in fresh)
                engine.reduce_memo[reducer_index] = fresh
                if changed:
                    meter.charge(Phase.REDUCE, changed * reduce_cost)
                if unchanged:
                    meter.charge(Phase.MEMO_READ, unchanged * read_cost)
                    recorder.reduce_reuse(
                        root, unchanged, cost=unchanged * read_cost
                    )
        return outputs, frozenset(changed_keys), frozenset(removed_keys)


def _config_key(config) -> tuple:
    """A stable fingerprint over *every* config field: any SliderConfig
    change must miss the plan cache, even fields that happen not to steer
    planning today."""
    return tuple(
        (field.name, repr(getattr(config, field.name)))
        for field in dataclasses.fields(config)
    )


def _job_key(job) -> tuple:
    """Job identity for the plan-cache key: a different job (name, fan-out,
    cost model, or combiner type) never shares compiled plans."""
    return (
        job.name,
        job.num_reducers,
        type(job.combiner).__qualname__,
        repr(job.costs),
    )

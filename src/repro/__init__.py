"""repro — Slider: incremental sliding window analytics.

A from-scratch reproduction of *Slider* (Bhatotia, Acar, Junqueira,
Rodrigues — Middleware 2014): **self-adjusting contraction trees** that
transparently incrementalize sliding-window data-parallel computations,
together with the substrates the paper builds on — a Hadoop-like MapReduce
engine, a simulated cluster with memoization-aware scheduling and a
fault-tolerant distributed cache, and a Pig-like query compiler.

Quickstart::

    from repro import MapReduceJob, Slider, SumCombiner, WindowMode, make_splits

    job = MapReduceJob(
        name="wordcount",
        map_fn=lambda line: [(word, 1) for word in line.split()],
        combiner=SumCombiner(),
    )
    slider = Slider(job, mode=WindowMode.VARIABLE)
    result = slider.initial_run(make_splits(lines, split_size=100))
    result = slider.advance(added=new_splits, removed=2)   # incremental!
    print(result.outputs, result.report.work)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every table and figure in the paper's evaluation.
"""

from repro.core import (
    CoalescingTree,
    ContractionTree,
    FoldingTree,
    Partition,
    RandomizedFoldingTree,
    RotatingTree,
    StrawmanTree,
)
from repro.mapreduce import (
    BatchRuntime,
    Combiner,
    CountCombiner,
    KSmallestCombiner,
    MapReduceJob,
    MaxCombiner,
    MeanCombiner,
    MinCombiner,
    SetUnionCombiner,
    Split,
    SumCombiner,
    TopKCombiner,
    VectorSumCombiner,
    make_splits,
)
from repro.metrics import Phase, RunReport, Speedup, WorkMeter
from repro.slider import Slider, SliderConfig, SliderResult, VanillaRunner, WindowMode

__version__ = "1.0.0"

__all__ = [
    "CoalescingTree",
    "ContractionTree",
    "FoldingTree",
    "Partition",
    "RandomizedFoldingTree",
    "RotatingTree",
    "StrawmanTree",
    "BatchRuntime",
    "Combiner",
    "CountCombiner",
    "KSmallestCombiner",
    "MapReduceJob",
    "MaxCombiner",
    "MeanCombiner",
    "MinCombiner",
    "SetUnionCombiner",
    "Split",
    "SumCombiner",
    "TopKCombiner",
    "VectorSumCombiner",
    "make_splits",
    "Phase",
    "RunReport",
    "Speedup",
    "WorkMeter",
    "Slider",
    "SliderConfig",
    "SliderResult",
    "VanillaRunner",
    "WindowMode",
]

"""Matrix: the word co-occurrence matrix micro-benchmark.

Emits a count for every ordered pair of words co-occurring within a sliding
intra-line context window.  Its key space is quadratic in the vocabulary, so
it is the most shuffle- and memo-heavy of the micro-benchmarks (the paper's
highest space overhead, Figure 13c).
"""

from __future__ import annotations

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import CostModel, MapReduceJob

#: Words on each side considered part of a word's context.
CONTEXT = 2


def _map_cooccurrence(line: str):
    words = line.split()
    for i, word in enumerate(words):
        for j in range(max(0, i - CONTEXT), min(len(words), i + CONTEXT + 1)):
            if i != j:
                yield ((word, words[j]), 1)


def matrix_job(num_reducers: int = 4) -> MapReduceJob:
    """Co-occurrence matrix over text lines."""
    return MapReduceJob(
        name="matrix",
        map_fn=_map_cooccurrence,
        combiner=SumCombiner(),
        num_reducers=num_reducers,
        costs=CostModel(
            map_cost_per_record=2.0,
            combine_cost_factor=1.0,
            reduce_cost_per_key=1.0,
        ),
    )

"""K-Means: one clustering assignment+accumulate iteration as MapReduce.

Map assigns each point to its nearest centroid (a distance computation over
all K centroids in 50 dimensions — the compute-intensive part); the combiner
accumulates per-centroid (count, vector-sum); Reduce produces new centroids.
The paper runs this as its compute-intensive micro-benchmark: ~98 % of work
lands in the Map phase (Figure 9).
"""

from __future__ import annotations

import math

from repro.mapreduce.combiners import VectorSumCombiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.types import Split, make_splits

Point = tuple[float, ...]


def _nearest_centroid(point: Point, centroids: list[Point]) -> int:
    best_index = 0
    best_distance = math.inf
    for index, center in enumerate(centroids):
        distance = sum((a - b) ** 2 for a, b in zip(point, center))
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return best_index


def kmeans_job(
    centroids: list[Point], num_reducers: int = 4, dimensions: int = 50
) -> MapReduceJob:
    """One K-Means iteration against fixed ``centroids``."""
    if not centroids:
        raise ValueError("kmeans needs at least one centroid")
    centroids = [tuple(c) for c in centroids]

    def map_assign(point: Point):
        yield (_nearest_centroid(point, centroids), (1, tuple(point)))

    def reduce_centroid(key: int, value: tuple) -> Point:
        count, total = value
        if count == 0:
            return centroids[key]
        return tuple(x / count for x in total)

    return MapReduceJob(
        name="kmeans",
        map_fn=map_assign,
        combiner=VectorSumCombiner(),
        reduce_fn=reduce_centroid,
        num_reducers=num_reducers,
        # Distance evaluation over K centroids x D dims dominates: a large
        # per-record map cost makes this the compute-intensive class.
        costs=CostModel(
            map_cost_per_record=float(len(centroids) * dimensions) / 10.0,
            combine_cost_factor=0.5,
            reduce_cost_per_key=2.0,
        ),
    )


def make_point_splits(
    points: list[Point], points_per_split: int = 50
) -> list[Split]:
    return make_splits(points, split_size=points_per_split, label_prefix="pts")

"""Glasnost server-distance monitoring (case study §8.2, fixed-width).

For each measurement server, computes the median over users of the minimum
RTT of their test runs — a proxy for how close the server is to the users
directed at it.  Exact medians are not associative; following standard
data-parallel practice the combiner maintains a bounded RTT histogram
(0.5 ms bins), from which Reduce extracts the median.  The window is the
most recent three months, sliding by one month (Table 3).
"""

from __future__ import annotations

from repro.datagen.glasnost import TestRun
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.types import Split, make_splits

BIN_MS = 0.5

# Test-run records flow as tuples: (server, host, month, rtts_ms).
RunRecord = tuple


class HistogramCombiner(Combiner[tuple]):
    """Merges per-server RTT histograms: tuples of (bin, count) pairs."""

    def merge(self, key, values):
        merged: dict[int, int] = {}
        for histogram in values:
            for bin_index, count in histogram:
                merged[bin_index] = merged.get(bin_index, 0) + count
        return tuple(sorted(merged.items()))

    def value_size(self, value) -> float:
        return max(1.0, float(len(value)))

    def law_leaves(self):
        """Leaf-value strategy for the law harness: one run's histogram."""
        from hypothesis import strategies as st

        return st.integers(0, 200).map(lambda bin_index: ((bin_index, 1),))


def _map_test_run(record: RunRecord):
    server, _host, _month, rtts_ms = record
    min_rtt = min(rtts_ms)
    bin_index = int(min_rtt / BIN_MS)
    yield (server, ((bin_index, 1),))


def median_from_histogram(histogram: tuple) -> float:
    """The median RTT (bin midpoint) of a (bin, count) histogram."""
    total = sum(count for _bin, count in histogram)
    if total == 0:
        return 0.0
    middle = (total + 1) // 2
    seen = 0
    for bin_index, count in histogram:
        seen += count
        if seen >= middle:
            return (bin_index + 0.5) * BIN_MS
    return 0.0


def glasnost_job(num_reducers: int = 2) -> MapReduceJob:
    """Median min-RTT per measurement server."""
    return MapReduceJob(
        name="glasnost",
        map_fn=_map_test_run,
        combiner=HistogramCombiner(),
        reduce_fn=lambda server, histogram: median_from_histogram(histogram),
        num_reducers=num_reducers,
        # Each record is a packet trace: the Map side parses ~20 packets to
        # extract the minimum RTT, so per-record map cost dominates — the
        # case study's gains come largely from Map reuse (§8.2).
        costs=CostModel(
            map_cost_per_record=12.0,
            combine_cost_factor=1.0,
            reduce_cost_per_key=1.0,
        ),
    )


def make_glasnost_splits(runs: list[TestRun], runs_per_split: int = 250) -> list[Split]:
    records = [run.as_record() for run in runs]
    return make_splits(records, split_size=runs_per_split, label_prefix="pcap")

"""KNN: k-nearest-neighbours over a set of fixed query points.

Map computes, for every input point, its distance to each query point and
emits a single-candidate set; the combiner keeps the k smallest candidates
per query.  Compute-intensive like K-Means: per-record work scales with the
number of queries and the dimensionality.
"""

from __future__ import annotations

import math

from repro.mapreduce.combiners import KSmallestCombiner
from repro.mapreduce.job import CostModel, MapReduceJob

Point = tuple[float, ...]


def knn_job(
    queries: list[Point],
    k: int = 5,
    num_reducers: int = 4,
    dimensions: int = 50,
) -> MapReduceJob:
    """Find the ``k`` nearest window points to each query point."""
    if not queries:
        raise ValueError("knn needs at least one query point")
    queries = [tuple(q) for q in queries]

    def map_distances(point: Point):
        for query_index, query in enumerate(queries):
            distance = math.sqrt(
                sum((a - b) ** 2 for a, b in zip(point, query))
            )
            yield (query_index, ((round(distance, 9), tuple(point)),))

    def reduce_neighbours(query_index: int, candidates: tuple):
        return tuple(point for _distance, point in candidates)

    return MapReduceJob(
        name="knn",
        map_fn=map_distances,
        combiner=KSmallestCombiner(k=k),
        reduce_fn=reduce_neighbours,
        num_reducers=num_reducers,
        costs=CostModel(
            map_cost_per_record=float(len(queries) * dimensions) / 10.0,
            combine_cost_factor=0.5,
            reduce_cost_per_key=2.0,
        ),
    )

"""Twitter information-propagation trees (case study §8.1, append-only).

For every URL, builds a propagation tree following Krackhardt's hierarchical
model: a directed edge from each spreader of the URL to each receiver who
reposted it after "following" the spreader.  The per-URL combined value is
the edge set plus spreader statistics, which is associative under union —
so Slider incrementalizes it with a coalescing tree as new tweet intervals
are appended.
"""

from __future__ import annotations

from repro.datagen.twitter import Tweet
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.types import Split, make_splits

# Tweet records flow as tuples: (user, url, timestamp, source_user).
TweetRecord = tuple


class PropagationCombiner(Combiner[tuple]):
    """Merges per-URL propagation fragments.

    A fragment is ``(edges, posts)``: a frozenset of (spreader, receiver)
    edges and the number of posts of the URL.  Union/sum is associative and
    commutative.
    """

    def merge(self, key, values):
        edges: set = set()
        posts = 0
        for fragment_edges, fragment_posts in values:
            edges.update(fragment_edges)
            posts += fragment_posts
        return (frozenset(edges), posts)

    def value_size(self, value) -> float:
        return max(1.0, float(len(value[0])))

    def fingerprint(self, value):
        return (tuple(sorted(value[0])), value[1])

    def law_leaves(self):
        """Leaf-value strategy for the law harness: one tweet's fragment."""
        from hypothesis import strategies as st

        edge = st.tuples(st.integers(0, 50), st.integers(0, 50))
        return st.tuples(st.frozensets(edge, max_size=2), st.just(1))


def _map_tweet(record: TweetRecord):
    user, url, _timestamp, source_user = record
    if source_user >= 0:
        edges = frozenset({(source_user, user)})
    else:
        edges = frozenset()
    yield (url, (edges, 1))


def _reduce_tree(url: int, value: tuple) -> dict:
    """Summarize one URL's propagation tree."""
    edges, posts = value
    spreaders = {spreader for spreader, _ in edges}
    receivers = {receiver for _, receiver in edges}
    roots = spreaders - receivers
    depth = _tree_depth(edges, roots)
    return {
        "posts": posts,
        "edges": len(edges),
        "spreaders": len(spreaders | receivers),
        "roots": len(roots),
        "depth": depth,
    }


def _tree_depth(edges: frozenset, roots: set) -> int:
    if not edges:
        return 0
    children: dict[int, list[int]] = {}
    for spreader, receiver in edges:
        children.setdefault(spreader, []).append(receiver)
    depth = 0
    frontier = list(roots)
    seen = set(frontier)
    while frontier and depth < 64:
        next_frontier = []
        for node in frontier:
            for child in children.get(node, []):
                if child not in seen:
                    seen.add(child)
                    next_frontier.append(child)
        if not next_frontier:
            break
        frontier = next_frontier
        depth += 1
    return depth


def propagation_tree_job(num_reducers: int = 4) -> MapReduceJob:
    """Per-URL information-propagation tree construction."""
    return MapReduceJob(
        name="twitter-propagation",
        map_fn=_map_tweet,
        combiner=PropagationCombiner(),
        reduce_fn=_reduce_tree,
        num_reducers=num_reducers,
        costs=CostModel(
            map_cost_per_record=1.0,
            combine_cost_factor=1.0,
            reduce_cost_per_key=1.5,
        ),
    )


def make_tweet_splits(tweets: list[Tweet], tweets_per_split: int = 100) -> list[Split]:
    records = [t.as_record() for t in tweets]
    return make_splits(records, split_size=tweets_per_split, label_prefix="tweets")

"""The paper's applications, written as ordinary (non-incremental) jobs.

Micro-benchmarks (§7.1): HCT (histogram), Matrix (co-occurrence), subStr
(frequent substrings) over text; K-Means and KNN over 50-d unit-cube points.
Case studies (§8): the Twitter information-propagation tree, Glasnost
server-distance monitoring, and NetSession log auditing.

None of these jobs contains any incremental logic — Slider incrementalizes
them transparently, which is the paper's central claim.
"""

from repro.apps.histogram import histogram_job, make_text_splits
from repro.apps.kmeans import kmeans_job, make_point_splits
from repro.apps.knn import knn_job
from repro.apps.matrix import matrix_job
from repro.apps.substr import substr_job
from repro.apps.glasnost import glasnost_job, make_glasnost_splits
from repro.apps.netsession import netsession_audit_job, make_log_splits
from repro.apps.twitter import propagation_tree_job, make_tweet_splits
from repro.apps.registry import APP_REGISTRY, AppSpec, micro_benchmark_apps

__all__ = [
    "histogram_job",
    "make_text_splits",
    "kmeans_job",
    "make_point_splits",
    "knn_job",
    "matrix_job",
    "substr_job",
    "glasnost_job",
    "make_glasnost_splits",
    "netsession_audit_job",
    "make_log_splits",
    "propagation_tree_job",
    "make_tweet_splits",
    "APP_REGISTRY",
    "AppSpec",
    "micro_benchmark_apps",
]

"""subStr: the frequent-substring extraction micro-benchmark.

Counts fixed-length character n-grams of every word and reports, per
n-gram-prefix group, the most frequent substrings — a string-heavy,
data-intensive workload.
"""

from __future__ import annotations

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import CostModel, MapReduceJob

NGRAM = 3


def _map_substrings(line: str):
    for word in line.split():
        for start in range(0, max(1, len(word) - NGRAM + 1)):
            gram = word[start : start + NGRAM]
            if gram:
                yield (gram, 1)


def substr_job(num_reducers: int = 4) -> MapReduceJob:
    """Frequent character n-grams over text lines."""
    return MapReduceJob(
        name="substr",
        map_fn=_map_substrings,
        combiner=SumCombiner(),
        # Reduce keeps only frequent substrings; modeled as a filter.
        reduce_fn=lambda gram, count: count,
        num_reducers=num_reducers,
        costs=CostModel(
            map_cost_per_record=1.5,
            combine_cost_factor=1.0,
            reduce_cost_per_key=1.0,
        ),
    )

"""HCT: the histogram-based computation micro-benchmark.

Buckets every word of the corpus by length class and counts occurrences —
a classic data-intensive aggregation with a small key space and heavy
shuffle volume relative to compute.
"""

from __future__ import annotations

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.types import Split, make_splits


def _map_histogram(line: str):
    for word in line.split():
        yield (f"len:{min(len(word), 20)}", 1)
        yield (f"first:{word[0]}", 1)


def histogram_job(num_reducers: int = 4) -> MapReduceJob:
    """Word-shape histogram over text lines."""
    return MapReduceJob(
        name="hct",
        map_fn=_map_histogram,
        combiner=SumCombiner(),
        num_reducers=num_reducers,
        costs=CostModel(
            map_cost_per_record=1.0,
            combine_cost_factor=1.0,
            reduce_cost_per_key=1.0,
        ),
    )


def make_text_splits(lines: list[str], lines_per_split: int = 10) -> list[Split]:
    """Chop corpus lines into splits, as HDFS would chop the input file."""
    return make_splits(lines, split_size=lines_per_split, label_prefix="text")

"""NetSession log auditing (case study §8.3, variable-width).

Audits the tamper-evident logs that hybrid-CDN clients upload: per client,
verifies the hash chain over the window's entries (PeerReview-style) and
accounts the bytes the client claims to have served.  The window covers one
month of logs and slides by one week, but only the clients online in a
given week upload — so the window *size varies* run to run, exercising the
folding tree.
"""

from __future__ import annotations

from repro.common.hashing import stable_hash
from repro.datagen.netsession import LogRecord
from repro.mapreduce.combiners import Combiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.types import Split, make_splits

# Log records flow as tuples:
# (client, week, sequence, bytes_served, peer, prev_authenticator,
#  authenticator).
AuditRecord = tuple


class AuditCombiner(Combiner[tuple]):
    """Merges per-client audit fragments.

    A fragment is ``(entries, bytes_served, chain_ok)`` where ``entries``
    is a tuple of ((week, sequence), link_ok) pairs kept for chain
    verification.  The entry union is associative, but it resolves
    conflicting link verdicts for the same (week, sequence) position
    last-writer-wins, so it is **not** commutative — a fact the law
    harness falsifies if this combiner claims otherwise.  (On real log
    data positions are unique per client, but the algebra must hold on
    every mergeable value.)  The folding tree that the variable-width
    NetSession window uses never reorders leaves, so commutativity is not
    required.
    """

    commutative = False

    def merge(self, key, values):
        entries: dict = {}
        total_bytes = 0
        chain_ok = True
        for fragment_entries, fragment_bytes, fragment_ok in values:
            for position, link_ok in fragment_entries:
                entries[position] = link_ok
            total_bytes += fragment_bytes
            chain_ok = chain_ok and fragment_ok
        return (tuple(sorted(entries.items())), total_bytes, chain_ok)

    def value_size(self, value) -> float:
        return max(1.0, float(len(value[0])))

    def law_leaves(self):
        """Leaf-value strategy for the law harness: one log entry's fragment."""
        from hypothesis import strategies as st

        position = st.tuples(st.integers(0, 5), st.integers(0, 20))
        link_ok = st.booleans()
        return st.tuples(
            st.tuples(st.tuples(position, link_ok)).map(tuple),
            st.integers(0, 10_000),
            link_ok,
        )


def _verify_link(record: AuditRecord) -> bool:
    """Verify one hash-chain link: the authenticator must commit to the
    entry contents and the previous authenticator (PeerReview-style)."""
    client, week, sequence, bytes_served, peer, prev_auth, authenticator = record
    expected = stable_hash((prev_auth, client, week, sequence, bytes_served, peer))
    return expected == authenticator


def _map_log_record(record: AuditRecord):
    client, week, sequence, bytes_served, _peer, _prev, _auth = record
    link_ok = _verify_link(record)
    yield (client, ((((week, sequence), link_ok),), bytes_served, link_ok))


def _reduce_audit(client: int, value: tuple) -> dict:
    entries, total_bytes, chain_ok = value
    return {
        "entries": len(entries),
        "bytes_served": total_bytes,
        "chain_ok": chain_ok and all(ok for _pos, ok in entries),
    }


def netsession_audit_job(num_reducers: int = 4) -> MapReduceJob:
    """Per-client log audit over the current window."""
    return MapReduceJob(
        name="netsession-audit",
        map_fn=_map_log_record,
        combiner=AuditCombiner(),
        reduce_fn=_reduce_audit,
        num_reducers=num_reducers,
        # Verifying a tamper-evident log entry recomputes its hash link —
        # cryptographic per-record Map work dominates the audit (§8.3).
        costs=CostModel(
            map_cost_per_record=8.0,
            combine_cost_factor=1.0,
            reduce_cost_per_key=1.0,
        ),
    )


def make_log_splits(records: list[LogRecord], logs_per_split: int = 200) -> list[Split]:
    tuples = [r.as_record() for r in records]
    return make_splits(tuples, split_size=logs_per_split, label_prefix="log")

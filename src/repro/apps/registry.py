"""A uniform registry of the five micro-benchmark applications.

Benchmarks sweep "all five apps x all three window modes x five deltas";
an :class:`AppSpec` packages, per app, how to build the job and how to
generate a window's worth of input splits, so the harness stays generic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.histogram import histogram_job
from repro.apps.kmeans import kmeans_job
from repro.apps.knn import knn_job
from repro.apps.matrix import matrix_job
from repro.apps.substr import substr_job
from repro.datagen.points import PointGenerator
from repro.datagen.text import TextCorpusGenerator
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split, make_splits


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application: job factory + split generator.

    ``make_splits(count, seed)`` must return ``count`` input splits whose
    contents are deterministic in ``seed`` and disjoint across calls with
    increasing ``offset`` (so appended data is genuinely new).
    """

    name: str
    compute_intensive: bool
    make_job: Callable[[], MapReduceJob]
    make_splits: Callable[[int, int, int], list[Split]]


def _text_split_maker(label: str, lines_per_split: int = 8):
    def make(count: int, seed: int, offset: int = 0) -> list[Split]:
        generator = TextCorpusGenerator(seed=seed, vocabulary_size=2000)
        # Burn the offset region so appended splits carry fresh lines.
        if offset:
            generator.lines(offset * lines_per_split)
        lines = generator.lines(count * lines_per_split)
        return make_splits(
            lines, split_size=lines_per_split, label_prefix=f"{label}{offset}-"
        )

    return make


def _point_split_maker(points_per_split: int = 20):
    def make(count: int, seed: int, offset: int = 0) -> list[Split]:
        generator = PointGenerator(seed=seed, dimensions=50, clusters=8)
        if offset:
            generator.points(offset * points_per_split)
        points = generator.points(count * points_per_split)
        return make_splits(
            points, split_size=points_per_split, label_prefix=f"pts{offset}-"
        )

    return make


def _kmeans_factory() -> MapReduceJob:
    centers = PointGenerator(seed=99, dimensions=50, clusters=8).centers
    return kmeans_job(centroids=centers, num_reducers=4)


def _knn_factory() -> MapReduceJob:
    queries = PointGenerator(seed=101, dimensions=50).points(8)
    return knn_job(queries=queries, k=5, num_reducers=4)


APP_REGISTRY: dict[str, AppSpec] = {
    "hct": AppSpec(
        name="hct",
        compute_intensive=False,
        make_job=histogram_job,
        make_splits=_text_split_maker("hct"),
    ),
    "matrix": AppSpec(
        name="matrix",
        compute_intensive=False,
        make_job=matrix_job,
        make_splits=_text_split_maker("mat"),
    ),
    "substr": AppSpec(
        name="substr",
        compute_intensive=False,
        make_job=substr_job,
        make_splits=_text_split_maker("sub"),
    ),
    "kmeans": AppSpec(
        name="kmeans",
        compute_intensive=True,
        make_job=_kmeans_factory,
        make_splits=_point_split_maker(),
    ),
    "knn": AppSpec(
        name="knn",
        compute_intensive=True,
        make_job=_knn_factory,
        make_splits=_point_split_maker(),
    ),
}


def micro_benchmark_apps() -> list[AppSpec]:
    """The five micro-benchmarks in the paper's reporting order."""
    return [APP_REGISTRY[name] for name in ("kmeans", "hct", "knn", "matrix", "substr")]

"""Per-level work table: observe the asymptotic-analysis bounds directly.

The *Asymptotic Analysis of Self-Adjusting Contraction Trees* report
(PAPERS.md) proves per-level bounds that the flat ``WorkMeter`` could
never witness: charges lost their tree-level structure the moment they
hit ``by_phase``.  The telemetry backbone keeps that structure — tree
variants open a ``TREE_LEVEL`` span around each level's contraction
sweep — and this module aggregates those spans into a compact table:

    level | spans | tasks | work

``tasks`` counts combiner invocations (``TASK`` spans) under each level,
which is the quantity the analysis bounds:

* initial run over ``n`` leaves: level *i* touches at most
  ``ceil(n / 2**i)`` nodes (each level halves the frontier);
* an incremental slide that removes ``r`` leaves at the front and
  appends ``a`` at the back dirties two contiguous runs, so level *i*
  touches at most ``ceil(r / 2**i) + ceil(a / 2**i) + 2`` nodes (each
  contiguous run of *k* dirty nodes has at most ``ceil(k / 2**i) + 1``
  ancestors at level *i*).

Because span work totals are accumulated in charge order (see
:mod:`repro.telemetry.spans`), the ``work`` column is exact, not a
re-derived estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.telemetry.spans import Phase, Span, SpanKind, Telemetry


@dataclass(frozen=True)
class LevelRow:
    """Aggregate of all TREE_LEVEL spans at one level of one tree."""

    level: int
    spans: int
    tasks: int
    work: float
    by_phase: dict[Phase, float] = field(default_factory=dict, compare=False)


def per_level_table(
    root: Telemetry | Span, tree: str | None = None
) -> list[LevelRow]:
    """Aggregate TREE_LEVEL spans under ``root`` into per-level rows.

    ``tree`` filters by the variant tag the tree recorded on its level
    spans (``fold``, ``rft``, ``rot``, ``straw``); ``None`` keeps all.
    """
    if isinstance(root, Telemetry):
        root = root.root
    buckets: dict[int, list[Span]] = {}
    for span in root.iter():
        if span.kind is not SpanKind.TREE_LEVEL:
            continue
        if tree is not None and span.attrs.get("tree") != tree:
            continue
        buckets.setdefault(int(span.attrs.get("level", 0)), []).append(span)

    rows = []
    for level in sorted(buckets):
        spans = buckets[level]
        tasks = sum(
            1
            for s in spans
            for child in s.iter()
            if child.kind is SpanKind.TASK
        )
        by_phase: dict[Phase, float] = {}
        for s in spans:
            for phase, amount in s.work.items():
                by_phase[phase] = by_phase.get(phase, 0.0) + amount
        rows.append(
            LevelRow(
                level=level,
                spans=len(spans),
                tasks=tasks,
                work=sum(by_phase.values()),
                by_phase=by_phase,
            )
        )
    return rows


def format_level_table(rows: list[LevelRow], title: str = "per-level work") -> str:
    """Render rows as a compact fixed-width table for reports."""
    lines = [title, f"{'level':>5} {'spans':>6} {'tasks':>6} {'work':>12}"]
    for row in rows:
        lines.append(
            f"{row.level:>5} {row.spans:>6} {row.tasks:>6} {row.work:>12.3f}"
        )
    total = sum(r.work for r in rows)
    lines.append(f"{'total':>5} {'':>6} {sum(r.tasks for r in rows):>6} {total:>12.3f}")
    return "\n".join(lines)


def check_initial_run_bounds(
    rows: list[LevelRow], leaves: int, trees: int = 1
) -> list[str]:
    """Violations of the initial-run bound; empty list means it holds.

    ``leaves`` is the per-tree leaf count and ``trees`` the number of
    independent contraction trees aggregated into ``rows`` (one per
    reducer) — the per-level bound scales linearly with it.
    """
    violations = []
    for row in rows:
        per_tree = math.ceil(leaves / (2**row.level)) if row.level > 0 else leaves
        bound = per_tree * trees
        if row.tasks > bound:
            violations.append(
                f"level {row.level}: {row.tasks} tasks > bound {bound} "
                f"(n={leaves}, trees={trees})"
            )
    return violations


def check_incremental_bounds(
    rows: list[LevelRow], added: int, removed: int, trees: int = 1
) -> list[str]:
    """Violations of the incremental-slide bound; empty list means ok.

    As with :func:`check_initial_run_bounds`, ``trees`` scales the bound
    when ``rows`` aggregates several independent reducer trees.
    """
    violations = []
    for row in rows:
        if row.level <= 0:
            continue
        scale = 2**row.level
        per_tree = math.ceil(added / scale) + math.ceil(removed / scale) + 2
        bound = per_tree * trees
        if row.tasks > bound:
            violations.append(
                f"level {row.level}: {row.tasks} tasks > bound {bound} "
                f"(added={added}, removed={removed}, trees={trees})"
            )
    return violations

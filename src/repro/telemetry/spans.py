"""The telemetry backbone: one span tree per run, shared by every layer.

The paper's evaluation rests on two measures — *work* (sum of task active
times, §7.1) and *time* (simulated makespan) — which this repo previously
computed in three disconnected subsystems: ``WorkMeter`` phase charges, the
task-graph IR's node costs, and the executor's attempt timeline.  This
module unifies them: every run grows a single hierarchical span tree

    run → window-update → phase → tree-level → task / attempt

and all accounting flows through it.  ``WorkMeter`` survives as a thin
compatibility view over :attr:`Telemetry.by_phase`.

Bit-identity contract
---------------------
The seed accumulated work as ``by_phase[p] = by_phase.get(p, 0) + amount``
in charge-call order.  :meth:`Telemetry.charge` adds each amount to *every*
span on the open-span stack, root first — so the root span's inclusive
``work`` dict is built by exactly the same float additions in exactly the
same order as the seed's flat dict, and every historical figure/table
number is unchanged to the last bit.  Intermediate spans inherit the same
property for their own subtrees, which is what makes the per-level work
table (:mod:`repro.telemetry.worktable`) exact rather than approximate.

Timestamps
----------
Engine spans (map/contraction/reduce, tree levels, combiner tasks) use the
cumulative work counter as a pseudo-clock: a span's duration is the work
charged while it was open.  Cluster spans (executor attempts, replication
events) instead carry simulated-cluster-clock timestamps and are recorded
pre-closed via :meth:`Telemetry.record_span` on their machine's thread
lane.  Both land in the same tree and the same Chrome trace.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


class Phase(enum.Enum):
    """The phase a unit of work is charged to."""

    MAP = "map"
    CONTRACTION = "contraction"
    REDUCE = "reduce"
    SHUFFLE = "shuffle"
    MEMO_READ = "memo_read"
    MEMO_WRITE = "memo_write"
    BACKGROUND = "background"


class SpanKind(enum.Enum):
    """Level of the span hierarchy a span belongs to."""

    RUN = "run"
    WINDOW_UPDATE = "window_update"
    PHASE = "phase"
    TREE_LEVEL = "tree_level"
    TASK = "task"
    ATTEMPT = "attempt"


@dataclass(eq=False)
class Span:
    """One node of the span tree.

    ``work`` is inclusive (this span plus all descendants), ``self_work``
    exclusive; both are keyed by :class:`Phase` and accumulated in charge
    order, never recomputed, so float totals are reproducible.
    """

    name: str
    kind: SpanKind
    start: float
    end: float | None = None
    #: Thread lane for trace export; ``None`` means the engine lane.
    thread: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    self_work: dict[Phase, float] = field(default_factory=dict)
    work: dict[Phase, float] = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        return self.end is None

    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def work_total(self) -> float:
        return sum(self.work.values())

    def iter(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first, pre-order."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable summary of a telemetry tree, for reports and benches."""

    label: str
    by_phase: dict[str, float]
    counters: dict[str, float]
    span_count: int
    unclosed_spans: int
    instant_events: int

    def total(self) -> float:
        return sum(self.by_phase.values())


class Telemetry:
    """Hierarchical span recorder: the single source of accounting truth.

    All mutation goes through four verbs: :meth:`span` (open a scoped
    span), :meth:`record_span` (append a pre-closed span, e.g. an executor
    attempt with cluster-clock timestamps), :meth:`charge` (add work to
    every open span), and :meth:`count`/:meth:`instant` (typed counters
    and point events).
    """

    def __init__(self, label: str = "run") -> None:
        self.root = Span(name=label, kind=SpanKind.RUN, start=0.0)
        self._stack: list[Span] = [self.root]
        #: Monotone counters by name (gauges are the latest sample value).
        self.counters: dict[str, float] = {}
        #: ``(name, ts, value)`` samples, one per count() call, for export.
        self.counter_samples: list[tuple[str, float, float]] = []
        #: Instant events: dicts with name/ts/args.
        self.instants: list[dict[str, Any]] = []
        self._work_cursor = 0.0

    # -- clock -----------------------------------------------------------
    def now(self) -> float:
        """The engine pseudo-clock: cumulative work charged so far."""
        return self._work_cursor

    # -- spans -----------------------------------------------------------
    @property
    def current(self) -> Span:
        return self._stack[-1]

    def open_span(self, name: str, kind: SpanKind, **attrs: Any) -> Span:
        span = Span(name=name, kind=kind, start=self._work_cursor, attrs=attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def close_span(self, span: Span) -> None:
        if self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(top of stack is {self._stack[-1].name!r})"
            )
        self._stack.pop()
        span.end = self._work_cursor

    @contextmanager
    def span(self, name: str, kind: SpanKind = SpanKind.TASK, **attrs: Any):
        """Open a child span of the current span for the ``with`` body."""
        opened = self.open_span(name, kind, **attrs)
        try:
            yield opened
        finally:
            self.close_span(opened)

    def record_span(
        self,
        name: str,
        kind: SpanKind,
        start: float,
        end: float,
        thread: str | None = None,
        **attrs: Any,
    ) -> Span | None:
        """Append an already-closed span with explicit timestamps.

        Used by the cluster layer, whose events carry simulated-clock
        times rather than the engine's work cursor; ``thread`` names the
        trace lane (e.g. ``"m3.s1"`` for machine 3, slot 1).
        """
        span = Span(
            name=name, kind=kind, start=start, end=end, thread=thread, attrs=attrs
        )
        self._stack[-1].children.append(span)
        return span

    def adopt(self, other: "Telemetry", name: str | None = None) -> Span | None:
        """Graft another telemetry's finished tree under the current span.

        Lets a scoped accounting domain (e.g. one ``BatchRuntime.run``,
        which must keep its own fresh meter for bit-identity) contribute
        its spans to a long-lived trace without re-charging its work into
        this tree's totals.
        """
        grafted = other.root
        if grafted.end is None:
            grafted.end = other.now()
        if name is not None:
            grafted.name = name
        self._stack[-1].children.append(grafted)
        return grafted

    # -- accounting ------------------------------------------------------
    def charge(self, phase: Phase, amount: float) -> None:
        """Charge work to every open span, root first.

        The root-first order is load-bearing: it makes the root's
        inclusive totals float-identical to the seed's flat accumulator.
        """
        if amount < 0:
            raise ValueError(f"work must be non-negative, got {amount}")
        for span in self._stack:
            span.work[phase] = span.work.get(phase, 0.0) + amount
        current = self._stack[-1]
        current.self_work[phase] = current.self_work.get(phase, 0.0) + amount
        self._work_cursor += amount

    def absorb_charge(self, phase: Phase, amount: float) -> None:
        """Fold a charge replayed from another telemetry tree into this one.

        Like :meth:`charge` it adds to every open span's inclusive
        ``work`` (root first, preserving the bit-identity contract:
        replaying a worker's charges in their original order reproduces
        the exact float-addition sequence of an in-process run) and
        advances the work cursor — but it does **not** touch the current
        span's ``self_work``.  The grafted worker spans already carry
        that self-work, so absorbing it again would break the invariant
        that a span's inclusive work equals the sum of self-work over
        its subtree.
        """
        if amount < 0:
            raise ValueError(f"work must be non-negative, got {amount}")
        for span in self._stack:
            span.work[phase] = span.work.get(phase, 0.0) + amount
        self._work_cursor += amount

    @property
    def by_phase(self) -> dict[Phase, float]:
        """Inclusive per-phase totals — the seed ``WorkMeter.by_phase``."""
        return self.root.work

    # -- counters and events ---------------------------------------------
    def count(self, name: str, delta: float = 1.0, ts: float | None = None) -> None:
        """Bump a monotone counter and record a sample for trace export."""
        value = self.counters.get(name, 0.0) + delta
        self.counters[name] = value
        self.counter_samples.append(
            (name, self._work_cursor if ts is None else ts, value)
        )

    def gauge(self, name: str, value: float, ts: float | None = None) -> None:
        """Set a gauge to an absolute value (latest sample wins)."""
        self.counters[name] = value
        self.counter_samples.append(
            (name, self._work_cursor if ts is None else ts, value)
        )

    def instant(self, name: str, ts: float | None = None, **args: Any) -> None:
        """Record a point event (crash, detection, re-replication, ...)."""
        self.instants.append(
            {"name": name, "ts": self._work_cursor if ts is None else ts, "args": args}
        )

    # -- introspection ---------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        return self.root.iter()

    def unclosed_spans(self) -> list[Span]:
        """Open spans other than the root (which closes only at export)."""
        return [s for s in self.root.iter() if s.is_open and s is not self.root]

    def span_count(self) -> int:
        return sum(1 for _ in self.root.iter())

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            label=self.root.name,
            by_phase={p.value: v for p, v in self.root.work.items()},
            counters=dict(self.counters),
            span_count=self.span_count(),
            unclosed_spans=len(self.unclosed_spans()),
            instant_events=len(self.instants),
        )

    def reset(self) -> None:
        label = self.root.name
        self.root = Span(name=label, kind=SpanKind.RUN, start=0.0)
        self._stack = [self.root]
        self.counters.clear()
        self.counter_samples.clear()
        self.instants.clear()
        self._work_cursor = 0.0


class _NullSpanContext:
    """Reusable no-op context manager yielding ``None``."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpanContext()


class NullTelemetry(Telemetry):
    """No-op recorder: seed-exact accounting, zero tracing.

    Keeps only the flat root ``work`` dict (the seed ``WorkMeter``
    behaviour); spans, counters, and events are discarded.  Used as the
    baseline in the telemetry-overhead benchmark and as an independent
    reference in the bit-identity equivalence tests.
    """

    def open_span(self, name: str, kind: SpanKind, **attrs: Any) -> Span:
        return self.root

    def close_span(self, span: Span) -> None:
        pass

    def span(self, name: str, kind: SpanKind = SpanKind.TASK, **attrs: Any):
        return _NULL_SPAN

    def record_span(self, *args: Any, **kwargs: Any) -> Span | None:
        return None

    def adopt(self, other: "Telemetry", name: str | None = None) -> Span | None:
        return None

    def charge(self, phase: Phase, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"work must be non-negative, got {amount}")
        work = self.root.work
        work[phase] = work.get(phase, 0.0) + amount
        self._work_cursor += amount

    def count(self, name: str, delta: float = 1.0, ts: float | None = None) -> None:
        pass

    def gauge(self, name: str, value: float, ts: float | None = None) -> None:
        pass

    def instant(self, name: str, ts: float | None = None, **args: Any) -> None:
        pass

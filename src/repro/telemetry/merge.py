"""Cross-process telemetry capture and deterministic merge.

The multi-process execution backend runs each reducer's contraction in a
worker process with its own fresh :class:`~repro.telemetry.Telemetry`.
For the run to stay *bit-identical* to an in-process execution, the
parent must end up with the same span tree, the same per-phase float
totals, and the same counters it would have built itself.  Floats make
this subtle: addition order matters.  The contract here is:

* Workers record through :class:`CaptureTelemetry`, which keeps an
  **ordered event log** (charges, counts, gauges, instants) alongside
  the normal span tree.
* The parent replays each worker's log — in reducer order, inside the
  span that would have enclosed the work in-process — via
  :func:`replay_events`.  Charges go through
  :meth:`~repro.telemetry.Telemetry.absorb_charge`, so every open parent
  span sees the exact float-addition sequence of an in-process run,
  while the worker's own spans (grafted by :func:`graft_spans` with
  their cursor timestamps shifted to the parent clock) keep the
  self-work.
* Counters are pure sums, so :func:`merge_counters` is associative and
  order-independent — the property the cross-process tests pin down.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.telemetry.spans import NullTelemetry, Phase, Span, Telemetry

__all__ = [
    "CaptureTelemetry",
    "graft_spans",
    "merge_counters",
    "replay_events",
]

#: One captured event: ``(verb, *payload)`` — see :class:`CaptureTelemetry`.
TelemetryEvent = tuple


class CaptureTelemetry(Telemetry):
    """A telemetry that additionally logs its events in call order.

    The log is the wire format for shipping a worker's accounting back
    to the parent: replaying it reproduces every float addition in its
    original order, which a post-hoc summary (dict of totals) could not.
    Event shapes::

        ("charge",  Phase, amount)
        ("count",   name, delta)
        ("gauge",   name, value)
        ("instant", name, {args})
    """

    def __init__(self, label: str = "run") -> None:
        super().__init__(label)
        self.events: list[TelemetryEvent] = []

    def charge(self, phase: Phase, amount: float) -> None:
        super().charge(phase, amount)
        self.events.append(("charge", phase, amount))

    def count(self, name: str, delta: float = 1.0, ts: float | None = None) -> None:
        super().count(name, delta, ts)
        self.events.append(("count", name, delta))

    def gauge(self, name: str, value: float, ts: float | None = None) -> None:
        super().gauge(name, value, ts)
        self.events.append(("gauge", name, value))

    def instant(self, name: str, ts: float | None = None, **args: Any) -> None:
        super().instant(name, ts, **args)
        self.events.append(("instant", name, args))


def replay_events(telemetry: Telemetry, events: Iterable[TelemetryEvent]) -> None:
    """Replay a captured event log into ``telemetry`` at its cursor.

    Charges are absorbed (inclusive work + cursor only — the grafted
    worker spans carry the self-work); counts, gauges, and instants go
    through the normal verbs, picking up the parent's work cursor as
    their timestamp.  Because charges and counter bumps replay in their
    original interleaving, those timestamps match what an in-process run
    would have recorded.
    """
    for event in events:
        verb = event[0]
        if verb == "charge":
            telemetry.absorb_charge(event[1], event[2])
        elif verb == "count":
            telemetry.count(event[1], event[2])
        elif verb == "gauge":
            telemetry.gauge(event[1], event[2])
        elif verb == "instant":
            telemetry.instant(event[1], **event[2])
        else:  # pragma: no cover - wire-format guard
            raise ValueError(f"unknown telemetry event verb {verb!r}")


def _shift(span: Span, offset: float) -> None:
    span.start += offset
    if span.end is not None:
        span.end += offset
    for child in span.children:
        _shift(child, offset)


def graft_spans(
    telemetry: Telemetry, spans: Iterable[Span], offset: float
) -> None:
    """Attach worker spans under the current span, shifted to parent time.

    Worker span timestamps are positions on the worker's own work
    cursor, which started at zero; ``offset`` is the parent's cursor
    when the merge began, so after shifting, the grafted spans occupy
    exactly the interval the replayed charges advance the parent cursor
    through — the same coordinates an in-process run would have given
    them.  The spans are adopted in place (the parent owns the
    unpickled copies), not duplicated.

    A null recorder discards span structure by contract, so grafting
    into one is a no-op — the replayed charges already carried the
    accounting totals through :meth:`absorb_charge`.
    """
    if isinstance(telemetry, NullTelemetry):
        return
    parent = telemetry.current
    for span in spans:
        _shift(span, offset)
        parent.children.append(span)


def merge_counters(
    parts: Iterable[Mapping[str, float]],
) -> dict[str, float]:
    """Sum counter dicts; associative and order-independent by construction.

    Integer-valued counters merge exactly; float-valued counters are
    order-independent only up to float associativity, which is why the
    substrate's cross-process counters are all integer counts.
    """
    merged: dict[str, float] = {}
    for part in parts:
        for name, value in part.items():
            merged[name] = merged.get(name, 0) + value
    return merged

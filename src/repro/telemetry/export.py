"""Chrome trace-event export for telemetry trees.

Writes a :class:`~repro.telemetry.spans.Telemetry` tree as Trace Event
Format JSON (the ``chrome://tracing`` / Perfetto ``traceEvents`` array):

* every span becomes a complete event (``ph: "X"``) with ``ts``/``dur``
  and per-phase work totals in ``args``;
* engine spans share one lane per nesting context, cluster spans land on
  their machine/slot lane (``span.thread``), named via ``M`` metadata;
* instant events become ``ph: "i"`` and counter samples ``ph: "C"``, so
  crashes, re-replications, and cache hit counters line up against the
  spans that caused them.

Timestamps are abstract (work units for engine spans, simulated seconds
for cluster spans) and scaled by ``1e6`` so one unit reads as one second
in the viewer.  ``validate_trace_events`` checks the schema invariants
the CI smoke job gates on: parseable JSON, required fields per event
type, no unclosed spans (enforced at export time).

Run ``python -m repro.telemetry.export --out trace.json`` to produce a
trace for one micro-benchmark window-slide run (map + contraction +
reduce spans, executor attempts, cache counters in a single file).
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.spans import Span, SpanKind, Telemetry

#: Microseconds per abstract time unit: one work/sim unit reads as 1 s.
TIME_SCALE = 1_000_000.0

#: Required fields per Trace Event Format phase type, as validated here
#: and in the CI smoke job.
REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "X": ("name", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "ph", "ts", "pid", "tid"),
    "C": ("name", "ph", "ts", "pid", "args"),
    "M": ("name", "ph", "pid", "args"),
}

_ENGINE_THREAD = "engine"


class TraceValidationError(ValueError):
    """The exported trace violates the Chrome trace-event schema."""


def to_chrome_trace(telemetry: Telemetry, pid: int = 1) -> dict[str, Any]:
    """Render a telemetry tree as a Trace Event Format document.

    Raises :class:`TraceValidationError` if any non-root span is still
    open — an unclosed span means a charge site exited without closing
    its scope, and its timeline would silently render wrong.
    """
    unclosed = telemetry.unclosed_spans()
    if unclosed:
        names = ", ".join(s.name for s in unclosed[:5])
        raise TraceValidationError(
            f"{len(unclosed)} unclosed span(s) at export: {names}"
        )

    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def tid_for(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[thread],
                    "args": {"name": thread},
                }
            )
        return tids[thread]

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"repro:{telemetry.root.name}"},
        }
    )

    def span_event(span: Span) -> dict[str, Any]:
        end = span.end if span.end is not None else telemetry.now()
        args: dict[str, Any] = {
            k: v for k, v in span.attrs.items() if _jsonable(v)
        }
        if span.work:
            args["work"] = {p.value: v for p, v in span.work.items()}
        if span.self_work:
            args["self_work"] = {p.value: v for p, v in span.self_work.items()}
        return {
            "name": span.name,
            "cat": span.kind.value,
            "ph": "X",
            "ts": span.start * TIME_SCALE,
            "dur": (end - span.start) * TIME_SCALE,
            "pid": pid,
            "tid": tid_for(span.thread or _ENGINE_THREAD),
            "args": args,
        }

    for span in telemetry.iter_spans():
        events.append(span_event(span))

    for instant in telemetry.instants:
        events.append(
            {
                "name": instant["name"],
                "cat": "event",
                "ph": "i",
                "s": "p",
                "ts": instant["ts"] * TIME_SCALE,
                "pid": pid,
                "tid": tid_for(_ENGINE_THREAD),
                "args": {k: v for k, v in instant["args"].items() if _jsonable(v)},
            }
        )

    for name, ts, value in telemetry.counter_samples:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts * TIME_SCALE,
                "pid": pid,
                "args": {"value": value},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "by_phase": {p.value: v for p, v in telemetry.by_phase.items()},
            "counters": dict(telemetry.counters),
        },
    }


def _jsonable(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))


def validate_trace_events(trace: dict[str, Any]) -> int:
    """Check schema invariants; return the number of events.

    Verifies the document round-trips through JSON, that every event
    carries the fields required for its ``ph`` type, and that durations
    and timestamps are finite non-negative numbers.
    """
    try:
        trace = json.loads(json.dumps(trace))
    except (TypeError, ValueError) as exc:
        raise TraceValidationError(f"trace is not JSON-serialisable: {exc}") from exc

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceValidationError("traceEvents missing or empty")

    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in REQUIRED_FIELDS:
            raise TraceValidationError(f"event {i}: unknown ph {ph!r}")
        for fld in REQUIRED_FIELDS[ph]:
            if fld not in event:
                raise TraceValidationError(
                    f"event {i} ({event.get('name')!r}, ph={ph}): missing {fld!r}"
                )
        for fld in ("ts", "dur"):
            if fld in event:
                value = event[fld]
                if not isinstance(value, (int, float)) or value != value or value < 0:
                    raise TraceValidationError(
                        f"event {i} ({event.get('name')!r}): bad {fld}={value!r}"
                    )
    return len(events)


def write_chrome_trace(telemetry: Telemetry, path: str, pid: int = 1) -> dict[str, Any]:
    """Export, validate, and write a trace; returns the trace document."""
    trace = to_chrome_trace(telemetry, pid=pid)
    validate_trace_events(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return trace


def export_micro_benchmark_trace(
    path: str, app: str = "hct", variant: str = "randomized"
) -> dict[str, Any]:
    """Run one micro-benchmark window slide on a cluster and export it.

    Produces the acceptance-criteria trace: map/contraction/reduce phase
    spans, tree-level and combiner task spans, executor attempt events on
    machine lanes, and cache counters, all in one file.
    """
    # Imported lazily: the telemetry package must stay import-light so
    # every layer can depend on it without cycles.
    from repro.apps.registry import micro_benchmark_apps
    from repro.cluster.cache import CacheConfig
    from repro.cluster.machine import Cluster, ClusterConfig
    from repro.slider.system import Slider, SliderConfig
    from repro.slider.window import WindowMode

    spec = next(s for s in micro_benchmark_apps() if s.name == app)
    telemetry = Telemetry(label=f"{app}/{variant}")
    slider = Slider(
        spec.make_job(),
        WindowMode.VARIABLE,
        config=SliderConfig(mode=WindowMode.VARIABLE, tree=variant),
        cluster=Cluster(
            ClusterConfig(num_machines=8, slots_per_machine=2, seed=42)
        ),
        cache_config=CacheConfig(),
        telemetry=telemetry,
    )
    slider.initial_run(spec.make_splits(8, 17, 0))
    slider.advance(spec.make_splits(2, 17, 8), 2)
    return write_chrome_trace(telemetry, path)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Export one micro-benchmark run as Chrome trace JSON."
    )
    parser.add_argument("--out", default="trace.json", help="output path")
    parser.add_argument("--app", default="hct", help="micro-benchmark app name")
    parser.add_argument("--variant", default="randomized", help="tree variant")
    args = parser.parse_args(argv)

    trace = export_micro_benchmark_trace(args.out, app=args.app, variant=args.variant)
    with open(args.out, encoding="utf-8") as fh:
        count = validate_trace_events(json.load(fh))
    print(f"wrote {args.out}: {count} events, {len(trace['traceEvents'])} emitted")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())

"""Unified telemetry backbone: spans, counters, traces.

One span tree per run — ``run → window-update → phase → tree-level →
task/attempt`` — is the single source of truth for the paper's *work*
and *time* measures and for fault accounting.  See
:mod:`repro.telemetry.spans` for the model and the bit-identity
contract, :mod:`repro.telemetry.export` for Chrome trace-event JSON
output, and :mod:`repro.telemetry.worktable` for the per-level work
table checked against the asymptotic-analysis bounds.
"""

from repro.telemetry.spans import (
    NullTelemetry,
    Phase,
    Span,
    SpanKind,
    Telemetry,
    TelemetrySnapshot,
)
from repro.telemetry.merge import (
    CaptureTelemetry,
    graft_spans,
    merge_counters,
    replay_events,
)
from repro.telemetry.export import (
    TraceValidationError,
    to_chrome_trace,
    validate_trace_events,
    write_chrome_trace,
)
from repro.telemetry.worktable import (
    LevelRow,
    check_incremental_bounds,
    check_initial_run_bounds,
    format_level_table,
    per_level_table,
)

__all__ = [
    "CaptureTelemetry",
    "graft_spans",
    "merge_counters",
    "replay_events",
    "NullTelemetry",
    "Phase",
    "Span",
    "SpanKind",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceValidationError",
    "to_chrome_trace",
    "validate_trace_events",
    "write_chrome_trace",
    "LevelRow",
    "check_incremental_bounds",
    "check_initial_run_bounds",
    "format_level_table",
    "per_level_table",
]

"""Partitioning and shuffle.

Map outputs are routed to reducer partitions by a hash partitioner (as in
Hadoop).  The shuffle groups one Map task's emissions into per-reducer
:class:`~repro.core.partition.Partition` objects — the leaves of the
contraction trees.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Iterable

from repro.common.hashing import stable_hash
from repro.core.partition import Partition
from repro.core.poison import PoisonContext
from repro.mapreduce.job import MapReduceJob
from repro.metrics import Phase, WorkMeter
from repro.telemetry import SpanKind


class HashPartitioner:
    """Routes a key to one of ``num_partitions`` reducers, stably."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        return stable_hash(key, salt="part") % self.num_partitions


def run_map_task(  # analysis: charge-in-caller-span (opens its own task span)
    job: MapReduceJob,
    records: Iterable[Any],
    partitioner: HashPartitioner,
    meter: WorkMeter | None = None,
    label: str = "",
    poison: PoisonContext | None = None,
) -> list[Partition]:
    """Run the Map function over a split and locally combine per reducer.

    Returns one Partition per reducer (possibly empty).  Charges map work
    (per record, at the job's compute intensity) and shuffle work (per
    emitted pair).  When metered, the whole task is wrapped in a TASK span
    (named ``label`` if given) so its map/shuffle charges are attributed.

    ``poison`` (when the engine configured a poison policy) quarantines
    records whose ``map_fn`` raises — after the policy's bounded retries —
    to the dead-letter channel instead of aborting the task; quarantined
    records emit nothing but still pay their map cost (the attempts ran).
    """
    scope = (
        meter.telemetry.span(label or "map-task", SpanKind.TASK)
        if meter is not None
        else nullcontext()
    )
    with scope:
        buffers: list[dict[Any, list[Any]]] = [
            {} for _ in range(partitioner.num_partitions)
        ]
        record_count = 0
        pair_count = 0
        for record in records:
            record_count += 1
            try:
                pairs = job.map_fn(record)
            except Exception as exc:
                if poison is None:
                    raise
                ok, pairs, attempts, last = poison.queue.retry(
                    lambda: job.map_fn(record), exc
                )
                if not ok:
                    poison.queue.quarantine(
                        "map", record, last, attempts, label or "map-task"
                    )
                    continue
            for key, value in pairs:
                pair_count += 1
                buffers[partitioner.partition(key)].setdefault(key, []).append(
                    value
                )

        if meter is not None:
            meter.charge(Phase.MAP, record_count * job.costs.map_cost_per_record)
            meter.charge(
                Phase.SHUFFLE, pair_count * job.costs.shuffle_cost_per_pair
            )

        outputs = []
        for buffer in buffers:
            outputs.append(
                Partition.from_value_lists(
                    buffer,
                    job.combiner,
                    meter=None,
                    on_poison=(
                        poison.combine_handler(job.combiner)
                        if poison is not None
                        else None
                    ),
                )
            )
        return outputs


def shuffle_map_outputs(
    map_outputs: list[list[Partition]], num_reducers: int
) -> list[list[Partition]]:
    """Transpose per-map per-reducer outputs into per-reducer leaf lists.

    ``map_outputs[m][r]`` is Map task ``m``'s partition for reducer ``r``;
    the result's ``[r][m]`` preserves Map-task order, which contraction
    trees rely on for windowed slides.
    """
    per_reducer: list[list[Partition]] = [[] for _ in range(num_reducers)]
    for partitions in map_outputs:
        if len(partitions) != num_reducers:
            raise ValueError(
                f"map output has {len(partitions)} partitions, expected {num_reducers}"
            )
        for reducer_index, partition in enumerate(partitions):
            per_reducer[reducer_index].append(partition)
    return per_reducer

"""The combiner algebra.

A :class:`Combiner` merges the values emitted for a single key.  Contraction
trees (§2.2) are built from recursive Combiner applications, which requires
**associativity**; rotating trees (§4.1) additionally require
**commutativity**.  Every combiner declares its properties so trees can
validate jobs up front, and exposes a cost hook so the WorkMeter — a view
over the :mod:`repro.telemetry` backbone — charges realistic per-merge work
to every span open at the merge site.

Values flow in *combined form* end to end: the Map function emits values of
the same type the combiner produces (e.g. a count of ``1``), so a leaf value
and an inner-node value are interchangeable — the key property that makes
recursive contraction legal.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Any, Generic, Sequence, TypeVar

V = TypeVar("V")


class Combiner(ABC, Generic[V]):
    """Merges the multiset of values for one key into a single value."""

    #: Required by every contraction tree.
    associative: bool = True
    #: Required by rotating contraction trees (bucket rotation reorders leaves).
    commutative: bool = True

    @abstractmethod
    def merge(self, key: Any, values: Sequence[V]) -> V:
        """Combine ``values`` (two or more) for ``key`` into one value."""

    def value_size(self, value: V) -> float:
        """Abstract size of a combined value, in records; drives merge cost."""
        return 1.0

    def merge_cost(self, key: Any, values: Sequence[V]) -> float:
        """Work units charged for one merge call (default: input size)."""
        return sum(self.value_size(v) for v in values)

    def fingerprint(self, value: V) -> Any:
        """A stably-hashable projection of a combined value (for content ids)."""
        return value


class SumCombiner(Combiner[float]):
    """Adds numeric values; the workhorse for counting/aggregation jobs."""

    def merge(self, key: Any, values: Sequence[float]) -> float:
        return sum(values)


class CountCombiner(SumCombiner):
    """Alias of SumCombiner used when Map emits ``1`` per occurrence."""


class MinCombiner(Combiner[float]):
    def merge(self, key: Any, values: Sequence[float]) -> float:
        return min(values)


class MaxCombiner(Combiner[float]):
    def merge(self, key: Any, values: Sequence[float]) -> float:
        return max(values)


class MeanCombiner(Combiner[tuple]):
    """Averages via (count, total) pairs so merging stays associative.

    Map emits ``(1, x)``; Reduce divides total by count.
    """

    def merge(self, key: Any, values: Sequence[tuple]) -> tuple:
        count = sum(v[0] for v in values)
        total = sum(v[1] for v in values)
        return (count, total)


class TopKCombiner(Combiner[tuple]):
    """Keeps the ``k`` largest ``(score, item)`` entries.

    Values are tuples of ``(score, item)`` pairs, kept sorted descending.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def merge(self, key: Any, values: Sequence[tuple]) -> tuple:
        merged = [entry for value in values for entry in value]
        merged.sort(key=lambda e: (-e[0], e[1:]))
        return tuple(merged[: self.k])

    def value_size(self, value: tuple) -> float:
        return max(1.0, float(len(value)))


class KSmallestCombiner(Combiner[tuple]):
    """Keeps the ``k`` smallest entries — the KNN candidate-set combiner."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def merge(self, key: Any, values: Sequence[tuple]) -> tuple:
        merged = [entry for value in values for entry in value]
        return tuple(heapq.nsmallest(self.k, merged))

    def value_size(self, value: tuple) -> float:
        return max(1.0, float(len(value)))


class SetUnionCombiner(Combiner[frozenset]):
    """Unions sets of items (e.g. distinct users per key)."""

    def merge(self, key: Any, values: Sequence[frozenset]) -> frozenset:
        out: set = set()
        for value in values:
            out.update(value)
        return frozenset(out)

    def value_size(self, value: frozenset) -> float:
        return max(1.0, float(len(value)))

    def fingerprint(self, value: frozenset) -> Any:
        return tuple(sorted(value, key=repr))


class ListConcatCombiner(Combiner[tuple]):
    """Concatenates value tuples.

    Associative but **not** commutative: rotating trees reject jobs that use
    it, which exercises the combiner-contract validation path.
    """

    commutative = False

    def merge(self, key: Any, values: Sequence[tuple]) -> tuple:
        out: list = []
        for value in values:
            out.extend(value)
        return tuple(out)

    def value_size(self, value: tuple) -> float:
        return max(1.0, float(len(value)))


class VectorSumCombiner(Combiner[tuple]):
    """Sums ``(count, vector)`` pairs — the K-Means centroid accumulator.

    Vectors are plain tuples of floats so values stay immutable and stably
    hashable.
    """

    def merge(self, key: Any, values: Sequence[tuple]) -> tuple:
        count = 0
        total: list[float] | None = None
        for c, vec in values:
            count += c
            if total is None:
                total = list(vec)
            else:
                for i, x in enumerate(vec):
                    total[i] += x
        return (count, tuple(total if total is not None else ()))

    def merge_cost(self, key: Any, values: Sequence[tuple]) -> float:
        # Cost scales with vector dimensionality, not record weight.
        dim = max((len(v[1]) for v in values), default=1)
        return len(values) * max(1.0, dim / 8.0)

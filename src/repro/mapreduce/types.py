"""Core data-plane types: records and input splits.

A *split* is the unit of input handled by one Map task (§2.1).  Sliding
windows are sequences of splits: the window slides by dropping splits from
the front and appending new splits at the back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.common.hashing import content_id

# A record is any value a Map function can consume: a line of text, a point,
# a log entry tuple.  Records must be stably hashable (see common.hashing).
Record = Any


@dataclass(frozen=True)
class Split:
    """An immutable input split.

    ``uid`` is a stable content-derived identity used for memoizing the Map
    task that processed this split: if the same split appears in the next
    window, its Map output is reused without re-running the Map function.
    """

    uid: int
    records: tuple[Record, ...]
    label: str = ""

    @staticmethod
    def from_records(records: Iterable[Record], label: str = "") -> "Split":
        records = tuple(records)
        uid = content_id("split", label, records)
        return Split(uid=uid, records=records, label=label)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Split({self.label or self.uid}, {len(self.records)} records)"


def make_splits(
    records: Sequence[Record], split_size: int, label_prefix: str = "s"
) -> list[Split]:
    """Chop a record sequence into fixed-size splits.

    Mirrors how an HDFS input is chopped into fixed-size chunks, each
    handled by one Map task.
    """
    if split_size <= 0:
        raise ValueError(f"split_size must be positive, got {split_size}")
    splits = []
    for start in range(0, len(records), split_size):
        chunk = records[start : start + split_size]
        splits.append(
            Split.from_records(chunk, label=f"{label_prefix}{start // split_size}")
        )
    return splits


@dataclass
class SplitWindow:
    """A mutable ordered window of splits with front-drop/back-append slides."""

    splits: list[Split] = field(default_factory=list)

    def append(self, new_splits: Sequence[Split]) -> None:
        self.splits.extend(new_splits)

    def drop_front(self, count: int) -> list[Split]:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > len(self.splits):
            raise ValueError(
                f"cannot drop {count} splits from a window of {len(self.splits)}"
            )
        dropped, self.splits = self.splits[:count], self.splits[count:]
        return dropped

    def __len__(self) -> int:
        return len(self.splits)

    def __iter__(self):
        return iter(self.splits)

    def total_records(self) -> int:
        return sum(len(s) for s in self.splits)

"""A Hadoop-like data-parallel substrate.

This package provides the non-incremental programming model that Slider
incrementalizes: jobs are expressed as a Map function, an associative
Combiner, and a Reduce function (§2).  The vanilla batch runtime here is the
"recompute from scratch" baseline of the evaluation.
"""

from repro.mapreduce.combiners import (
    Combiner,
    SumCombiner,
    CountCombiner,
    MinCombiner,
    MaxCombiner,
    MeanCombiner,
    TopKCombiner,
    KSmallestCombiner,
    SetUnionCombiner,
    ListConcatCombiner,
    VectorSumCombiner,
)
from repro.mapreduce.job import CostModel, JobSpec, MapReduceJob
from repro.mapreduce.runtime import BatchRuntime, JobResult
from repro.mapreduce.shuffle import HashPartitioner, shuffle_map_outputs
from repro.mapreduce.types import Record, Split, make_splits

__all__ = [
    "Combiner",
    "SumCombiner",
    "CountCombiner",
    "MinCombiner",
    "MaxCombiner",
    "MeanCombiner",
    "TopKCombiner",
    "KSmallestCombiner",
    "SetUnionCombiner",
    "ListConcatCombiner",
    "VectorSumCombiner",
    "MapReduceJob",
    "JobSpec",
    "CostModel",
    "BatchRuntime",
    "JobResult",
    "HashPartitioner",
    "shuffle_map_outputs",
    "Record",
    "Split",
    "make_splits",
]

"""Job specification and cost model.

A :class:`MapReduceJob` is the non-incremental program the user writes once;
Slider runs it either from scratch (baseline) or incrementally, without any
change to the job itself — the paper's transparency requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.common.errors import CombinerContractError
from repro.mapreduce.combiners import Combiner

# map_fn(record) -> iterable of (key, value) pairs, value already in
# combined form (see combiners module docstring).
MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
# reduce_fn(key, combined_value) -> final output value for the key.
ReduceFn = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class CostModel:
    """Abstract work-unit costs for the phases of a job.

    ``map_cost_per_record`` encodes compute intensity: K-Means/KNN have
    large values (the paper's compute-intensive class, ~98 % of work in the
    Map phase, Figure 9), text/matrix jobs small ones (data-intensive
    class, roughly even split).
    """

    map_cost_per_record: float = 1.0
    combine_cost_factor: float = 1.0
    reduce_cost_per_key: float = 1.0
    shuffle_cost_per_pair: float = 0.05
    memo_write_cost_per_key: float = 0.02
    memo_read_cost_per_key: float = 0.01


@dataclass(frozen=True)
class MapReduceJob:
    """A complete job: Map + Combiner + Reduce + partitioning + costs."""

    name: str
    map_fn: MapFn
    combiner: Combiner
    reduce_fn: ReduceFn = field(default=lambda key, value: value)
    num_reducers: int = 4
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.num_reducers <= 0:
            raise ValueError(f"num_reducers must be positive, got {self.num_reducers}")
        if not self.combiner.associative:
            raise CombinerContractError(
                f"job {self.name!r}: contraction requires an associative combiner"
            )

    def validate(
        self,
        *,
        check_laws: bool = False,
        check_purity: bool = False,
        max_examples: int = 60,
    ):
        """Check this job's contracts beyond the constructor's cheap flags.

        With ``check_laws=True``, property-tests the combiner's declared
        algebra (associativity, commutativity if claimed, merge and
        fingerprint consistency) on generated values.  With
        ``check_purity=True``, statically analyzes the Map/Combine/Reduce
        functions for nondeterminism and impurity.  Both are opt-in: they
        import :mod:`repro.analysis` lazily and cost real time, so they
        belong in tests and CI rather than on the hot construction path.

        Returns the :class:`repro.analysis.AnalysisReport`; raises
        :class:`~repro.common.errors.CombinerContractError` if any check
        found an error-severity violation.
        """
        from repro.analysis import AnalysisReport, check_target
        from repro.analysis.targets import job_target

        report = AnalysisReport()
        check_target(
            job_target(self),
            report,
            check_purity=check_purity,
            check_laws=check_laws,
            max_examples=max_examples,
        )
        if not report.ok:
            summary = "; ".join(f.message for f in report.errors())
            raise CombinerContractError(
                f"job {self.name!r} failed validation: {summary}"
            )
        return report

    def with_reducers(self, num_reducers: int) -> "MapReduceJob":
        """A copy of this job with a different reducer count."""
        return MapReduceJob(
            name=self.name,
            map_fn=self.map_fn,
            combiner=self.combiner,
            reduce_fn=self.reduce_fn,
            num_reducers=num_reducers,
            costs=self.costs,
        )


#: The user-facing name for a job's contract-bearing specification —
#: ``JobSpec.validate(check_laws=True)`` reads as intended at call sites.
JobSpec = MapReduceJob

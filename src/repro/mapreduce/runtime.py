"""The vanilla batch runtime — the "recompute from scratch" baseline.

Runs a MapReduceJob over a set of splits the way unmodified Hadoop would:
every Map task runs, outputs are shuffled, and each Reduce task merge-sorts
and reduces its whole partition.  No memoization, no contraction trees.
The work it charges is the denominator of every speedup in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.partition import Partition, combine_partitions
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import HashPartitioner, run_map_task, shuffle_map_outputs
from repro.mapreduce.types import Split
from repro.metrics import Phase, WorkMeter
from repro.telemetry import SpanKind, Telemetry


@dataclass
class TaskRecord:
    """Cost bookkeeping for one task, consumed by the cluster simulator."""

    kind: str  # "map" | "reduce"
    label: str
    cost: float
    input_bytes: float = 0.0
    preferred_machine: int | None = None
    #: For map tasks: the split whose block placement decides locality.
    split_uid: int | None = None


@dataclass
class JobResult:
    """Everything a job run produces: outputs, metrics, and the task graph."""

    outputs: dict[Any, Any]
    meter: WorkMeter
    tasks: list[TaskRecord] = field(default_factory=list)

    @property
    def work(self) -> float:
        return self.meter.total()


class BatchRuntime:
    """Non-incremental executor for MapReduceJobs."""

    def __init__(
        self, job: MapReduceJob, telemetry: Telemetry | None = None
    ) -> None:
        self.job = job
        self.partitioner = HashPartitioner(job.num_reducers)
        #: Long-lived telemetry backbone to graft each run's span tree
        #: into.  Every ``run`` still accounts into its own fresh meter —
        #: the seed behaviour, and what keeps its totals bit-identical —
        #: and the finished tree is adopted here for the combined trace.
        self.telemetry = telemetry

    def run(self, splits: Sequence[Split], label: str = "batch") -> JobResult:
        """Execute the full job over ``splits`` from scratch."""
        meter = WorkMeter()
        scope = meter.telemetry
        tasks: list[TaskRecord] = []

        with scope.span(label, SpanKind.WINDOW_UPDATE):
            map_outputs: list[list[Partition]] = []
            with scope.span("map", SpanKind.PHASE):
                for split in splits:
                    before = meter.total()
                    partitions = run_map_task(
                        self.job,
                        split.records,
                        self.partitioner,
                        meter,
                        label=f"map:{split.label or split.uid}",
                    )
                    map_outputs.append(partitions)
                    tasks.append(
                        TaskRecord(
                            kind="map",
                            label=f"map:{split.label or split.uid}",
                            cost=meter.total() - before,
                            input_bytes=float(len(split)),
                            split_uid=split.uid,
                        )
                    )

            per_reducer = shuffle_map_outputs(map_outputs, self.job.num_reducers)
            outputs: dict[Any, Any] = {}
            with scope.span("reduce", SpanKind.PHASE):
                for reducer_index, leaf_partitions in enumerate(per_reducer):
                    before = meter.total()
                    with scope.span(f"reduce:{reducer_index}", SpanKind.TASK):
                        merged = combine_partitions(
                            leaf_partitions,
                            self.job.combiner,
                            meter=meter,
                            phase=Phase.REDUCE,
                            cost_factor=self.job.costs.combine_cost_factor,
                        )
                        reduced = reduce_partition(self.job, merged, meter)
                    outputs.update(reduced)
                    tasks.append(
                        TaskRecord(
                            kind="reduce",
                            label=f"reduce:{reducer_index}",
                            cost=meter.total() - before,
                            input_bytes=float(
                                sum(len(p) for p in leaf_partitions)
                            ),
                        )
                    )
        if self.telemetry is not None:
            self.telemetry.adopt(scope, name=label)
        return JobResult(outputs=outputs, meter=meter, tasks=tasks)


def reduce_partition(  # analysis: charge-in-caller-span (reduce-task span)
    job: MapReduceJob, partition: Partition, meter: WorkMeter | None = None
) -> dict[Any, Any]:
    """Apply the Reduce function to every key of a combined partition."""
    outputs = {
        key: job.reduce_fn(key, value) for key, value in partition.items()
    }
    if meter is not None:
        meter.charge(Phase.REDUCE, len(partition) * job.costs.reduce_cost_per_key)
    return outputs

"""Machines and cluster configuration.

Mirrors the paper's testbed shape (§7.1): a master plus worker machines,
each with a number of task slots and a relative speed.  Stragglers are
modeled as machines whose speed is scaled down by a straggle factor, chosen
deterministically from the cluster RNG so experiments are reproducible.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.common.errors import SchedulingError
from repro.common.rng import RngStream


@dataclass
class Machine:
    """One worker: ``slots`` parallel task slots at ``speed`` work-units/sec."""

    machine_id: int
    slots: int = 2
    speed: float = 1.0
    alive: bool = True
    #: Multiplier < 1 models a temporarily overloaded (straggler) node.
    straggle: float = 1.0

    def effective_speed(self) -> float:
        if not self.alive:
            raise SchedulingError(f"machine {self.machine_id} is dead")
        return self.speed * self.straggle

    def duration_for(self, cost: float) -> float:
        """Seconds to execute ``cost`` work units on this machine."""
        return cost / self.effective_speed()


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs shaping the simulated cluster."""

    num_machines: int = 24
    slots_per_machine: int = 2
    base_speed: float = 1.0
    #: Fraction of machines that are stragglers in a given run.
    straggler_fraction: float = 0.08
    #: Speed multiplier applied to straggler machines.
    straggler_slowdown: float = 0.5
    #: Seconds to move one abstract byte across the network.
    network_cost_per_byte: float = 0.002
    #: Extra seconds to read one abstract byte from disk instead of memory.
    disk_cost_per_byte: float = 0.004
    seed: int = 42


class Cluster:
    """A set of machines plus the shared cost parameters."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.num_machines <= 0:
            raise SchedulingError("cluster needs at least one machine")
        self.machines = [
            Machine(
                machine_id=i,
                slots=self.config.slots_per_machine,
                speed=self.config.base_speed,
            )
            for i in range(self.config.num_machines)
        ]
        self._rng = RngStream(self.config.seed, "cluster")
        self.assign_stragglers()

    # -- membership --------------------------------------------------------

    def alive_machines(self) -> list[Machine]:
        alive = [m for m in self.machines if m.alive]
        if not alive:
            raise SchedulingError("no alive machines in the cluster")
        return alive

    def machine(self, machine_id: int) -> Machine:
        self._check_id(machine_id)
        return self.machines[machine_id]

    def kill(self, machine_id: int) -> None:
        self._check_id(machine_id)
        if not self.machines[machine_id].alive:
            warnings.warn(
                f"kill({machine_id}): machine is already dead",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.machines[machine_id].alive = False

    def revive(self, machine_id: int) -> None:
        self._check_id(machine_id)
        if self.machines[machine_id].alive:
            warnings.warn(
                f"revive({machine_id}): machine is already alive",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.machines[machine_id].alive = True

    def _check_id(self, machine_id: int) -> None:
        if not isinstance(machine_id, int) or not (
            0 <= machine_id < len(self.machines)
        ):
            raise SchedulingError(
                f"unknown machine id {machine_id!r} "
                f"(cluster has machines 0..{len(self.machines) - 1})"
            )

    def __len__(self) -> int:
        return len(self.machines)

    # -- stragglers --------------------------------------------------------

    def assign_stragglers(self) -> list[int]:
        """(Re)sample which machines straggle this run; returns their ids.

        Dead machines are skipped: they cannot run tasks, so marking them
        as stragglers would silently waste the straggler budget.
        """
        for machine in self.machines:
            machine.straggle = 1.0
        candidates = [m.machine_id for m in self.machines if m.alive]
        count = int(round(self.config.straggler_fraction * len(self.machines)))
        count = min(count, len(candidates))
        if count == 0:
            return []
        chosen = self._rng.choice(candidates, size=count, replace=False)
        ids = [int(i) for i in chosen]
        for machine_id in ids:
            self.machines[machine_id].straggle = self.config.straggler_slowdown
        return ids

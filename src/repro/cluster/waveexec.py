"""Event-driven task-attempt execution with mid-wave fault tolerance (§6).

The greedy list scheduler in :mod:`repro.cluster.scheduler` *plans* a wave
as if nothing ever fails.  This module *executes* waves: each task becomes
a sequence of **attempts** driven through the shared
:class:`~repro.cluster.simulation.EventQueue`/:class:`~repro.cluster.simulation.SimClock`.
The executor processes attempt-start, task-finish, transient-failure,
machine-crash, heartbeat-timeout (crash detection), machine-recover,
straggle-episode, and heartbeat (speculation) events:

* attempts on a crashed machine keep "running" as zombies until the
  master misses heartbeats for ``heartbeat_timeout`` seconds, then they
  are reaped and rescheduled with exponential backoff;
* a task whose attempts fail ``max_attempts`` times surfaces a typed
  :class:`~repro.common.errors.TaskFailedError`;
* slow attempts past a LATE-style progress threshold spawn speculative
  backups with first-finish-wins semantics (the loser is killed).

Execution separates *planning* from *running*.  Planning is the exact
greedy list-scheduling pass the old ``simulate_wave`` performed — tasks
in longest-processing-time order, each policy's ``choose()`` against the
evolving projected free-time matrix — producing per-slot queues of
committed attempts.  Running turns each commitment into timed events.
Any fault (transient failure, crash detection, recovery, straggle
episode, a speculative win) cancels every not-yet-started commitment and
replans it against the post-fault cluster.  Fault-free (no chaos,
speculation off) nothing ever invalidates the plan, so start times,
placements, and the makespan are *identical* to the greedy planner —
``simulate_wave`` is now a thin wrapper over this executor and existing
figures/tables are unchanged.

The fault/speculation handlers live in :mod:`repro.cluster.exec_faults`;
the DAG-readiness variant in :mod:`repro.cluster.dagexec`; one-call
wrappers (``execute_wave``/``execute_two_waves``) in
:mod:`repro.cluster.exec_api`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.cluster.exec_faults import FaultMachineryMixin
from repro.cluster.exec_types import (
    AttemptState,
    ExecutorConfig,
    ExecutorHooks,
    RecoveryStats,
    TaskAttempt,
    _Commitment,
    _TaskState,
)
from repro.cluster.machine import Cluster, Machine
from repro.cluster.scheduler import Assignment, Scheduler, SimTask
from repro.cluster.simulation import EventQueue, SimClock
from repro.common.errors import SchedulingError
from repro.telemetry import SpanKind, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.chaos import ChaosSchedule


class WaveExecutor(FaultMachineryMixin):
    """Executes task waves on a cluster, one event at a time.

    One executor instance may run several consecutive waves (``run`` is a
    barrier); the clock, pending chaos events, and machine visibility
    carry over, so a crash scheduled during the map wave is still being
    repaired while the reduce wave runs.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        config: ExecutorConfig | None = None,
        chaos: "ChaosSchedule | None" = None,
        hooks: ExecutorHooks | None = None,
        start_time: float = 0.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or ExecutorConfig()
        self.chaos = chaos
        self.hooks = hooks or ExecutorHooks()
        #: Telemetry backbone to emit attempt spans and fault events into;
        #: ``None`` keeps the executor silent (standalone/unit-test use).
        self.telemetry = telemetry
        self.clock = SimClock()
        if start_time:
            self.clock.advance_to(start_time)
        self.events = EventQueue()
        self.stats = RecoveryStats()
        self.attempt_log: list[TaskAttempt] = []
        #: Master's view: which machines it believes schedulable.  A
        #: crashed machine stays visible (and collects doomed dispatches)
        #: until the heartbeat timeout expires.
        self._visible: list[bool] = [m.alive for m in cluster.machines]
        #: Bumped on crash and on recover; attempts carry the epoch they
        #: started under, so stale finish events are recognisable.
        self._epoch: list[int] = [0] * len(cluster.machines)
        self._running: list[list[TaskAttempt | None]] = [
            [None] * m.slots for m in cluster.machines
        ]
        #: Planned-but-not-started commitments, per slot, in start order.
        self._queues: list[list[list[_Commitment]]] = [
            [[] for _ in range(m.slots)] for m in cluster.machines
        ]
        #: Attempts the master believes started on a machine that was in
        #: fact already dead; reaped at detection/recovery.
        self._ghosts: list[list[TaskAttempt]] = [
            [] for _ in cluster.machines
        ]
        self._owner: dict[TaskAttempt, _TaskState] = {}
        self._pending: list[_TaskState] = []
        self._unfinished: set[_TaskState] = set()
        self._heartbeat_pending = False
        self._straggle_originals: dict[int, float] = {}
        if chaos is not None:
            for crash in chaos.crashes:
                self.events.push(crash.time, ("crash", crash.machine_id))
                if crash.recover_at is not None:
                    self.events.push(
                        crash.recover_at, ("recover", crash.machine_id)
                    )
            for episode in chaos.straggles:
                self.events.push(
                    episode.start,
                    ("straggle_on", episode.machine_id, episode.factor),
                )
                self.events.push(
                    episode.end, ("straggle_off", episode.machine_id)
                )

    # -- public API ---------------------------------------------------------

    def run(self, tasks: Sequence[SimTask]) -> tuple[float, list[Assignment]]:
        """Execute one wave to completion (a barrier); returns
        ``(finish_time, assignments)`` for the wave's winning attempts,
        in the greedy planner's longest-processing-time order."""
        states = [
            _TaskState(task=task, order=index)
            for index, task in enumerate(
                sorted(tasks, key=lambda t: (-t.cost, t.label))
            )
        ]
        self._pending = list(states)
        self._unfinished = set(states)
        return self._drive(states)

    def _drive(
        self, states: list[_TaskState]
    ) -> tuple[float, list[Assignment]]:
        """Process events until every task in ``states`` has finished."""
        start = self.clock.now
        if self.config.speculation and states:
            self._schedule_heartbeat()
        self._plan()

        while self._unfinished:
            if not self.events:
                raise SchedulingError(
                    f"executor deadlocked: {len(self._pending)} pending "
                    "tasks, nothing running, and no future events"
                )
            when, payload = self.events.pop()
            self.clock.advance_to(when)
            self._handle(payload)

        finish = max(
            [start] + [s.winner.finish for s in states if s.winner is not None]
        )
        ordered = [s.winner for s in states if s.winner is not None]
        return finish, ordered

    def _task_completed(self, state: _TaskState) -> None:
        """Hook fired when a task's winning attempt finishes; the DAG
        executor overrides it to release dependents."""

    def restore_straggles(self) -> None:
        """Undo straggle episodes still open when execution ended."""
        for machine_id, original in self._straggle_originals.items():
            self.cluster.machine(machine_id).straggle = original
        self._straggle_originals.clear()

    # -- planning -----------------------------------------------------------

    def _plan_base(self) -> list[list[float]]:
        """The projected free-time matrix: idle slots free now, busy ones
        at their running attempt's expected finish, committed ones at the
        tail commitment's finish; invisible machines have no slots."""
        now = self.clock.now
        matrix: list[list[float]] = []
        for machine in self.cluster.machines:
            machine_id = machine.machine_id
            # Plans never target dead machines (the policies' choose()
            # assumes live ones, exactly as the greedy planner did); the
            # undetected-crash window still produces doomed dispatches
            # via commitments made before the crash.
            if not self._visible[machine_id] or not machine.alive:
                matrix.append([])
                continue
            row = []
            for slot_index in range(machine.slots):
                when = now
                attempt = self._running[machine_id][slot_index]
                if attempt is not None:
                    when = max(when, attempt.expected_finish)
                queue = self._queues[machine_id][slot_index]
                if queue:
                    when = max(when, queue[-1].finish)
                row.append(when)
            matrix.append(row)
        return matrix

    def _plan(self) -> None:
        """Greedy list scheduling of pending tasks onto slot queues.

        This is exactly the old ``simulate_wave`` loop: tasks in LPT
        order, each policy's ``choose()`` against the evolving free-time
        matrix — except commitments become timed start events instead of
        immediately final assignments.
        """
        if not self._pending:
            return
        free_times = self._plan_base()
        if not any(free_times):
            if self.events:
                return  # wait for a detection/recovery event to replan
            # All-dead cluster with no way out: let the policy raise
            # exactly as the greedy planner would have.
            self.scheduler.choose(
                self._pending[0].task, free_times, self.cluster
            )
            raise SchedulingError("no schedulable slots")
        for state in sorted(self._pending, key=lambda s: s.order):
            machine_id, slot_index = self.scheduler.choose(
                state.task, free_times, self.cluster
            )
            machine = self.cluster.machine(machine_id)
            task = state.task
            fetched = (
                task.preferred_machine is not None
                and task.preferred_machine != machine_id
            )
            start = free_times[machine_id][slot_index]
            finish = start + self._duration_on(machine, task, fetched)
            free_times[machine_id][slot_index] = finish
            commitment = _Commitment(
                state=state,
                machine_id=machine_id,
                slot_index=slot_index,
                start=start,
                finish=finish,
                fetched=fetched,
            )
            self._queues[machine_id][slot_index].append(commitment)
            self.events.push(start, ("start", commitment))
        self._pending.clear()

    def _replan(self) -> None:
        """Cancel every not-yet-started commitment and plan it afresh
        against the cluster as it looks right now."""
        for machine_queues in self._queues:
            for queue in machine_queues:
                for commitment in queue:
                    commitment.cancelled = True
                    state = commitment.state
                    if (
                        not state.done
                        and not state.cooling
                        and not state.has_live_attempt()
                        and state not in self._pending
                    ):
                        self._pending.append(state)
                queue.clear()
        self._plan()

    def _duration_on(
        self, machine: Machine, task: SimTask, fetched: bool
    ) -> float:
        if machine.alive:
            duration = machine.duration_for(task.cost)
        else:  # undetected-dead machine: the attempt is doomed anyway
            duration = task.cost / (machine.speed * machine.straggle)
        if fetched:
            duration += (
                task.fetch_bytes * self.cluster.config.network_cost_per_byte
            )
        return duration

    # -- attempt lifecycle --------------------------------------------------

    def _begin_attempt(
        self,
        state: _TaskState,
        machine_id: int,
        slot_index: int,
        fetched: bool,
        speculative: bool = False,
    ) -> TaskAttempt:
        machine = self.cluster.machine(machine_id)
        now = self.clock.now
        duration = self._duration_on(machine, state.task, fetched)
        attempt = TaskAttempt(
            task=state.task,
            number=len(state.attempts),
            machine_id=machine_id,
            slot_index=slot_index,
            start=now,
            expected_finish=now + duration,
            epoch=self._epoch[machine_id],
            fetched=fetched,
            speculative=speculative,
            ghost=not machine.alive,
        )
        state.attempts.append(attempt)
        self._owner[attempt] = state
        self.attempt_log.append(attempt)
        self.stats.attempts_started += 1
        if speculative:
            self.stats.speculative_attempts += 1
        if attempt.ghost:
            # Started into the void: no events will ever fire for it; the
            # detection sweep reaps it along with the machine's zombies.
            self._ghosts[machine_id].append(attempt)
            return attempt
        self._running[machine_id][slot_index] = attempt
        if self.chaos is not None and self.chaos.attempt_fails(
            state.task.label, attempt.number
        ):
            fail_at = now + duration * self.chaos.failure_fraction()
            self.events.push(fail_at, ("fail", attempt))
        else:
            self.events.push(attempt.expected_finish, ("finish", attempt))
        return attempt

    # -- event handling -----------------------------------------------------

    def _handle(self, payload: tuple) -> None:
        kind = payload[0]
        if kind == "start":
            self._on_start(payload[1])
        elif kind == "finish":
            self._on_finish(payload[1])
        elif kind == "fail":
            self._on_fail(payload[1])
        elif kind == "retry":
            self._on_retry(payload[1])
        elif kind == "crash":
            self._on_crash(payload[1])
        elif kind == "detect":
            self._on_detect(payload[1], payload[2])
        elif kind == "recover":
            self._on_recover(payload[1])
        elif kind == "heartbeat":
            self._on_heartbeat()
        elif kind == "straggle_on":
            self._on_straggle_on(payload[1], payload[2])
        elif kind == "straggle_off":
            self._on_straggle_off(payload[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event {kind!r}")

    def _attempt_event_is_stale(self, attempt: TaskAttempt) -> bool:
        machine = self.cluster.machine(attempt.machine_id)
        return (
            attempt.state is not AttemptState.RUNNING
            or not machine.alive
            or attempt.epoch != self._epoch[attempt.machine_id]
        )

    def _release_slot(self, attempt: TaskAttempt) -> None:
        slots = self._running[attempt.machine_id]
        if slots[attempt.slot_index] is attempt:
            slots[attempt.slot_index] = None

    def _on_start(self, commitment: _Commitment) -> None:
        if commitment.cancelled or commitment.state.done:
            return
        machine_id = commitment.machine_id
        slot_index = commitment.slot_index
        queue = self._queues[machine_id][slot_index]
        if commitment in queue:
            queue.remove(commitment)
        occupant = self._running[machine_id][slot_index]
        if (
            occupant is not None
            and occupant.expected_finish <= self.clock.now
            and not self._attempt_event_is_stale(occupant)
        ):
            # Start and predecessor-finish land on the same instant; the
            # finish must be applied first.  Its own queued event becomes
            # a no-op via the state check.
            self._on_finish(occupant)
            if commitment.cancelled or commitment.state.done:
                return
        if self._running[machine_id][slot_index] is not None:
            # The plan went stale (e.g. a zombie still holds the slot):
            # put the task back and replan everything.
            if commitment.state not in self._pending:
                self._pending.append(commitment.state)
            self._replan()
            return
        self._begin_attempt(
            commitment.state, machine_id, slot_index, commitment.fetched
        )

    def _record_attempt(self, attempt: TaskAttempt) -> None:
        """Emit a terminal attempt into the telemetry backbone, on its
        machine/slot trace lane with simulated-clock timestamps."""
        if self.telemetry is None or attempt.finish is None:
            return
        self.telemetry.record_span(
            f"{attempt.task.label}#{attempt.number}",
            SpanKind.ATTEMPT,
            start=attempt.start,
            end=attempt.finish,
            thread=f"m{attempt.machine_id}.s{attempt.slot_index}",
            task_kind=attempt.task.kind,
            state=attempt.state.value,
            speculative=attempt.speculative,
            ghost=attempt.ghost,
        )
        self.telemetry.count(
            f"executor.attempts.{attempt.state.value}", ts=attempt.finish
        )

    def _on_finish(self, attempt: TaskAttempt) -> None:
        if self._attempt_event_is_stale(attempt):
            return  # zombie on a crashed machine; the detect sweep reaps it
        now = self.clock.now
        attempt.state = AttemptState.FINISHED
        attempt.finish = now
        self._record_attempt(attempt)
        self._release_slot(attempt)
        self.stats.attempts_finished += 1
        state = self._owner[attempt]
        if state.done:
            return
        state.done = True
        self._unfinished.discard(state)
        if attempt.speculative:
            self.stats.speculative_wins += 1
        state.winner = Assignment(
            task=state.task,
            machine_id=attempt.machine_id,
            start=attempt.start,
            finish=now,
            fetched=attempt.fetched,
        )
        # First finish wins: kill the losing sibling attempts and hand
        # their slots to whoever the planner now prefers.
        killed = False
        for sibling in state.attempts:
            if sibling is attempt or sibling.state is not AttemptState.RUNNING:
                continue
            sibling.state = AttemptState.KILLED
            sibling.finish = now
            self._record_attempt(sibling)
            if not sibling.ghost:
                self._release_slot(sibling)
            self.stats.speculative_waste += max(0.0, now - sibling.start)
            killed = True
        if killed:
            self._replan()
        self._task_completed(state)

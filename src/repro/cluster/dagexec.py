"""DAG execution: topological readiness over the event-driven executor.

The dependency-aware analogue of the two-wave barrier: a task becomes
schedulable the moment its dependencies finish, and ready tasks are
considered critical-path-first.  All of the wave executor's fault
machinery (crash detection, retries, speculation, replanning) applies
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.cluster.exec_types import (
    ExecutionReport,
    ExecutorConfig,
    ExecutorHooks,
    _TaskState,
)
from repro.cluster.machine import Cluster
from repro.cluster.scheduler import Scheduler, SimTask
from repro.cluster.waveexec import WaveExecutor
from repro.common.errors import SchedulingError
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.chaos import ChaosSchedule


class DagExecutor(WaveExecutor):
    """Executes a dependency DAG of tasks at sub-computation granularity.

    Instead of the two-wave barrier (all maps, then all reduces), a task
    becomes schedulable the moment its dependencies finish — *topological
    readiness*.  Ready tasks are planned by the same greedy policies, but
    considered in **critical-path-first** order: the priority of a task is
    the heaviest cost chain hanging below it in the DAG, so the chain that
    bounds the makespan is never starved by wide-but-shallow work.  All of
    the wave executor's fault machinery (crash detection, retries,
    speculation, replanning) applies unchanged.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._dep_remaining: dict[_TaskState, int] = {}
        self._dependents: dict[_TaskState, list[_TaskState]] = {}

    def run_dag(
        self,
        tasks: Sequence[SimTask],
        deps: dict[str, Sequence[str]],
    ) -> tuple[float, list]:
        """Execute ``tasks`` honouring ``deps`` (task label -> labels it
        depends on); returns ``(finish_time, assignments)`` with the
        assignments in critical-path priority order."""
        by_label: dict[str, SimTask] = {}
        for task in tasks:
            if task.label in by_label:
                raise SchedulingError(f"duplicate task label {task.label!r}")
            by_label[task.label] = task
        parents: dict[str, tuple[str, ...]] = {}
        for label, parent_labels in deps.items():
            if label not in by_label:
                raise SchedulingError(f"deps reference unknown task {label!r}")
            unique = tuple(dict.fromkeys(parent_labels))
            for parent in unique:
                if parent not in by_label:
                    raise SchedulingError(
                        f"task {label!r} depends on unknown task {parent!r}"
                    )
            parents[label] = unique

        priority = critical_path_priority(tasks, parents)
        states: dict[str, _TaskState] = {}
        ranked = sorted(tasks, key=lambda t: (-priority[t.label], t.label))
        for order, task in enumerate(ranked):
            states[task.label] = _TaskState(task=task, order=order)

        self._dep_remaining = {
            states[label]: len(parents.get(label, ()))
            for label in states
        }
        self._dependents = {state: [] for state in states.values()}
        for label, parent_labels in parents.items():
            for parent in parent_labels:
                self._dependents[states[parent]].append(states[label])

        self._pending = [
            state
            for state in sorted(states.values(), key=lambda s: s.order)
            if self._dep_remaining[state] == 0
        ]
        self._unfinished = set(states.values())
        return self._drive(list(states.values()))

    def _task_completed(self, state: _TaskState) -> None:
        """Topological release: finished tasks unlock their dependents."""
        released = False
        for child in self._dependents.get(state, ()):
            self._dep_remaining[child] -= 1
            if self._dep_remaining[child] == 0 and not child.done:
                self._pending.append(child)
                released = True
        if released:
            self._plan()


def critical_path_priority(
    tasks: Sequence[SimTask], parents: dict[str, Sequence[str]]
) -> dict[str, float]:
    """For each task, the heaviest cost chain from it down to any sink
    (inclusive).  Raises :class:`SchedulingError` on dependency cycles."""
    children: dict[str, list[str]] = {task.label: [] for task in tasks}
    remaining: dict[str, int] = {task.label: 0 for task in tasks}
    for label, parent_labels in parents.items():
        remaining[label] = len(parent_labels)
        for parent in parent_labels:
            children[parent].append(label)
    order = [label for label, count in remaining.items() if count == 0]
    cursor = 0
    while cursor < len(order):
        label = order[cursor]
        cursor += 1
        for child in children[label]:
            remaining[child] -= 1
            if remaining[child] == 0:
                order.append(child)
    if len(order) != len(tasks):
        stuck = sorted(label for label, n in remaining.items() if n > 0)
        raise SchedulingError(f"dependency cycle among tasks: {stuck[:5]}")
    costs = {task.label: task.cost for task in tasks}
    priority: dict[str, float] = {}
    for label in reversed(order):
        below = max((priority[child] for child in children[label]), default=0.0)
        priority[label] = costs[label] + below
    return priority


def vector_clocks(
    assignments: Sequence,
    parents: dict[str, Sequence[str]],
) -> tuple[dict[str, dict], list[str]]:
    """Post-hoc vector clocks over an executed DAG schedule.

    Rebuilds happens-before from the simulated execution: each machine is
    a lane, each finished task's clock merges its machine's running clock
    with every parent's clock.  Returns ``(clocks, violations)`` where
    ``violations`` lists every dependency the schedule broke — a parent
    unfinished (or not yet run) when its child started.  An empty list
    certifies the executed schedule respected the dependency order; the
    dynamic race cross-check uses it to validate that topological release
    (the executor's concurrency source) never outran happens-before.
    """
    finished = sorted(
        (a for a in assignments if a.finish is not None),
        key=lambda a: (a.start, a.task.label),
    )
    finish_times = {a.task.label: a.finish for a in finished}
    clocks: dict[str, dict] = {}
    machine_clock: dict[int, dict] = {}
    violations: list[str] = []
    for attempt in finished:
        label = attempt.task.label
        clock = dict(machine_clock.get(attempt.machine_id, {}))
        for parent in parents.get(label, ()):
            parent_clock = clocks.get(parent)
            parent_finish = finish_times.get(parent)
            if parent_clock is None or parent_finish is None:
                violations.append(
                    f"task {label!r} ran before parent {parent!r} finished"
                )
                continue
            if parent_finish > attempt.start + 1e-9:
                violations.append(
                    f"task {label!r} started at {attempt.start:.3f} before "
                    f"parent {parent!r} finished at {parent_finish:.3f}"
                )
            for lane, count in parent_clock.items():
                clock[lane] = max(clock.get(lane, 0), count)
        clock[attempt.machine_id] = clock.get(attempt.machine_id, 0) + 1
        clocks[label] = clock
        machine_clock[attempt.machine_id] = clock
    return clocks, violations


def execute_dag(
    tasks: Sequence[SimTask],
    deps: dict[str, Sequence[str]],
    cluster: Cluster,
    scheduler: Scheduler,
    config: ExecutorConfig | None = None,
    chaos: "ChaosSchedule | None" = None,
    hooks: ExecutorHooks | None = None,
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Execute a task DAG on the event-driven executor.

    The dependency-aware analogue of :func:`~repro.cluster.waveexec.
    execute_two_waves`: no global barriers — readiness is topological,
    placement is the scheduling policy's (locality against block/cache
    placement comes in through each task's ``preferred_machine``), and
    ties break critical-path-first.
    """
    executor = DagExecutor(
        cluster, scheduler, config=config, chaos=chaos, hooks=hooks,
        telemetry=telemetry,
    )
    try:
        finish, assignments = executor.run_dag(tasks, deps)
    finally:
        executor.restore_straggles()
    map_finish = max(
        (a.finish for a in assignments if a.task.kind == "map"),
        default=finish,
    )
    return ExecutionReport(
        makespan=finish,
        map_finish=map_finish,
        assignments=assignments,
        attempts=executor.attempt_log,
        stats=executor.stats,
    )

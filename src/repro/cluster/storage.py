"""An HDFS-like replicated block store.

Input splits live as blocks replicated across machines; Map-task locality
("run the task where its block is") comes from here.  The placement policy
mirrors HDFS defaults: the first replica on a (stably) hashed home node,
the remaining replicas spread across distinct machines.  Machine failures
trigger re-replication onto survivors, keeping the replication factor as
long as enough machines remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Cluster
from repro.common.errors import SchedulingError
from repro.common.hashing import stable_hash
from repro.mapreduce.types import Split
from repro.telemetry import Telemetry


@dataclass
class BlockInfo:
    """Where one split's block currently lives."""

    split_uid: int
    size: float
    replicas: list[int] = field(default_factory=list)


class BlockStore:
    """Cluster-wide replicated storage of input splits."""

    def __init__(
        self,
        cluster: Cluster,
        replication: int = 3,
        telemetry: Telemetry | None = None,
    ) -> None:
        if replication <= 0:
            raise ValueError(f"replication must be positive, got {replication}")
        self.cluster = cluster
        self.replication = replication
        #: Telemetry backbone to emit replication events/counters into.
        self.telemetry = telemetry
        self._blocks: dict[int, BlockInfo] = {}
        #: Abstract bytes copied by re-replication after failures.
        self.repair_traffic = 0.0
        #: Map-locality outcomes of ``preferred_machine`` lookups.
        self.locality_hits = 0
        self.locality_misses = 0

    @property
    def locality_hit_rate(self) -> float:
        """Fraction of locality lookups that found an alive replica."""
        lookups = self.locality_hits + self.locality_misses
        return self.locality_hits / lookups if lookups else 0.0

    # -- writes -------------------------------------------------------------

    def store_split(self, split: Split) -> BlockInfo:
        """Place a split's block; idempotent for an already-stored split."""
        existing = self._blocks.get(split.uid)
        if existing is not None:
            return existing
        info = BlockInfo(split_uid=split.uid, size=float(len(split)))
        info.replicas = self._place(split.uid)
        self._blocks[split.uid] = info
        return info

    def store_all(self, splits) -> None:
        for split in splits:
            self.store_split(split)

    def drop_split(self, split_uid: int) -> None:
        self._blocks.pop(split_uid, None)

    # -- reads ---------------------------------------------------------------

    def replicas_of(self, split_uid: int) -> list[int]:
        info = self._blocks.get(split_uid)
        return list(info.replicas) if info else []

    def preferred_machine(self, split_uid: int) -> int | None:
        """The first *alive* replica holder — Map locality target."""
        for machine_id in self.replicas_of(split_uid):
            if self.cluster.machine(machine_id).alive:
                self.locality_hits += 1
                return machine_id
        self.locality_misses += 1
        return None

    def is_local(self, split_uid: int, machine_id: int) -> bool:
        return machine_id in self.replicas_of(split_uid)

    def blocks_on(self, machine_id: int) -> list[int]:
        return [
            uid
            for uid, info in self._blocks.items()
            if machine_id in info.replicas
        ]

    def total_blocks(self) -> int:
        return len(self._blocks)

    def stored_bytes(self) -> float:
        return sum(info.size * len(info.replicas) for info in self._blocks.values())

    # -- failure handling ------------------------------------------------------

    def on_machine_failure(self, machine_id: int) -> int:
        """Re-replicate blocks that lost a replica; returns how many."""
        repaired = 0
        for info in self._blocks.values():
            if machine_id not in info.replicas:
                continue
            info.replicas.remove(machine_id)
            replacement = self._pick_new_replica(info)
            if replacement is not None:
                info.replicas.append(replacement)
                self.repair_traffic += info.size
                repaired += 1
                if self.telemetry is not None:
                    self.telemetry.count("storage.repair_traffic", delta=info.size)
        if self.telemetry is not None and repaired:
            self.telemetry.instant(
                "storage.re_replicate", machine=machine_id, blocks=repaired
            )
        return repaired

    def repair(self) -> int:
        """Restore full replication for every under-replicated block.

        Unlike :meth:`on_machine_failure` (which handles one known crash),
        this sweeps all blocks: replicas on currently-dead machines are
        dropped and replacements are placed until the replication factor
        is met or no distinct alive machine remains.  Returns the number
        of new copies made; the bytes moved accrue to ``repair_traffic``.
        """
        repaired = 0
        for info in self._blocks.values():
            info.replicas = [
                m for m in info.replicas if self.cluster.machine(m).alive
            ]
            while len(info.replicas) < self.replication:
                replacement = self._pick_new_replica(info)
                if replacement is None:
                    break
                info.replicas.append(replacement)
                self.repair_traffic += info.size
                repaired += 1
                if self.telemetry is not None:
                    self.telemetry.count("storage.repair_traffic", delta=info.size)
        if self.telemetry is not None and repaired:
            self.telemetry.instant("storage.re_replicate", blocks=repaired)
        return repaired

    # -- placement ----------------------------------------------------------------

    def _place(self, split_uid: int) -> list[int]:
        alive = [m.machine_id for m in self.cluster.alive_machines()]
        count = min(self.replication, len(alive))
        home_index = stable_hash(split_uid, salt="block-home") % len(alive)
        replicas = []
        for offset in range(count):
            replicas.append(alive[(home_index + offset) % len(alive)])
        return replicas

    def _pick_new_replica(self, info: BlockInfo) -> int | None:
        try:
            alive = [m.machine_id for m in self.cluster.alive_machines()]
        except SchedulingError:
            return None
        candidates = [m for m in alive if m not in info.replicas]
        if not candidates:
            return None
        index = stable_hash(
            (info.split_uid, tuple(info.replicas)), salt="rereplica"
        ) % len(candidates)
        return candidates[index]

"""A minimal discrete-event simulation core.

The scheduler simulations are wave-structured (maps, then reduces), so most
of the heavy lifting is a priority queue of slot-free events; this module
provides that queue plus a monotonic clock with validation, shared by the
executor and the fault injector.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        if when < self._now:
            raise ValueError(
                f"time cannot go backwards: at {self._now}, asked for {when}"
            )
        self._now = when

    def reset(self) -> None:
        self._now = 0.0


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """A stable priority queue of timed events (FIFO within equal times)."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()

    def push(self, when: float, payload: Any) -> None:
        if when < 0:
            raise ValueError(f"event time must be non-negative, got {when}")
        heapq.heappush(self._heap, _Event(when, next(self._counter), payload))

    def pop(self) -> tuple[float, Any]:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        return event.when, event.payload

    def peek_time(self) -> float | None:
        return self._heap[0].when if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

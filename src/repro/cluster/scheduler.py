"""Task scheduling policies and the wave simulator.

Three policies from §6:

* :class:`HadoopScheduler` — the vanilla policy: Map tasks respect input
  locality; Reduce tasks take the first available slot anywhere, paying a
  network fetch for memoized state left on another machine.
* :class:`MemoizationScheduler` — strict locality for memoized state: a
  Reduce task waits for a slot on the machine holding its memoized results,
  even if that machine straggles.
* :class:`HybridScheduler` — Slider's scheduler: prefer the memoized
  location, but migrate (paying the fetch) when that machine is detected to
  be slow or backed up.

The simulator performs greedy list scheduling over slot-free events and
returns the wave makespan — the *time* metric of the evaluation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.machine import Cluster
from repro.cluster.simulation import EventQueue


@dataclass
class SimTask:
    """A schedulable task: cost in work units, plus data affinity.

    ``preferred_machine`` is where this task's input (split replica or
    memoized state) lives; ``fetch_bytes`` is how much must cross the
    network when it runs elsewhere.
    """

    label: str
    cost: float
    preferred_machine: int | None = None
    fetch_bytes: float = 0.0
    kind: str = "task"


@dataclass
class Assignment:
    task: SimTask
    machine_id: int
    start: float
    finish: float
    fetched: bool


class Scheduler(ABC):
    """Chooses a machine (and implicitly a start time) for each task."""

    name = "scheduler"

    @abstractmethod
    def choose(
        self,
        task: SimTask,
        free_times: list[list[float]],
        cluster: Cluster,
    ) -> tuple[int, int]:
        """Return (machine_id, slot_index) for ``task``.

        ``free_times[m][s]`` is the time slot ``s`` of machine ``m`` becomes
        free.  Dead machines have empty slot lists.
        """

    @staticmethod
    def _earliest(free_times: list[list[float]]) -> tuple[int, int]:
        best: tuple[float, int, int] | None = None
        for machine_id, slots in enumerate(free_times):
            for slot_index, when in enumerate(slots):
                key = (when, machine_id, slot_index)
                if best is None or key < best:
                    best = key
        if best is None:
            raise ValueError("no schedulable slots")
        return best[1], best[2]

    @staticmethod
    def _earliest_on(
        machine_id: int, free_times: list[list[float]]
    ) -> tuple[int, int] | None:
        slots = free_times[machine_id]
        if not slots:
            return None
        slot_index = min(range(len(slots)), key=lambda s: slots[s])
        return machine_id, slot_index


class HadoopScheduler(Scheduler):
    """Locality for Maps, first-free-slot-anywhere for Reduces (§6).

    "First available" in Hadoop is arbitrary with respect to machine
    identity (heartbeat order), so ties between equally-free slots are
    broken by a stable hash of (task, machine) rather than by machine id —
    otherwise the simulation would deterministically pile tasks onto
    machine 0.
    """

    name = "hadoop"

    def choose(self, task, free_times, cluster):
        if task.kind == "map" and task.preferred_machine is not None:
            local = self._earliest_on(task.preferred_machine, free_times)
            global_best = self._first_available(task, free_times)
            if local is not None:
                # Hadoop's delay-scheduling style preference: take the local
                # slot unless it is badly backed up.
                local_free = free_times[local[0]][local[1]]
                global_free = free_times[global_best[0]][global_best[1]]
                if local_free <= global_free + 1.0:
                    return local
            return global_best
        return self._first_available(task, free_times)

    @staticmethod
    def _first_available(task, free_times) -> tuple[int, int]:
        from repro.common.hashing import stable_hash

        best: tuple[float, int, int, int] | None = None
        for machine_id, slots in enumerate(free_times):
            for slot_index, when in enumerate(slots):
                tiebreak = stable_hash(
                    (task.label, machine_id, slot_index), salt="hb"
                )
                key = (when, tiebreak, machine_id, slot_index)
                if best is None or key < best:
                    best = key
        if best is None:
            raise ValueError("no schedulable slots")
        return best[2], best[3]


class MemoizationScheduler(Scheduler):
    """Strict affinity to the machine holding memoized state."""

    name = "memoization"

    def choose(self, task, free_times, cluster):
        if task.preferred_machine is not None:
            local = self._earliest_on(task.preferred_machine, free_times)
            if local is not None:
                return local
        return self._earliest(free_times)


class HybridScheduler(Scheduler):
    """Slider's scheduler: memoization locality with straggler migration.

    Estimates per-slot finish times (including the fetch penalty for
    running away from the memoized state).  The task stays local unless a
    remote slot would finish more than ``patience`` seconds sooner — which
    happens exactly when the preferred machine is slow (a straggler) or
    backed up.
    """

    name = "hybrid"

    def __init__(self, patience: float = 1.0):
        self.patience = patience

    def choose(self, task, free_times, cluster):
        best: tuple[float, int, int] | None = None
        local: tuple[float, int, int] | None = None
        for machine_id, slots in enumerate(free_times):
            if not slots:
                continue
            machine = cluster.machine(machine_id)
            for slot_index, free in enumerate(slots):
                finish = free + machine.duration_for(task.cost)
                if (
                    task.preferred_machine is not None
                    and machine_id != task.preferred_machine
                ):
                    finish += (
                        task.fetch_bytes * cluster.config.network_cost_per_byte
                    )
                key = (finish, machine_id, slot_index)
                if best is None or key < best:
                    best = key
                if machine_id == task.preferred_machine and (
                    local is None or key < local
                ):
                    local = key
        if best is None:
            raise ValueError("no schedulable slots")
        if local is not None and local[0] <= best[0] + self.patience:
            return local[1], local[2]
        return best[1], best[2]


def simulate_wave(
    tasks: Sequence[SimTask],
    cluster: Cluster,
    scheduler: Scheduler,
    start_time: float = 0.0,
) -> tuple[float, list[Assignment]]:
    """One fault-free task wave; returns (makespan, log).

    Thin wrapper over the event-driven executor
    (:mod:`repro.cluster.executor`) with an empty fault schedule, which
    reproduces the greedy list-scheduling plan exactly: tasks are
    considered in longest-processing-time order and each policy's
    ``choose()`` sees the same projected free-time matrix the greedy
    planner used.
    """
    from repro.cluster.executor import WaveExecutor

    executor = WaveExecutor(cluster, scheduler, start_time=start_time)
    return executor.run(tasks)


def simulate_two_waves(
    map_tasks: Sequence[SimTask],
    reduce_tasks: Sequence[SimTask],
    cluster: Cluster,
    scheduler: Scheduler,
) -> tuple[float, list[Assignment]]:
    """Maps, a shuffle barrier, then reduces — one MapReduce job's time."""
    from repro.cluster.executor import WaveExecutor

    executor = WaveExecutor(cluster, scheduler)
    map_finish, map_log = executor.run(map_tasks)
    reduce_finish, reduce_log = executor.run(reduce_tasks)
    return reduce_finish, map_log + reduce_log


# The EventQueue/SimClock pair is driven by repro.cluster.executor, which
# turns these policies' plans into fault-tolerant attempt execution
# (mid-wave crashes, retries, speculation); re-exported for convenience.
__all__ = [
    "SimTask",
    "Assignment",
    "Scheduler",
    "HadoopScheduler",
    "MemoizationScheduler",
    "HybridScheduler",
    "simulate_wave",
    "simulate_two_waves",
    "EventQueue",
]

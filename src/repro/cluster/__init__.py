"""Simulated cluster substrate (§6).

The paper runs on a 25-machine Hadoop cluster; this package replaces it with
a deterministic discrete-event simulation that models the pieces Slider's
architecture adds or depends on:

* machines with task slots and heterogeneous speeds (stragglers);
* schedulers — the vanilla Hadoop scheduler, a strict memoization-aware
  scheduler, and Slider's hybrid scheduler with straggler migration;
* the in-memory distributed memoization cache with its master index,
  fault-tolerant replicated persistence, and shim I/O layer;
* a garbage collector bounding memoization storage;
* fault injection (machine crashes) to exercise the fault-tolerance path.
"""

from repro.cluster.cache import (
    CacheConfig,
    DistributedMemoCache,
    GarbageCollector,
    ReadStats,
)
from repro.cluster.machine import Cluster, ClusterConfig, Machine
from repro.cluster.scheduler import (
    HadoopScheduler,
    HybridScheduler,
    MemoizationScheduler,
    Scheduler,
    SimTask,
    simulate_wave,
    simulate_two_waves,
)
from repro.cluster.simulation import EventQueue, SimClock

__all__ = [
    "CacheConfig",
    "DistributedMemoCache",
    "GarbageCollector",
    "ReadStats",
    "Cluster",
    "ClusterConfig",
    "Machine",
    "HadoopScheduler",
    "HybridScheduler",
    "MemoizationScheduler",
    "Scheduler",
    "SimTask",
    "simulate_wave",
    "simulate_two_waves",
    "EventQueue",
    "SimClock",
]

"""Simulated cluster substrate (§6).

The paper runs on a 25-machine Hadoop cluster; this package replaces it with
a deterministic discrete-event simulation that models the pieces Slider's
architecture adds or depends on:

* machines with task slots and heterogeneous speeds (stragglers);
* schedulers — the vanilla Hadoop scheduler, a strict memoization-aware
  scheduler, and Slider's hybrid scheduler with straggler migration;
* an event-driven task-attempt executor with mid-wave fault tolerance:
  heartbeat-based crash detection, retries with exponential backoff, and
  LATE-style speculative execution;
* a chaos layer of declarative, seeded fault schedules (crashes,
  transient attempt failures, straggle episodes);
* the in-memory distributed memoization cache with its master index,
  fault-tolerant replicated persistence, shim I/O layer, and replica
  repair after crashes;
* a garbage collector bounding memoization storage;
* fault injection (machine crashes) to exercise the fault-tolerance path.
"""

from repro.cluster.cache import (
    CacheConfig,
    DistributedMemoCache,
    GarbageCollector,
    ReadStats,
)
from repro.cluster.chaos import (
    ChaosPlan,
    ChaosSchedule,
    MachineCrash,
    StraggleEpisode,
    TransientFaults,
)
from repro.cluster.executor import (
    AttemptState,
    DagExecutor,
    ExecutionReport,
    ExecutorConfig,
    ExecutorHooks,
    RecoveryStats,
    TaskAttempt,
    WaveExecutor,
    critical_path_priority,
    execute_dag,
    execute_two_waves,
    execute_wave,
)
from repro.cluster.machine import Cluster, ClusterConfig, Machine
from repro.cluster.scheduler import (
    HadoopScheduler,
    HybridScheduler,
    MemoizationScheduler,
    Scheduler,
    SimTask,
    simulate_wave,
    simulate_two_waves,
)
from repro.cluster.simulation import EventQueue, SimClock

__all__ = [
    "CacheConfig",
    "DistributedMemoCache",
    "GarbageCollector",
    "ReadStats",
    "ChaosPlan",
    "ChaosSchedule",
    "MachineCrash",
    "StraggleEpisode",
    "TransientFaults",
    "AttemptState",
    "DagExecutor",
    "ExecutionReport",
    "ExecutorConfig",
    "ExecutorHooks",
    "RecoveryStats",
    "TaskAttempt",
    "WaveExecutor",
    "critical_path_priority",
    "execute_dag",
    "execute_wave",
    "execute_two_waves",
    "Cluster",
    "ClusterConfig",
    "Machine",
    "HadoopScheduler",
    "HybridScheduler",
    "MemoizationScheduler",
    "Scheduler",
    "SimTask",
    "simulate_wave",
    "simulate_two_waves",
    "EventQueue",
    "SimClock",
]

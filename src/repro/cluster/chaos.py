"""Declarative fault schedules — the chaos layer over the executor.

A :class:`ChaosSchedule` describes everything that goes wrong during one
simulated execution: machines crashing mid-wave at absolute sim times
(optionally rejoining later), transient per-attempt task failures, and
transient straggle episodes.  Random schedules are drawn from seeded
:class:`~repro.common.rng.RngStream`\\ s, so the same seed always yields
the same fault pattern and therefore the same recovery trace.

A :class:`ChaosPlan` maps incremental run indices to schedules, the
chaos-era analogue of :class:`~repro.cluster.faults.FaultPlan`: feed it
to :class:`~repro.slider.system.Slider` and every run's time simulation
executes under that run's faults, while outputs stay bit-identical to
the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Cluster
from repro.common.rng import RngStream


@dataclass(frozen=True)
class MachineCrash:
    """Machine ``machine_id`` dies at ``time``; rejoins at ``recover_at``."""

    time: float
    machine_id: int
    recover_at: float | None = None


@dataclass(frozen=True)
class StraggleEpisode:
    """Machine ``machine_id`` runs at ``factor`` speed in [start, end)."""

    machine_id: int
    start: float
    end: float
    factor: float = 0.25


@dataclass(frozen=True)
class CorruptionEvent:
    """Flip ``count`` memoized entries at the start of the run.

    Victims are drawn deterministically (seeded by the schedule seed and
    ``salt``) from the engine's retained state: tree memo tables, position
    caches, and the map memo.  Corruption never changes outputs — the
    recovery layer detects the bad fingerprints, drops the poisoned
    subtrees, and recomputes, charging the repair as work.
    """

    count: int = 1
    #: Derives independent victim choices for multiple events in one run.
    salt: int = 0

    def choose(self, candidates: list, seed: int) -> list:
        """Pick up to ``count`` victims from ``candidates``, stably."""
        if not candidates:
            return []
        stream = RngStream(seed, f"chaos/corruption/{self.salt}")
        pool = list(candidates)
        picks = []
        for _ in range(min(self.count, len(pool))):
            index = int(stream.integers(0, len(pool)))
            picks.append(pool.pop(index))
        return picks


@dataclass(frozen=True)
class TransientFaults:
    """Attempt-level failures: each attempt dies with ``probability``,
    after ``failure_fraction`` of its expected duration has elapsed."""

    probability: float = 0.0
    failure_fraction: float = 0.5


@dataclass
class ChaosSchedule:
    """Every fault injected into one simulated execution."""

    crashes: list[MachineCrash] = field(default_factory=list)
    straggles: list[StraggleEpisode] = field(default_factory=list)
    transient: TransientFaults | None = None
    #: Memo-entry corruption injected before the run starts.  Orthogonal to
    #: the time-affecting faults above: :meth:`is_empty` ignores it, so a
    #: corruption-only schedule prices time on the calm path while the
    #: lifecycle layer still injects (and repairs) the flipped entries.
    corruptions: list[CorruptionEvent] = field(default_factory=list)
    seed: int = 0
    #: Revive chaos-crashed machines before the next incremental run
    #: (mirrors FaultInjector's ``heal``).
    heal: bool = True

    def for_run(self, run_index: int) -> "ChaosSchedule | None":
        """A plain schedule applies identically to every run."""
        return self

    def is_empty(self) -> bool:
        return (
            not self.crashes
            and not self.straggles
            and (self.transient is None or self.transient.probability <= 0)
        )

    # -- executor callbacks -------------------------------------------------

    def attempt_fails(self, label: str, attempt_number: int) -> bool:
        """Deterministic per-attempt failure coin.

        Each (task, attempt) pair gets its own derived stream, so the
        verdict is independent of event-processing order — a requirement
        for reproducible recovery traces.
        """
        if self.transient is None or self.transient.probability <= 0:
            return False
        stream = RngStream(
            self.seed, f"chaos/transient/{label}/{attempt_number}"
        )
        return stream.coin(self.transient.probability)

    def failure_fraction(self) -> float:
        if self.transient is None:
            return 0.5
        return self.transient.failure_fraction

    # -- construction -------------------------------------------------------

    @staticmethod
    def random(
        cluster: Cluster,
        seed: int,
        horizon: float,
        crash_probability: float = 0.5,
        max_crashes: int = 1,
        recover_probability: float = 0.5,
        straggle_probability: float = 0.3,
        transient_rate: float = 0.0,
    ) -> "ChaosSchedule":
        """Draw one schedule with fault times inside ``[0, horizon)``.

        ``max_crashes`` bounds simultaneous deaths so that, with the
        default replication factor of 2, at least one persisted copy of
        every memoized object stays reachable.
        """
        rng = RngStream(seed, "chaos")
        machine_ids = [m.machine_id for m in cluster.machines]
        crashes: list[MachineCrash] = []
        crash_rng = rng.child("crashes")
        limit = min(max_crashes, max(0, len(machine_ids) - 1))
        for _ in range(limit):
            if not crash_rng.coin(crash_probability):
                continue
            victims = [m for m in machine_ids
                       if m not in {c.machine_id for c in crashes}]
            victim = int(crash_rng.choice(victims))
            when = float(crash_rng.uniform(0.0, horizon))
            recover_at = None
            if crash_rng.coin(recover_probability):
                recover_at = when + float(
                    crash_rng.uniform(0.1 * horizon, 0.5 * horizon)
                )
            crashes.append(MachineCrash(when, victim, recover_at))
        straggles: list[StraggleEpisode] = []
        straggle_rng = rng.child("straggles")
        if straggle_rng.coin(straggle_probability):
            victim = int(straggle_rng.choice(machine_ids))
            start = float(straggle_rng.uniform(0.0, 0.5 * horizon))
            end = start + float(straggle_rng.uniform(0.1, 1.0) * horizon)
            factor = float(straggle_rng.uniform(0.1, 0.6))
            straggles.append(StraggleEpisode(victim, start, end, factor))
        transient = (
            TransientFaults(probability=transient_rate)
            if transient_rate > 0
            else None
        )
        return ChaosSchedule(
            crashes=crashes,
            straggles=straggles,
            transient=transient,
            seed=seed,
        )


@dataclass
class ChaosPlan:
    """Per-incremental-run chaos: run index -> schedule (None = calm run)."""

    schedules: dict[int, ChaosSchedule] = field(default_factory=dict)
    heal: bool = True

    def for_run(self, run_index: int) -> ChaosSchedule | None:
        return self.schedules.get(run_index)

    @staticmethod
    def random(
        cluster: Cluster,
        runs: int,
        seed: int,
        horizon: float,
        **kwargs,
    ) -> "ChaosPlan":
        """Independent random chaos for each of ``runs`` incremental runs."""
        schedules = {}
        for run_index in range(runs):
            schedule = ChaosSchedule.random(
                cluster, seed * 10_007 + run_index, horizon, **kwargs
            )
            if not schedule.is_empty():
                schedules[run_index] = schedule
        return ChaosPlan(schedules)

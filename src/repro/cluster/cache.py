"""The distributed memoization layer (§6).

Three cooperating pieces, mirroring Figure 6:

* an **in-memory distributed cache**: each worker holds memoized partitions
  in RAM; a master index maps content ids to owner machines;
* a **fault-tolerant memoization layer**: every stored object is also
  replicated to the persistent stores of two machines, so a crash costs a
  slower read instead of a recomputation;
* a **shim I/O layer**: reads go to memory when possible and transparently
  fall back to a persistent replica, accumulating the read-time statistics
  that Table 2 reports;
* a **garbage collector** at the master that drops objects that fell out of
  the current window (or enforces a user-defined budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Cluster
from repro.common.errors import CacheMissError
from repro.common.hashing import stable_hash
from repro.core.memo import MemoBacking
from repro.core.partition import Partition
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class CacheConfig:
    """Cost knobs for the shim I/O layer (abstract seconds per object size).

    ``lookup_overhead`` is the fixed per-read cost of consulting the master
    index, paid regardless of which layer serves the object — it is why
    small-object reads benefit less from in-memory caching than large-object
    reads (Table 2's per-application spread).
    """

    memory_read_cost: float = 0.0015
    disk_read_cost: float = 0.003
    network_read_cost: float = 0.002
    lookup_overhead: float = 0.005
    replicas: int = 2
    in_memory_enabled: bool = True


@dataclass
class ReadStats:
    """Where reads were served from, and the simulated time they took.

    Re-replication traffic (``repair()``) is charged into ``read_time``
    alongside the reads themselves, so Table 2's read-time column shows
    the full cost of keeping memoized state durable.
    """

    memory_reads: int = 0
    fallback_reads: int = 0
    misses: int = 0
    read_time: float = 0.0
    repaired_objects: int = 0
    repair_bytes: float = 0.0

    def total_reads(self) -> int:
        return self.memory_reads + self.fallback_reads

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory; 0.0 before any lookup."""
        lookups = self.memory_reads + self.fallback_reads + self.misses
        return self.memory_reads / lookups if lookups else 0.0


#: Public alias: these *are* the cache's statistics; ``ReadStats`` is the
#: historical name kept for existing call sites.
CacheStats = ReadStats


class DistributedMemoCache(MemoBacking):
    """Cluster-wide memoization store with master index and replicas.

    Implements :class:`~repro.core.memo.MemoBacking`, so a tree's
    MemoTable can be backed by it transparently: local tree misses fall
    through to this layer, and stores write through to it.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: CacheConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or CacheConfig()
        #: Telemetry backbone to mirror hit/miss/repair counters into.
        self.telemetry = telemetry
        #: Per-machine in-memory stores: machine_id -> {uid: partition}.
        self._memory: dict[int, dict[int, Partition]] = {
            m.machine_id: {} for m in cluster.machines
        }
        #: Per-machine persistent stores (survive crashes).
        self._disk: dict[int, dict[int, Partition]] = {
            m.machine_id: {} for m in cluster.machines
        }
        #: Master index: uid -> owner machine id.
        self._index: dict[int, int] = {}
        self.stats = ReadStats()

    # -- placement ---------------------------------------------------------

    def owner_of(self, uid: int) -> int | None:
        """The machine currently owning ``uid`` in memory (if any)."""
        return self._index.get(uid)

    def _place(self, uid: int) -> int:
        alive = self.cluster.alive_machines()
        return alive[stable_hash(uid, salt="place") % len(alive)].machine_id

    def _replica_machines(self, uid: int, owner: int) -> list[int]:
        machines = [m.machine_id for m in self.cluster.machines]
        replicas: list[int] = []
        cursor = stable_hash(uid, salt="replica") % len(machines)
        while len(replicas) < min(self.config.replicas, len(machines)):
            candidate = machines[cursor % len(machines)]
            if candidate != owner and candidate not in replicas:
                replicas.append(candidate)
            cursor += 1
        return replicas

    # -- MemoBacking interface ----------------------------------------------

    def put(self, uid: int, value: Partition) -> None:
        owner = self._place(uid)
        if self.config.in_memory_enabled:
            self._memory[owner][uid] = value
        self._index[uid] = owner
        for replica in self._replica_machines(uid, owner):
            self._disk[replica][uid] = value

    def fetch(self, uid: int) -> Partition | None:
        owner = self._index.get(uid)
        if owner is not None and self.cluster.machine(owner).alive:
            found = self._memory[owner].get(uid)
            if found is not None:
                self.stats.memory_reads += 1
                self.stats.read_time += (
                    self.config.lookup_overhead
                    + self.config.memory_read_cost * max(1, len(found))
                )
                if self.telemetry is not None:
                    self.telemetry.count("cache.memory_reads")
                return found
        # Fall back to a persistent replica on any alive machine.
        for machine in self.cluster.machines:
            if not machine.alive:
                continue
            found = self._disk[machine.machine_id].get(uid)
            if found is not None:
                self.stats.fallback_reads += 1
                self.stats.read_time += self.config.lookup_overhead + (
                    self.config.disk_read_cost + self.config.network_read_cost
                ) * max(1, len(found))
                if self.telemetry is not None:
                    self.telemetry.count("cache.fallback_reads")
                # Promote back into memory for future reads.
                if self.config.in_memory_enabled:
                    new_owner = self._place(uid)
                    self._memory[new_owner][uid] = found
                    self._index[uid] = new_owner
                return found
        self.stats.misses += 1
        if self.telemetry is not None:
            self.telemetry.count("cache.misses")
        return None

    def fetch_or_raise(self, uid: int) -> Partition:
        found = self.fetch(uid)
        if found is None:
            raise CacheMissError(f"object {uid:#x} not present in any layer")
        return found

    def delete(self, uid: int) -> None:
        owner = self._index.pop(uid, None)
        if owner is not None:
            self._memory[owner].pop(uid, None)
        for store in self._memory.values():
            store.pop(uid, None)
        for store in self._disk.values():
            store.pop(uid, None)

    # -- fault handling ------------------------------------------------------

    def on_machine_failure(self, machine_id: int) -> int:
        """Drop the in-memory contents of a crashed machine.

        Persistent replicas survive, so subsequent fetches succeed via the
        fallback path.  Returns how many in-memory objects were lost.
        """
        lost = len(self._memory[machine_id])
        self._memory[machine_id] = {}
        return lost

    def repair(self) -> float:
        """Re-replicate persisted objects that lost disk copies.

        After a crash the objects whose replica set intersected the dead
        machine are under-replicated; the master copies each from a
        surviving replica onto fresh alive machines (walking the same
        stable replica ring as initial placement).  Copy traffic is
        charged to the read-time stats — one disk read plus a network
        transfer per copy — so recovery cost shows up in Table 2.
        Returns the abstract bytes copied.
        """
        alive = {m.machine_id for m in self.cluster.machines if m.alive}
        if not alive:
            return 0.0
        machines = [m.machine_id for m in self.cluster.machines]
        target = min(self.config.replicas, len(alive))
        holders: dict[int, list[int]] = {}
        for machine_id, store in self._disk.items():
            for uid in store:
                holders.setdefault(uid, []).append(machine_id)
        copied = 0.0
        for uid in sorted(holders):
            live_holders = sorted(m for m in holders[uid] if m in alive)
            if not live_holders or len(live_holders) >= target:
                continue
            value = self._disk[live_holders[0]][uid]
            size = max(1.0, float(len(value)))
            cursor = stable_hash(uid, salt="replica") % len(machines)
            needed = target - len(live_holders)
            for _ in range(2 * len(machines)):
                if needed <= 0:
                    break
                candidate = machines[cursor % len(machines)]
                cursor += 1
                if candidate not in alive or candidate in live_holders:
                    continue
                self._disk[candidate][uid] = value
                live_holders.append(candidate)
                self.stats.repaired_objects += 1
                self.stats.repair_bytes += size
                self.stats.read_time += self.config.lookup_overhead + (
                    self.config.disk_read_cost + self.config.network_read_cost
                ) * size
                copied += size
                needed -= 1
        if self.telemetry is not None and copied:
            self.telemetry.count("cache.repair_bytes", delta=copied)
            self.telemetry.instant("cache.repair", bytes=copied)
        return copied

    # -- accounting ----------------------------------------------------------

    def total_objects(self) -> int:
        return len(self._index)

    def space(self) -> float:
        """Abstract size of all stored objects (memory + unique disk copies)."""
        seen: set[int] = set()
        size = 0.0
        for store in list(self._memory.values()) + list(self._disk.values()):
            for uid, value in store.items():
                if uid not in seen:
                    seen.add(uid)
                    size += max(1.0, float(len(value)))
        return size


@dataclass
class GarbageCollector:
    """Master-side GC over a DistributedMemoCache (§6).

    ``collect(live)`` drops everything outside the live set — the default
    policy of freeing objects that fell out of the current window.  An
    optional ``budget`` caps how many objects may be retained; when
    exceeded, the oldest-inserted objects are evicted first (a simple,
    deterministic user-defined policy).
    """

    cache: DistributedMemoCache
    budget: int | None = None
    collected: int = 0
    _insertion_order: list[int] = field(default_factory=list)

    def note_insertions(self, uids: list[int]) -> None:
        self._insertion_order.extend(uids)

    def collect(self, live_uids: set[int]) -> int:
        """Drop all objects not in ``live_uids``; returns how many."""
        dead = [uid for uid in list(self.cache._index) if uid not in live_uids]
        for uid in dead:
            self.cache.delete(uid)
        self.collected += len(dead)
        if self.cache.telemetry is not None and dead:
            self.cache.telemetry.count("cache.evictions", delta=len(dead))
        self._insertion_order = [
            uid for uid in self._insertion_order if uid in live_uids
        ]
        return len(dead)

    def enforce_budget(self) -> int:
        if self.budget is None:
            return 0
        excess = self.cache.total_objects() - self.budget
        dropped = 0
        while excess > 0 and self._insertion_order:
            uid = self._insertion_order.pop(0)
            if self.cache.owner_of(uid) is not None:
                self.cache.delete(uid)
                dropped += 1
                excess -= 1
        self.collected += dropped
        if self.cache.telemetry is not None and dropped:
            self.cache.telemetry.count("cache.evictions", delta=dropped)
        return dropped

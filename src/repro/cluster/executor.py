"""Compatibility facade over the executor package split.

The event-driven executor used to live here as one module; it is now
four, by concern:

* :mod:`repro.cluster.exec_types` — config, attempt/report records, hooks;
* :mod:`repro.cluster.waveexec` — the wave executor's planning and
  attempt event loop (fault handlers in :mod:`repro.cluster.exec_faults`);
* :mod:`repro.cluster.dagexec` — topological-readiness DAG execution;
* :mod:`repro.cluster.exec_api` — one-call ``execute_*`` entry points.

Every historical import path (``from repro.cluster.executor import ...``)
keeps working through this module.
"""

from __future__ import annotations

from repro.cluster.dagexec import DagExecutor, critical_path_priority, execute_dag
from repro.cluster.exec_types import (
    AttemptState,
    ExecutionReport,
    ExecutorConfig,
    ExecutorHooks,
    RecoveryStats,
    TaskAttempt,
)
from repro.cluster.exec_api import execute_two_waves, execute_wave
from repro.cluster.waveexec import WaveExecutor

__all__ = [
    "AttemptState",
    "DagExecutor",
    "ExecutionReport",
    "ExecutorConfig",
    "ExecutorHooks",
    "RecoveryStats",
    "TaskAttempt",
    "WaveExecutor",
    "critical_path_priority",
    "execute_dag",
    "execute_two_waves",
    "execute_wave",
]

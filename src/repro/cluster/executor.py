"""Event-driven task-attempt execution with mid-wave fault tolerance (§6).

The greedy list scheduler in :mod:`repro.cluster.scheduler` *plans* a wave
as if nothing ever fails.  This module *executes* waves: each task becomes
a sequence of **attempts** driven through the shared
:class:`~repro.cluster.simulation.EventQueue`/:class:`~repro.cluster.simulation.SimClock`.
The executor processes attempt-start, task-finish, transient-failure,
machine-crash, heartbeat-timeout (crash detection), machine-recover,
straggle-episode, and heartbeat (speculation) events:

* attempts on a crashed machine keep "running" as zombies until the
  master misses heartbeats for ``heartbeat_timeout`` seconds, then they
  are reaped and rescheduled with exponential backoff;
* a task whose attempts fail ``max_attempts`` times surfaces a typed
  :class:`~repro.common.errors.TaskFailedError`;
* slow attempts past a LATE-style progress threshold spawn speculative
  backups with first-finish-wins semantics (the loser is killed).

Execution separates *planning* from *running*.  Planning is the exact
greedy list-scheduling pass the old ``simulate_wave`` performed — tasks
in longest-processing-time order, each policy's ``choose()`` against the
evolving projected free-time matrix — producing per-slot queues of
committed attempts.  Running turns each commitment into timed events.
Any fault (transient failure, crash detection, recovery, straggle
episode, a speculative win) cancels every not-yet-started commitment and
replans it against the post-fault cluster.  Fault-free (no chaos,
speculation off) nothing ever invalidates the plan, so start times,
placements, and the makespan are *identical* to the greedy planner —
``simulate_wave`` is now a thin wrapper over this executor and existing
figures/tables are unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.cluster.machine import Cluster, Machine
from repro.cluster.scheduler import Assignment, Scheduler, SimTask
from repro.cluster.simulation import EventQueue, SimClock
from repro.common.errors import SchedulingError, TaskFailedError
from repro.common.hashing import stable_hash
from repro.telemetry import SpanKind, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.chaos import ChaosSchedule


class AttemptState(enum.Enum):
    """Lifecycle of one task attempt."""

    RUNNING = "running"
    FINISHED = "finished"
    #: Died to a transient (task-level) failure.
    FAILED = "failed"
    #: Was on a machine that crashed; reaped at detection time.
    LOST = "lost"
    #: Killed because a sibling attempt finished first.
    KILLED = "killed"


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for attempt execution, detection, retry, and speculation."""

    #: Seconds between master heartbeat scans (speculation cadence).
    heartbeat_interval: float = 1.0
    #: Seconds of missed heartbeats before a crashed machine's attempts
    #: are declared lost and rescheduled (the detection delay).
    heartbeat_timeout: float = 3.0
    #: Failed/lost attempts allowed per task before TaskFailedError.
    max_attempts: int = 4
    #: First retry waits this long; later retries back off exponentially.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    #: Enable LATE-style speculative backup attempts.
    speculation: bool = False
    #: An attempt is "late" when its machine runs the task this many
    #: times slower than a base-speed machine would.
    speculation_slowdown: float = 1.8
    #: Do not speculate before an attempt has run at least this long.
    speculation_min_elapsed: float = 0.5


@dataclass(eq=False)
class TaskAttempt:
    """One placement of a task on a (machine, slot), with its fate."""

    task: SimTask
    number: int
    machine_id: int
    slot_index: int
    start: float
    expected_finish: float
    epoch: int
    fetched: bool = False
    speculative: bool = False
    #: Dispatched to a crashed machine before the master noticed: it
    #: exists only in the master's imagination and can never finish.
    ghost: bool = False
    state: AttemptState = AttemptState.RUNNING
    finish: float | None = None


@dataclass
class RecoveryStats:
    """What fault tolerance cost during execution (the run report's view)."""

    attempts_started: int = 0
    attempts_finished: int = 0
    transient_failures: int = 0
    lost_attempts: int = 0
    crashes: int = 0
    crashes_detected: int = 0
    recoveries: int = 0
    #: Sum over lost attempts of (detection time - crash time).
    detection_delay: float = 0.0
    #: Total seconds tasks spent cooling off before retries.
    backoff_delay: float = 0.0
    #: Simulated seconds of execution thrown away by failures/crashes.
    wasted_work: float = 0.0
    speculative_attempts: int = 0
    speculative_wins: int = 0
    #: Runtime of attempts killed because a sibling won the race.
    speculative_waste: float = 0.0

    def re_executed_attempts(self) -> int:
        return self.transient_failures + self.lost_attempts

    def as_dict(self) -> dict[str, float]:
        return {
            "attempts_started": float(self.attempts_started),
            "attempts_finished": float(self.attempts_finished),
            "transient_failures": float(self.transient_failures),
            "lost_attempts": float(self.lost_attempts),
            "re_executed_attempts": float(self.re_executed_attempts()),
            "crashes": float(self.crashes),
            "crashes_detected": float(self.crashes_detected),
            "recoveries": float(self.recoveries),
            "detection_delay": self.detection_delay,
            "backoff_delay": self.backoff_delay,
            "wasted_work": self.wasted_work,
            "speculative_attempts": float(self.speculative_attempts),
            "speculative_wins": float(self.speculative_wins),
            "speculative_waste": self.speculative_waste,
        }


@dataclass
class ExecutorHooks:
    """Callbacks into the storage layers, fired as faults unfold.

    Each receives ``(machine_id, sim_time)``.  ``on_crash`` fires when the
    machine physically dies (in-memory state loss happens now);
    ``on_detect`` fires when the master notices (re-replication repair
    belongs here); ``on_recover`` fires when the machine rejoins.
    """

    on_crash: Callable[[int, float], None] | None = None
    on_detect: Callable[[int, float], None] | None = None
    on_recover: Callable[[int, float], None] | None = None


@dataclass
class ExecutionReport:
    """Everything one (multi-wave) execution produced."""

    makespan: float
    map_finish: float
    assignments: list[Assignment]
    attempts: list[TaskAttempt]
    stats: RecoveryStats


@dataclass(eq=False)
class _TaskState:
    """Executor-side bookkeeping for one task across its attempts."""

    task: SimTask
    order: int
    failures: int = 0
    done: bool = False
    cooling: bool = False
    attempts: list[TaskAttempt] = field(default_factory=list)
    winner: Assignment | None = None

    def has_live_attempt(self) -> bool:
        return any(a.state is AttemptState.RUNNING for a in self.attempts)


@dataclass(eq=False)
class _Commitment:
    """A planned (not yet started) attempt: task -> slot at [start, finish)."""

    state: _TaskState
    machine_id: int
    slot_index: int
    start: float
    finish: float
    fetched: bool
    cancelled: bool = False


class WaveExecutor:
    """Executes task waves on a cluster, one event at a time.

    One executor instance may run several consecutive waves (``run`` is a
    barrier); the clock, pending chaos events, and machine visibility
    carry over, so a crash scheduled during the map wave is still being
    repaired while the reduce wave runs.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        config: ExecutorConfig | None = None,
        chaos: "ChaosSchedule | None" = None,
        hooks: ExecutorHooks | None = None,
        start_time: float = 0.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or ExecutorConfig()
        self.chaos = chaos
        self.hooks = hooks or ExecutorHooks()
        #: Telemetry backbone to emit attempt spans and fault events into;
        #: ``None`` keeps the executor silent (standalone/unit-test use).
        self.telemetry = telemetry
        self.clock = SimClock()
        if start_time:
            self.clock.advance_to(start_time)
        self.events = EventQueue()
        self.stats = RecoveryStats()
        self.attempt_log: list[TaskAttempt] = []
        #: Master's view: which machines it believes schedulable.  A
        #: crashed machine stays visible (and collects doomed dispatches)
        #: until the heartbeat timeout expires.
        self._visible: list[bool] = [m.alive for m in cluster.machines]
        #: Bumped on crash and on recover; attempts carry the epoch they
        #: started under, so stale finish events are recognisable.
        self._epoch: list[int] = [0] * len(cluster.machines)
        self._running: list[list[TaskAttempt | None]] = [
            [None] * m.slots for m in cluster.machines
        ]
        #: Planned-but-not-started commitments, per slot, in start order.
        self._queues: list[list[list[_Commitment]]] = [
            [[] for _ in range(m.slots)] for m in cluster.machines
        ]
        #: Attempts the master believes started on a machine that was in
        #: fact already dead; reaped at detection/recovery.
        self._ghosts: list[list[TaskAttempt]] = [
            [] for _ in cluster.machines
        ]
        self._owner: dict[TaskAttempt, _TaskState] = {}
        self._pending: list[_TaskState] = []
        self._unfinished: set[_TaskState] = set()
        self._heartbeat_pending = False
        self._straggle_originals: dict[int, float] = {}
        if chaos is not None:
            for crash in chaos.crashes:
                self.events.push(crash.time, ("crash", crash.machine_id))
                if crash.recover_at is not None:
                    self.events.push(
                        crash.recover_at, ("recover", crash.machine_id)
                    )
            for episode in chaos.straggles:
                self.events.push(
                    episode.start,
                    ("straggle_on", episode.machine_id, episode.factor),
                )
                self.events.push(
                    episode.end, ("straggle_off", episode.machine_id)
                )

    # -- public API ---------------------------------------------------------

    def run(self, tasks: Sequence[SimTask]) -> tuple[float, list[Assignment]]:
        """Execute one wave to completion (a barrier); returns
        ``(finish_time, assignments)`` for the wave's winning attempts,
        in the greedy planner's longest-processing-time order."""
        states = [
            _TaskState(task=task, order=index)
            for index, task in enumerate(
                sorted(tasks, key=lambda t: (-t.cost, t.label))
            )
        ]
        self._pending = list(states)
        self._unfinished = set(states)
        return self._drive(states)

    def _drive(
        self, states: list[_TaskState]
    ) -> tuple[float, list[Assignment]]:
        """Process events until every task in ``states`` has finished."""
        start = self.clock.now
        if self.config.speculation and states:
            self._schedule_heartbeat()
        self._plan()

        while self._unfinished:
            if not self.events:
                raise SchedulingError(
                    f"executor deadlocked: {len(self._pending)} pending "
                    "tasks, nothing running, and no future events"
                )
            when, payload = self.events.pop()
            self.clock.advance_to(when)
            self._handle(payload)

        finish = max(
            [start] + [s.winner.finish for s in states if s.winner is not None]
        )
        ordered = [s.winner for s in states if s.winner is not None]
        return finish, ordered

    def _task_completed(self, state: _TaskState) -> None:
        """Hook fired when a task's winning attempt finishes; the DAG
        executor overrides it to release dependents."""

    def restore_straggles(self) -> None:
        """Undo straggle episodes still open when execution ended."""
        for machine_id, original in self._straggle_originals.items():
            self.cluster.machine(machine_id).straggle = original
        self._straggle_originals.clear()

    # -- planning -----------------------------------------------------------

    def _plan_base(self) -> list[list[float]]:
        """The projected free-time matrix: idle slots free now, busy ones
        at their running attempt's expected finish, committed ones at the
        tail commitment's finish; invisible machines have no slots."""
        now = self.clock.now
        matrix: list[list[float]] = []
        for machine in self.cluster.machines:
            machine_id = machine.machine_id
            # Plans never target dead machines (the policies' choose()
            # assumes live ones, exactly as the greedy planner did); the
            # undetected-crash window still produces doomed dispatches
            # via commitments made before the crash.
            if not self._visible[machine_id] or not machine.alive:
                matrix.append([])
                continue
            row = []
            for slot_index in range(machine.slots):
                when = now
                attempt = self._running[machine_id][slot_index]
                if attempt is not None:
                    when = max(when, attempt.expected_finish)
                queue = self._queues[machine_id][slot_index]
                if queue:
                    when = max(when, queue[-1].finish)
                row.append(when)
            matrix.append(row)
        return matrix

    def _plan(self) -> None:
        """Greedy list scheduling of pending tasks onto slot queues.

        This is exactly the old ``simulate_wave`` loop: tasks in LPT
        order, each policy's ``choose()`` against the evolving free-time
        matrix — except commitments become timed start events instead of
        immediately final assignments.
        """
        if not self._pending:
            return
        free_times = self._plan_base()
        if not any(free_times):
            if self.events:
                return  # wait for a detection/recovery event to replan
            # All-dead cluster with no way out: let the policy raise
            # exactly as the greedy planner would have.
            self.scheduler.choose(
                self._pending[0].task, free_times, self.cluster
            )
            raise SchedulingError("no schedulable slots")
        for state in sorted(self._pending, key=lambda s: s.order):
            machine_id, slot_index = self.scheduler.choose(
                state.task, free_times, self.cluster
            )
            machine = self.cluster.machine(machine_id)
            task = state.task
            fetched = (
                task.preferred_machine is not None
                and task.preferred_machine != machine_id
            )
            start = free_times[machine_id][slot_index]
            finish = start + self._duration_on(machine, task, fetched)
            free_times[machine_id][slot_index] = finish
            commitment = _Commitment(
                state=state,
                machine_id=machine_id,
                slot_index=slot_index,
                start=start,
                finish=finish,
                fetched=fetched,
            )
            self._queues[machine_id][slot_index].append(commitment)
            self.events.push(start, ("start", commitment))
        self._pending.clear()

    def _replan(self) -> None:
        """Cancel every not-yet-started commitment and plan it afresh
        against the cluster as it looks right now."""
        for machine_queues in self._queues:
            for queue in machine_queues:
                for commitment in queue:
                    commitment.cancelled = True
                    state = commitment.state
                    if (
                        not state.done
                        and not state.cooling
                        and not state.has_live_attempt()
                        and state not in self._pending
                    ):
                        self._pending.append(state)
                queue.clear()
        self._plan()

    def _duration_on(
        self, machine: Machine, task: SimTask, fetched: bool
    ) -> float:
        if machine.alive:
            duration = machine.duration_for(task.cost)
        else:  # undetected-dead machine: the attempt is doomed anyway
            duration = task.cost / (machine.speed * machine.straggle)
        if fetched:
            duration += (
                task.fetch_bytes * self.cluster.config.network_cost_per_byte
            )
        return duration

    # -- attempt lifecycle --------------------------------------------------

    def _begin_attempt(
        self,
        state: _TaskState,
        machine_id: int,
        slot_index: int,
        fetched: bool,
        speculative: bool = False,
    ) -> TaskAttempt:
        machine = self.cluster.machine(machine_id)
        now = self.clock.now
        duration = self._duration_on(machine, state.task, fetched)
        attempt = TaskAttempt(
            task=state.task,
            number=len(state.attempts),
            machine_id=machine_id,
            slot_index=slot_index,
            start=now,
            expected_finish=now + duration,
            epoch=self._epoch[machine_id],
            fetched=fetched,
            speculative=speculative,
            ghost=not machine.alive,
        )
        state.attempts.append(attempt)
        self._owner[attempt] = state
        self.attempt_log.append(attempt)
        self.stats.attempts_started += 1
        if speculative:
            self.stats.speculative_attempts += 1
        if attempt.ghost:
            # Started into the void: no events will ever fire for it; the
            # detection sweep reaps it along with the machine's zombies.
            self._ghosts[machine_id].append(attempt)
            return attempt
        self._running[machine_id][slot_index] = attempt
        if self.chaos is not None and self.chaos.attempt_fails(
            state.task.label, attempt.number
        ):
            fail_at = now + duration * self.chaos.failure_fraction()
            self.events.push(fail_at, ("fail", attempt))
        else:
            self.events.push(attempt.expected_finish, ("finish", attempt))
        return attempt

    # -- event handling -----------------------------------------------------

    def _handle(self, payload: tuple) -> None:
        kind = payload[0]
        if kind == "start":
            self._on_start(payload[1])
        elif kind == "finish":
            self._on_finish(payload[1])
        elif kind == "fail":
            self._on_fail(payload[1])
        elif kind == "retry":
            self._on_retry(payload[1])
        elif kind == "crash":
            self._on_crash(payload[1])
        elif kind == "detect":
            self._on_detect(payload[1], payload[2])
        elif kind == "recover":
            self._on_recover(payload[1])
        elif kind == "heartbeat":
            self._on_heartbeat()
        elif kind == "straggle_on":
            self._on_straggle_on(payload[1], payload[2])
        elif kind == "straggle_off":
            self._on_straggle_off(payload[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event {kind!r}")

    def _attempt_event_is_stale(self, attempt: TaskAttempt) -> bool:
        machine = self.cluster.machine(attempt.machine_id)
        return (
            attempt.state is not AttemptState.RUNNING
            or not machine.alive
            or attempt.epoch != self._epoch[attempt.machine_id]
        )

    def _release_slot(self, attempt: TaskAttempt) -> None:
        slots = self._running[attempt.machine_id]
        if slots[attempt.slot_index] is attempt:
            slots[attempt.slot_index] = None

    def _on_start(self, commitment: _Commitment) -> None:
        if commitment.cancelled or commitment.state.done:
            return
        machine_id = commitment.machine_id
        slot_index = commitment.slot_index
        queue = self._queues[machine_id][slot_index]
        if commitment in queue:
            queue.remove(commitment)
        occupant = self._running[machine_id][slot_index]
        if (
            occupant is not None
            and occupant.expected_finish <= self.clock.now
            and not self._attempt_event_is_stale(occupant)
        ):
            # Start and predecessor-finish land on the same instant; the
            # finish must be applied first.  Its own queued event becomes
            # a no-op via the state check.
            self._on_finish(occupant)
            if commitment.cancelled or commitment.state.done:
                return
        if self._running[machine_id][slot_index] is not None:
            # The plan went stale (e.g. a zombie still holds the slot):
            # put the task back and replan everything.
            if commitment.state not in self._pending:
                self._pending.append(commitment.state)
            self._replan()
            return
        self._begin_attempt(
            commitment.state, machine_id, slot_index, commitment.fetched
        )

    def _record_attempt(self, attempt: TaskAttempt) -> None:
        """Emit a terminal attempt into the telemetry backbone, on its
        machine/slot trace lane with simulated-clock timestamps."""
        if self.telemetry is None or attempt.finish is None:
            return
        self.telemetry.record_span(
            f"{attempt.task.label}#{attempt.number}",
            SpanKind.ATTEMPT,
            start=attempt.start,
            end=attempt.finish,
            thread=f"m{attempt.machine_id}.s{attempt.slot_index}",
            task_kind=attempt.task.kind,
            state=attempt.state.value,
            speculative=attempt.speculative,
            ghost=attempt.ghost,
        )
        self.telemetry.count(
            f"executor.attempts.{attempt.state.value}", ts=attempt.finish
        )

    def _on_finish(self, attempt: TaskAttempt) -> None:
        if self._attempt_event_is_stale(attempt):
            return  # zombie on a crashed machine; the detect sweep reaps it
        now = self.clock.now
        attempt.state = AttemptState.FINISHED
        attempt.finish = now
        self._record_attempt(attempt)
        self._release_slot(attempt)
        self.stats.attempts_finished += 1
        state = self._owner[attempt]
        if state.done:
            return
        state.done = True
        self._unfinished.discard(state)
        if attempt.speculative:
            self.stats.speculative_wins += 1
        state.winner = Assignment(
            task=state.task,
            machine_id=attempt.machine_id,
            start=attempt.start,
            finish=now,
            fetched=attempt.fetched,
        )
        # First finish wins: kill the losing sibling attempts and hand
        # their slots to whoever the planner now prefers.
        killed = False
        for sibling in state.attempts:
            if sibling is attempt or sibling.state is not AttemptState.RUNNING:
                continue
            sibling.state = AttemptState.KILLED
            sibling.finish = now
            self._record_attempt(sibling)
            if not sibling.ghost:
                self._release_slot(sibling)
            self.stats.speculative_waste += max(0.0, now - sibling.start)
            killed = True
        if killed:
            self._replan()
        self._task_completed(state)

    def _on_fail(self, attempt: TaskAttempt) -> None:
        if self._attempt_event_is_stale(attempt):
            return
        now = self.clock.now
        attempt.state = AttemptState.FAILED
        attempt.finish = now
        self._record_attempt(attempt)
        self._release_slot(attempt)
        self.stats.transient_failures += 1
        self.stats.wasted_work += max(0.0, now - attempt.start)
        self._after_loss(self._owner[attempt])
        # The slot freed earlier than planned; successors can move up.
        self._replan()

    def _after_loss(self, state: _TaskState) -> None:
        """Count a failed/lost attempt; retry with backoff or give up."""
        state.failures += 1
        if state.done:
            return
        if state.has_live_attempt():
            return  # a sibling (speculative backup) may still win
        if state.failures >= self.config.max_attempts:
            raise TaskFailedError(state.task.label, state.failures)
        delay = self.config.backoff_base * (
            self.config.backoff_factor ** (state.failures - 1)
        )
        self.stats.backoff_delay += delay
        state.cooling = True
        self.events.push(self.clock.now + delay, ("retry", state))

    def _on_retry(self, state: _TaskState) -> None:
        state.cooling = False
        if state.done or state.has_live_attempt():
            return
        if state not in self._pending:
            self._pending.append(state)
        self._plan()

    def _on_crash(self, machine_id: int) -> None:
        machine = self.cluster.machine(machine_id)
        if not machine.alive:
            return
        self.cluster.kill(machine_id)
        self._epoch[machine_id] += 1
        self.stats.crashes += 1
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.crash", ts=self.clock.now, machine=machine_id
            )
            self.telemetry.count("executor.crashes", ts=self.clock.now)
        self.events.push(
            self.clock.now + self.config.heartbeat_timeout,
            ("detect", machine_id, self.clock.now),
        )
        if self.hooks.on_crash is not None:
            self.hooks.on_crash(machine_id, self.clock.now)

    def _reap_machine(self, machine_id: int, crash_time: float | None) -> None:
        """Reap attempts stranded on a crashed/restarted machine."""
        machine = self.cluster.machine(machine_id)
        now = self.clock.now
        stranded: list[TaskAttempt] = list(self._ghosts[machine_id])
        self._ghosts[machine_id].clear()
        for slot_index, attempt in enumerate(self._running[machine_id]):
            if attempt is None or attempt.state is not AttemptState.RUNNING:
                continue
            if machine.alive and attempt.epoch == self._epoch[machine_id]:
                continue  # started after the restart; still healthy
            self._running[machine_id][slot_index] = None
            stranded.append(attempt)
        for attempt in stranded:
            if attempt.state is not AttemptState.RUNNING:
                continue
            attempt.state = AttemptState.LOST
            attempt.finish = now
            self._record_attempt(attempt)
            self.stats.lost_attempts += 1
            if crash_time is not None:
                self.stats.detection_delay += now - crash_time
                self.stats.wasted_work += max(
                    0.0, crash_time - attempt.start
                )
            self._after_loss(self._owner[attempt])

    def _on_detect(self, machine_id: int, crash_time: float) -> None:
        machine = self.cluster.machine(machine_id)
        self.stats.crashes_detected += 1
        if not machine.alive:
            self._visible[machine_id] = False
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.detect",
                ts=self.clock.now,
                machine=machine_id,
                crash_time=crash_time,
            )
        self._reap_machine(machine_id, crash_time)
        if self.hooks.on_detect is not None:
            self.hooks.on_detect(machine_id, self.clock.now)
        self._replan()

    def _on_recover(self, machine_id: int) -> None:
        machine = self.cluster.machine(machine_id)
        if machine.alive:
            return
        self.cluster.revive(machine_id)
        self._epoch[machine_id] += 1
        self._visible[machine_id] = True
        self.stats.recoveries += 1
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.recover", ts=self.clock.now, machine=machine_id
            )
            self.telemetry.count("executor.recoveries", ts=self.clock.now)
        # A restart loses in-flight attempts immediately (the rejoining
        # worker reports no tasks); no detection delay applies.
        self._reap_machine(machine_id, None)
        if self.hooks.on_recover is not None:
            self.hooks.on_recover(machine_id, self.clock.now)
        self._replan()

    def _on_straggle_on(self, machine_id: int, factor: float) -> None:
        machine = self.cluster.machine(machine_id)
        self._straggle_originals.setdefault(machine_id, machine.straggle)
        machine.straggle = factor
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.straggle_on",
                ts=self.clock.now,
                machine=machine_id,
                factor=factor,
            )
        self._replan()

    def _on_straggle_off(self, machine_id: int) -> None:
        original = self._straggle_originals.pop(machine_id, 1.0)
        self.cluster.machine(machine_id).straggle = original
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.straggle_off", ts=self.clock.now, machine=machine_id
            )
        self._replan()

    # -- speculation --------------------------------------------------------

    def _schedule_heartbeat(self) -> None:
        if not self._heartbeat_pending:
            self._heartbeat_pending = True
            self.events.push(
                self.clock.now + self.config.heartbeat_interval,
                ("heartbeat",),
            )

    def _on_heartbeat(self) -> None:
        self._heartbeat_pending = False
        if self.config.speculation:
            self._speculate()
        anything_running = any(
            attempt is not None
            for slots in self._running
            for attempt in slots
        )
        if self._unfinished and (self.events or anything_running):
            self._schedule_heartbeat()

    def _speculate(self) -> None:
        """Spawn backups for attempts a base-speed machine would beat."""
        now = self.clock.now
        base_speed = self.cluster.config.base_speed
        for state in sorted(self._unfinished, key=lambda s: s.order):
            running = [
                a for a in state.attempts if a.state is AttemptState.RUNNING
            ]
            if len(running) != 1:
                continue  # nothing running yet, or a backup already exists
            attempt = running[0]
            if now - attempt.start < self.config.speculation_min_elapsed:
                continue
            fresh = state.task.cost / base_speed
            expected_total = attempt.expected_finish - attempt.start
            remaining = attempt.expected_finish - now
            if (
                expected_total <= self.config.speculation_slowdown * fresh
                or remaining <= fresh
            ):
                continue
            placement = self._best_idle_slot(state.task, attempt.machine_id)
            if placement is not None:
                machine_id, slot_index = placement
                fetched = (
                    state.task.preferred_machine is not None
                    and state.task.preferred_machine != machine_id
                )
                self._begin_attempt(
                    state, machine_id, slot_index, fetched, speculative=True
                )

    def _best_idle_slot(
        self, task: SimTask, avoid_machine: int
    ) -> tuple[int, int] | None:
        """The fastest currently-idle, un-queued slot off ``avoid_machine``."""
        best: tuple[float, int, int, int] | None = None
        for machine in self.cluster.machines:
            machine_id = machine.machine_id
            if (
                machine_id == avoid_machine
                or not self._visible[machine_id]
                or not machine.alive
            ):
                continue
            for slot_index in range(machine.slots):
                if self._running[machine_id][slot_index] is not None:
                    continue
                if self._queues[machine_id][slot_index]:
                    continue
                fetched = (
                    task.preferred_machine is not None
                    and task.preferred_machine != machine_id
                )
                duration = self._duration_on(machine, task, fetched)
                tiebreak = stable_hash(
                    (task.label, machine_id, slot_index), salt="speculate"
                )
                key = (duration, tiebreak, machine_id, slot_index)
                if best is None or key < best:
                    best = key
        if best is None:
            return None
        return best[2], best[3]


class DagExecutor(WaveExecutor):
    """Executes a dependency DAG of tasks at sub-computation granularity.

    Instead of the two-wave barrier (all maps, then all reduces), a task
    becomes schedulable the moment its dependencies finish — *topological
    readiness*.  Ready tasks are planned by the same greedy policies, but
    considered in **critical-path-first** order: the priority of a task is
    the heaviest cost chain hanging below it in the DAG, so the chain that
    bounds the makespan is never starved by wide-but-shallow work.  All of
    the wave executor's fault machinery (crash detection, retries,
    speculation, replanning) applies unchanged.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._dep_remaining: dict[_TaskState, int] = {}
        self._dependents: dict[_TaskState, list[_TaskState]] = {}

    def run_dag(
        self,
        tasks: Sequence[SimTask],
        deps: dict[str, Sequence[str]],
    ) -> tuple[float, list[Assignment]]:
        """Execute ``tasks`` honouring ``deps`` (task label -> labels it
        depends on); returns ``(finish_time, assignments)`` with the
        assignments in critical-path priority order."""
        by_label: dict[str, SimTask] = {}
        for task in tasks:
            if task.label in by_label:
                raise SchedulingError(f"duplicate task label {task.label!r}")
            by_label[task.label] = task
        parents: dict[str, tuple[str, ...]] = {}
        for label, parent_labels in deps.items():
            if label not in by_label:
                raise SchedulingError(f"deps reference unknown task {label!r}")
            unique = tuple(dict.fromkeys(parent_labels))
            for parent in unique:
                if parent not in by_label:
                    raise SchedulingError(
                        f"task {label!r} depends on unknown task {parent!r}"
                    )
            parents[label] = unique

        priority = critical_path_priority(tasks, parents)
        states: dict[str, _TaskState] = {}
        ranked = sorted(tasks, key=lambda t: (-priority[t.label], t.label))
        for order, task in enumerate(ranked):
            states[task.label] = _TaskState(task=task, order=order)

        self._dep_remaining = {
            states[label]: len(parents.get(label, ()))
            for label in states
        }
        self._dependents = {state: [] for state in states.values()}
        for label, parent_labels in parents.items():
            for parent in parent_labels:
                self._dependents[states[parent]].append(states[label])

        self._pending = [
            state
            for state in sorted(states.values(), key=lambda s: s.order)
            if self._dep_remaining[state] == 0
        ]
        self._unfinished = set(states.values())
        return self._drive(list(states.values()))

    def _task_completed(self, state: _TaskState) -> None:
        """Topological release: finished tasks unlock their dependents."""
        released = False
        for child in self._dependents.get(state, ()):
            self._dep_remaining[child] -= 1
            if self._dep_remaining[child] == 0 and not child.done:
                self._pending.append(child)
                released = True
        if released:
            self._plan()


def critical_path_priority(
    tasks: Sequence[SimTask], parents: dict[str, Sequence[str]]
) -> dict[str, float]:
    """For each task, the heaviest cost chain from it down to any sink
    (inclusive).  Raises :class:`SchedulingError` on dependency cycles."""
    children: dict[str, list[str]] = {task.label: [] for task in tasks}
    remaining: dict[str, int] = {task.label: 0 for task in tasks}
    for label, parent_labels in parents.items():
        remaining[label] = len(parent_labels)
        for parent in parent_labels:
            children[parent].append(label)
    order = [label for label, count in remaining.items() if count == 0]
    cursor = 0
    while cursor < len(order):
        label = order[cursor]
        cursor += 1
        for child in children[label]:
            remaining[child] -= 1
            if remaining[child] == 0:
                order.append(child)
    if len(order) != len(tasks):
        stuck = sorted(label for label, n in remaining.items() if n > 0)
        raise SchedulingError(f"dependency cycle among tasks: {stuck[:5]}")
    costs = {task.label: task.cost for task in tasks}
    priority: dict[str, float] = {}
    for label in reversed(order):
        below = max((priority[child] for child in children[label]), default=0.0)
        priority[label] = costs[label] + below
    return priority


def execute_dag(
    tasks: Sequence[SimTask],
    deps: dict[str, Sequence[str]],
    cluster: Cluster,
    scheduler: Scheduler,
    config: ExecutorConfig | None = None,
    chaos: "ChaosSchedule | None" = None,
    hooks: ExecutorHooks | None = None,
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Execute a task DAG on the event-driven executor.

    The dependency-aware analogue of :func:`execute_two_waves`: no global
    barriers — readiness is topological, placement is the scheduling
    policy's (locality against block/cache placement comes in through each
    task's ``preferred_machine``), and ties break critical-path-first.
    """
    executor = DagExecutor(
        cluster, scheduler, config=config, chaos=chaos, hooks=hooks,
        telemetry=telemetry,
    )
    try:
        finish, assignments = executor.run_dag(tasks, deps)
    finally:
        executor.restore_straggles()
    map_finish = max(
        (a.finish for a in assignments if a.task.kind == "map"),
        default=finish,
    )
    return ExecutionReport(
        makespan=finish,
        map_finish=map_finish,
        assignments=assignments,
        attempts=executor.attempt_log,
        stats=executor.stats,
    )


def execute_wave(
    tasks: Sequence[SimTask],
    cluster: Cluster,
    scheduler: Scheduler,
    start_time: float = 0.0,
    config: ExecutorConfig | None = None,
    chaos: "ChaosSchedule | None" = None,
    hooks: ExecutorHooks | None = None,
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Execute a single wave; the event-driven analogue of ``simulate_wave``."""
    executor = WaveExecutor(
        cluster, scheduler, config=config, chaos=chaos, hooks=hooks,
        start_time=start_time, telemetry=telemetry,
    )
    try:
        finish, assignments = executor.run(tasks)
    finally:
        executor.restore_straggles()
    return ExecutionReport(
        makespan=finish,
        map_finish=finish,
        assignments=assignments,
        attempts=executor.attempt_log,
        stats=executor.stats,
    )


def execute_two_waves(
    map_tasks: Sequence[SimTask],
    reduce_tasks: Sequence[SimTask],
    cluster: Cluster,
    scheduler: Scheduler,
    config: ExecutorConfig | None = None,
    chaos: "ChaosSchedule | None" = None,
    hooks: ExecutorHooks | None = None,
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Maps, a shuffle barrier, then reduces — one job's fault-tolerant run."""
    executor = WaveExecutor(cluster, scheduler, config=config, chaos=chaos,
                            hooks=hooks, telemetry=telemetry)
    try:
        map_finish, map_log = executor.run(map_tasks)
        reduce_finish, reduce_log = executor.run(reduce_tasks)
    finally:
        executor.restore_straggles()
    return ExecutionReport(
        makespan=reduce_finish,
        map_finish=map_finish,
        assignments=map_log + reduce_log,
        attempts=executor.attempt_log,
        stats=executor.stats,
    )

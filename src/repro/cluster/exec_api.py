"""Entry points over the event-driven executors.

One-call wrappers that construct an executor, drive it to completion,
restore any still-open straggle episodes, and package the result as an
:class:`~repro.cluster.exec_types.ExecutionReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.cluster.exec_types import (
    ExecutionReport,
    ExecutorConfig,
    ExecutorHooks,
)
from repro.cluster.machine import Cluster
from repro.cluster.scheduler import Scheduler, SimTask
from repro.cluster.waveexec import WaveExecutor
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.chaos import ChaosSchedule


def execute_wave(
    tasks: Sequence[SimTask],
    cluster: Cluster,
    scheduler: Scheduler,
    start_time: float = 0.0,
    config: ExecutorConfig | None = None,
    chaos: "ChaosSchedule | None" = None,
    hooks: ExecutorHooks | None = None,
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Execute a single wave; the event-driven analogue of ``simulate_wave``."""
    executor = WaveExecutor(
        cluster, scheduler, config=config, chaos=chaos, hooks=hooks,
        start_time=start_time, telemetry=telemetry,
    )
    try:
        finish, assignments = executor.run(tasks)
    finally:
        executor.restore_straggles()
    return ExecutionReport(
        makespan=finish,
        map_finish=finish,
        assignments=assignments,
        attempts=executor.attempt_log,
        stats=executor.stats,
    )


def execute_two_waves(
    map_tasks: Sequence[SimTask],
    reduce_tasks: Sequence[SimTask],
    cluster: Cluster,
    scheduler: Scheduler,
    config: ExecutorConfig | None = None,
    chaos: "ChaosSchedule | None" = None,
    hooks: ExecutorHooks | None = None,
    telemetry: Telemetry | None = None,
) -> ExecutionReport:
    """Maps, a shuffle barrier, then reduces — one job's fault-tolerant run."""
    executor = WaveExecutor(cluster, scheduler, config=config, chaos=chaos,
                            hooks=hooks, telemetry=telemetry)
    try:
        map_finish, map_log = executor.run(map_tasks)
        reduce_finish, reduce_log = executor.run(reduce_tasks)
    finally:
        executor.restore_straggles()
    return ExecutionReport(
        makespan=reduce_finish,
        map_finish=map_finish,
        assignments=map_log + reduce_log,
        attempts=executor.attempt_log,
        stats=executor.stats,
    )

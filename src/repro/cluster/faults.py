"""Fault injection for the memoization layer and scheduler tests.

Deterministically crashes machines between incremental runs so tests and
benchmarks can measure (a) that results stay correct, and (b) how much
extra read time / recomputation a crash costs with and without the
fault-tolerant memoization layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cache import DistributedMemoCache
from repro.cluster.machine import Cluster
from repro.common.rng import RngStream


@dataclass
class FaultPlan:
    """Which machines crash before which incremental run."""

    crashes: dict[int, list[int]] = field(default_factory=dict)

    @staticmethod
    def random(
        cluster: Cluster,
        runs: int,
        crash_probability: float,
        seed: int = 7,
        max_concurrent: int | None = None,
    ) -> "FaultPlan":
        """Sample an independent crash set for each run.

        ``max_concurrent`` bounds simultaneous crashes so replicas (2 by
        default) always leave at least one copy reachable.
        """
        rng = RngStream(seed, "faults")
        limit = max_concurrent if max_concurrent is not None else 1
        crashes: dict[int, list[int]] = {}
        for run_index in range(runs):
            flipped = [
                m.machine_id
                for m in cluster.machines
                if rng.coin(crash_probability)
            ]
            # Truncating the flip survivors with [:limit] would always
            # kill the lowest-numbered machines; pick uniformly instead.
            if len(flipped) > limit:
                victims = sorted(
                    int(v)
                    for v in rng.choice(flipped, size=limit, replace=False)
                )
            else:
                victims = flipped
            if victims:
                crashes[run_index] = victims
        return FaultPlan(crashes)


class FaultInjector:
    """Applies a FaultPlan to a cluster + cache before each run."""

    def __init__(
        self,
        cluster: Cluster,
        cache: DistributedMemoCache | None = None,
        plan: FaultPlan | None = None,
        heal: bool = True,
        slider=None,
    ) -> None:
        """``slider``: when given, crashes are routed through
        :meth:`Slider.on_machine_failure` (cache + block store + local memo
        views) instead of the bare cache."""
        self.cluster = cluster
        self.cache = cache
        self.slider = slider
        self.plan = plan or FaultPlan()
        self.heal = heal
        self.lost_objects = 0
        self._downed: list[int] = []

    def before_run(self, run_index: int) -> list[int]:
        """Crash this run's victims; returns the machine ids crashed."""
        if self.heal:
            for machine_id in self._downed:
                self.cluster.revive(machine_id)
            self._downed = []
        victims = self.plan.crashes.get(run_index, [])
        for machine_id in victims:
            self.cluster.kill(machine_id)
            self._downed.append(machine_id)
            if self.slider is not None:
                self.lost_objects += self.slider.on_machine_failure(machine_id)
            elif self.cache is not None:
                self.lost_objects += self.cache.on_machine_failure(machine_id)
        return victims

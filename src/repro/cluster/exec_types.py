"""Shared types for the event-driven task-attempt executors (§6).

The config/record vocabulary of :mod:`repro.cluster.waveexec` and
:mod:`repro.cluster.dagexec`: attempt lifecycle states, executor knobs,
per-attempt records, recovery accounting, storage-layer fault hooks, and
the report one execution returns.  Importable on its own so the storage
and slider layers can type against hooks and reports without pulling in
the executor machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.scheduler import Assignment, SimTask


class AttemptState(enum.Enum):
    """Lifecycle of one task attempt."""

    RUNNING = "running"
    FINISHED = "finished"
    #: Died to a transient (task-level) failure.
    FAILED = "failed"
    #: Was on a machine that crashed; reaped at detection time.
    LOST = "lost"
    #: Killed because a sibling attempt finished first.
    KILLED = "killed"


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs for attempt execution, detection, retry, and speculation."""

    #: Seconds between master heartbeat scans (speculation cadence).
    heartbeat_interval: float = 1.0
    #: Seconds of missed heartbeats before a crashed machine's attempts
    #: are declared lost and rescheduled (the detection delay).
    heartbeat_timeout: float = 3.0
    #: Failed/lost attempts allowed per task before TaskFailedError.
    max_attempts: int = 4
    #: First retry waits this long; later retries back off exponentially.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    #: Enable LATE-style speculative backup attempts.
    speculation: bool = False
    #: An attempt is "late" when its machine runs the task this many
    #: times slower than a base-speed machine would.
    speculation_slowdown: float = 1.8
    #: Do not speculate before an attempt has run at least this long.
    speculation_min_elapsed: float = 0.5


@dataclass(eq=False)
class TaskAttempt:
    """One placement of a task on a (machine, slot), with its fate."""

    task: SimTask
    number: int
    machine_id: int
    slot_index: int
    start: float
    expected_finish: float
    epoch: int
    fetched: bool = False
    speculative: bool = False
    #: Dispatched to a crashed machine before the master noticed: it
    #: exists only in the master's imagination and can never finish.
    ghost: bool = False
    state: AttemptState = AttemptState.RUNNING
    finish: float | None = None


@dataclass
class RecoveryStats:
    """What fault tolerance cost during execution (the run report's view)."""

    attempts_started: int = 0
    attempts_finished: int = 0
    transient_failures: int = 0
    lost_attempts: int = 0
    crashes: int = 0
    crashes_detected: int = 0
    recoveries: int = 0
    #: Sum over lost attempts of (detection time - crash time).
    detection_delay: float = 0.0
    #: Total seconds tasks spent cooling off before retries.
    backoff_delay: float = 0.0
    #: Simulated seconds of execution thrown away by failures/crashes.
    wasted_work: float = 0.0
    speculative_attempts: int = 0
    speculative_wins: int = 0
    #: Runtime of attempts killed because a sibling won the race.
    speculative_waste: float = 0.0

    def re_executed_attempts(self) -> int:
        return self.transient_failures + self.lost_attempts

    def as_dict(self) -> dict[str, float]:
        return {
            "attempts_started": float(self.attempts_started),
            "attempts_finished": float(self.attempts_finished),
            "transient_failures": float(self.transient_failures),
            "lost_attempts": float(self.lost_attempts),
            "re_executed_attempts": float(self.re_executed_attempts()),
            "crashes": float(self.crashes),
            "crashes_detected": float(self.crashes_detected),
            "recoveries": float(self.recoveries),
            "detection_delay": self.detection_delay,
            "backoff_delay": self.backoff_delay,
            "wasted_work": self.wasted_work,
            "speculative_attempts": float(self.speculative_attempts),
            "speculative_wins": float(self.speculative_wins),
            "speculative_waste": self.speculative_waste,
        }


@dataclass
class ExecutorHooks:
    """Callbacks into the storage layers, fired as faults unfold.

    Each receives ``(machine_id, sim_time)``.  ``on_crash`` fires when the
    machine physically dies (in-memory state loss happens now);
    ``on_detect`` fires when the master notices (re-replication repair
    belongs here); ``on_recover`` fires when the machine rejoins.
    """

    on_crash: Callable[[int, float], None] | None = None
    on_detect: Callable[[int, float], None] | None = None
    on_recover: Callable[[int, float], None] | None = None


@dataclass
class ExecutionReport:
    """Everything one (multi-wave) execution produced."""

    makespan: float
    map_finish: float
    assignments: list[Assignment]
    attempts: list[TaskAttempt]
    stats: RecoveryStats


@dataclass(eq=False)
class _TaskState:
    """Executor-side bookkeeping for one task across its attempts."""

    task: SimTask
    order: int
    failures: int = 0
    done: bool = False
    cooling: bool = False
    attempts: list[TaskAttempt] = field(default_factory=list)
    winner: Assignment | None = None

    def has_live_attempt(self) -> bool:
        return any(a.state is AttemptState.RUNNING for a in self.attempts)


@dataclass(eq=False)
class _Commitment:
    """A planned (not yet started) attempt: task -> slot at [start, finish)."""

    state: _TaskState
    machine_id: int
    slot_index: int
    start: float
    finish: float
    fetched: bool
    cancelled: bool = False

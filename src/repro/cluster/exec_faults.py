"""Fault and speculation machinery for the wave executor.

A mixin over :class:`~repro.cluster.waveexec.WaveExecutor`'s event loop:
transient-failure retries with exponential backoff, machine-crash
detection via missed heartbeats (reaping zombies and ghosts), recovery,
straggle episodes, and LATE-style speculative backup attempts.  Split out
of :mod:`repro.cluster.waveexec` so the happy-path planning/attempt loop
reads on its own; every handler here runs inside the same event queue.
"""

from __future__ import annotations

from repro.cluster.exec_types import AttemptState, TaskAttempt, _TaskState
from repro.cluster.scheduler import SimTask
from repro.common.errors import TaskFailedError
from repro.common.hashing import stable_hash


class FaultMachineryMixin:
    """Failure, detection, recovery, and speculation event handlers."""

    def _on_fail(self, attempt: TaskAttempt) -> None:
        if self._attempt_event_is_stale(attempt):
            return
        now = self.clock.now
        attempt.state = AttemptState.FAILED
        attempt.finish = now
        self._record_attempt(attempt)
        self._release_slot(attempt)
        self.stats.transient_failures += 1
        self.stats.wasted_work += max(0.0, now - attempt.start)
        self._after_loss(self._owner[attempt])
        # The slot freed earlier than planned; successors can move up.
        self._replan()

    def _after_loss(self, state: _TaskState) -> None:
        """Count a failed/lost attempt; retry with backoff or give up."""
        state.failures += 1
        if state.done:
            return
        if state.has_live_attempt():
            return  # a sibling (speculative backup) may still win
        if state.failures >= self.config.max_attempts:
            raise TaskFailedError(state.task.label, state.failures)
        delay = self.config.backoff_base * (
            self.config.backoff_factor ** (state.failures - 1)
        )
        self.stats.backoff_delay += delay
        state.cooling = True
        self.events.push(self.clock.now + delay, ("retry", state))

    def _on_retry(self, state: _TaskState) -> None:
        state.cooling = False
        if state.done or state.has_live_attempt():
            return
        if state not in self._pending:
            self._pending.append(state)
        self._plan()

    def _on_crash(self, machine_id: int) -> None:
        machine = self.cluster.machine(machine_id)
        if not machine.alive:
            return
        self.cluster.kill(machine_id)
        self._epoch[machine_id] += 1
        self.stats.crashes += 1
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.crash", ts=self.clock.now, machine=machine_id
            )
            self.telemetry.count("executor.crashes", ts=self.clock.now)
        self.events.push(
            self.clock.now + self.config.heartbeat_timeout,
            ("detect", machine_id, self.clock.now),
        )
        if self.hooks.on_crash is not None:
            self.hooks.on_crash(machine_id, self.clock.now)

    def _reap_machine(self, machine_id: int, crash_time: float | None) -> None:
        """Reap attempts stranded on a crashed/restarted machine."""
        machine = self.cluster.machine(machine_id)
        now = self.clock.now
        stranded: list[TaskAttempt] = list(self._ghosts[machine_id])
        self._ghosts[machine_id].clear()
        for slot_index, attempt in enumerate(self._running[machine_id]):
            if attempt is None or attempt.state is not AttemptState.RUNNING:
                continue
            if machine.alive and attempt.epoch == self._epoch[machine_id]:
                continue  # started after the restart; still healthy
            self._running[machine_id][slot_index] = None
            stranded.append(attempt)
        for attempt in stranded:
            if attempt.state is not AttemptState.RUNNING:
                continue
            attempt.state = AttemptState.LOST
            attempt.finish = now
            self._record_attempt(attempt)
            self.stats.lost_attempts += 1
            if crash_time is not None:
                self.stats.detection_delay += now - crash_time
                self.stats.wasted_work += max(
                    0.0, crash_time - attempt.start
                )
            self._after_loss(self._owner[attempt])

    def _on_detect(self, machine_id: int, crash_time: float) -> None:
        machine = self.cluster.machine(machine_id)
        self.stats.crashes_detected += 1
        if not machine.alive:
            self._visible[machine_id] = False
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.detect",
                ts=self.clock.now,
                machine=machine_id,
                crash_time=crash_time,
            )
        self._reap_machine(machine_id, crash_time)
        if self.hooks.on_detect is not None:
            self.hooks.on_detect(machine_id, self.clock.now)
        self._replan()

    def _on_recover(self, machine_id: int) -> None:
        machine = self.cluster.machine(machine_id)
        if machine.alive:
            return
        self.cluster.revive(machine_id)
        self._epoch[machine_id] += 1
        self._visible[machine_id] = True
        self.stats.recoveries += 1
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.recover", ts=self.clock.now, machine=machine_id
            )
            self.telemetry.count("executor.recoveries", ts=self.clock.now)
        # A restart loses in-flight attempts immediately (the rejoining
        # worker reports no tasks); no detection delay applies.
        self._reap_machine(machine_id, None)
        if self.hooks.on_recover is not None:
            self.hooks.on_recover(machine_id, self.clock.now)
        self._replan()

    def _on_straggle_on(self, machine_id: int, factor: float) -> None:
        machine = self.cluster.machine(machine_id)
        self._straggle_originals.setdefault(machine_id, machine.straggle)
        machine.straggle = factor
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.straggle_on",
                ts=self.clock.now,
                machine=machine_id,
                factor=factor,
            )
        self._replan()

    def _on_straggle_off(self, machine_id: int) -> None:
        original = self._straggle_originals.pop(machine_id, 1.0)
        self.cluster.machine(machine_id).straggle = original
        if self.telemetry is not None:
            self.telemetry.instant(
                "executor.straggle_off", ts=self.clock.now, machine=machine_id
            )
        self._replan()

    # -- speculation --------------------------------------------------------

    def _schedule_heartbeat(self) -> None:
        if not self._heartbeat_pending:
            self._heartbeat_pending = True
            self.events.push(
                self.clock.now + self.config.heartbeat_interval,
                ("heartbeat",),
            )

    def _on_heartbeat(self) -> None:
        self._heartbeat_pending = False
        if self.config.speculation:
            self._speculate()
        anything_running = any(
            attempt is not None
            for slots in self._running
            for attempt in slots
        )
        if self._unfinished and (self.events or anything_running):
            self._schedule_heartbeat()

    def _speculate(self) -> None:
        """Spawn backups for attempts a base-speed machine would beat."""
        now = self.clock.now
        base_speed = self.cluster.config.base_speed
        for state in sorted(self._unfinished, key=lambda s: s.order):
            running = [
                a for a in state.attempts if a.state is AttemptState.RUNNING
            ]
            if len(running) != 1:
                continue  # nothing running yet, or a backup already exists
            attempt = running[0]
            if now - attempt.start < self.config.speculation_min_elapsed:
                continue
            fresh = state.task.cost / base_speed
            expected_total = attempt.expected_finish - attempt.start
            remaining = attempt.expected_finish - now
            if (
                expected_total <= self.config.speculation_slowdown * fresh
                or remaining <= fresh
            ):
                continue
            placement = self._best_idle_slot(state.task, attempt.machine_id)
            if placement is not None:
                machine_id, slot_index = placement
                fetched = (
                    state.task.preferred_machine is not None
                    and state.task.preferred_machine != machine_id
                )
                self._begin_attempt(
                    state, machine_id, slot_index, fetched, speculative=True
                )

    def _best_idle_slot(
        self, task: SimTask, avoid_machine: int
    ) -> tuple[int, int] | None:
        """The fastest currently-idle, un-queued slot off ``avoid_machine``."""
        best: tuple[float, int, int, int] | None = None
        for machine in self.cluster.machines:
            machine_id = machine.machine_id
            if (
                machine_id == avoid_machine
                or not self._visible[machine_id]
                or not machine.alive
            ):
                continue
            for slot_index in range(machine.slots):
                if self._running[machine_id][slot_index] is not None:
                    continue
                if self._queues[machine_id][slot_index]:
                    continue
                fetched = (
                    task.preferred_machine is not None
                    and task.preferred_machine != machine_id
                )
                duration = self._duration_on(machine, task, fetched)
                tiebreak = stable_hash(
                    (task.label, machine_id, slot_index), salt="speculate"
                )
                key = (duration, tiebreak, machine_id, slot_index)
                if best is None or key < best:
                    best = key
        if best is None:
            return None
        return best[2], best[3]

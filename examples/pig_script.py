#!/usr/bin/env python3
"""Pig-Latin scripts over a sliding window (§5's user-facing interface).

Writes the analysis as a textual Pig-Latin script, parses it to a logical
plan, compiles it to a pipeline of MapReduce jobs, and runs it
incrementally as the window slides — the full path the paper describes for
declarative query processing.

Run:  python examples/pig_script.py
"""

from repro.query.parser import parse_pig
from repro.query.pigmix import PigMixDataGenerator
from repro.query.pipeline import BatchQueryRunner, IncrementalQueryPipeline
from repro.slider.window import WindowMode

SCRIPT = """
-- Page-view analytics: engaged spenders per search term.
views   = LOAD 'pageviews' AS (user, action, timespent, term, revenue, page);
engaged = FILTER views BY timespent > 60 AND action != 'view';
byterm  = GROUP engaged BY term;
stats   = FOREACH byterm GENERATE group, COUNT(engaged),
          SUM(engaged.revenue) AS total, COUNT_DISTINCT(engaged.user) AS users;
top     = ORDER stats BY total DESC LIMIT 5;
"""


def main() -> None:
    parsed = parse_pig(SCRIPT)
    print(f"parsed plan: {parsed.result.num_stages()} MapReduce stage(s), "
          f"result schema {parsed.schema}")

    generator = PigMixDataGenerator(seed=8, num_users=400)
    splits = generator.splits(count=44, rows_per_split=50)

    incremental = IncrementalQueryPipeline(parsed.result, WindowMode.VARIABLE)
    batch = BatchQueryRunner(parsed.result)
    incremental.initial_run(splits[:40])
    batch.initial_run(splits[:40])

    got = incremental.advance(splits[40:42], removed=2)
    want = batch.advance(splits[40:42], removed=2)

    def normalize(rows):
        return sorted(
            tuple(round(x, 6) if isinstance(x, float) else x for x in row)
            for row in rows
        )

    assert normalize(got.rows) == normalize(want.rows)

    print(f"\nslide of 2/40 splits: {want.report.work / got.report.work:.1f}x "
          "less work than recomputing the whole window\n")
    print(f"{'term':<10} {'count':>5} {'revenue':>9} {'users':>6}")
    for term, count, total, users in got.rows:
        print(f"{term:<10} {count:>5} {total:>9.2f} {users:>6}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study §8.1: information-propagation trees for Twitter, append-only.

Builds per-URL propagation trees (Krackhardt-style: spreader -> receiver
edges through the follow graph) over a growing tweet history.  Each weekly
interval appends ~5 % new tweets; Slider's coalescing trees update every
URL's tree without touching the old intervals.

Run:  python examples/twitter_propagation.py
"""

from repro import Slider, VanillaRunner, WindowMode
from repro.apps.twitter import make_tweet_splits, propagation_tree_job
from repro.datagen.twitter import TweetGenerator, TwitterGraph


def main() -> None:
    print("generating follow graph and tweet stream...")
    graph = TwitterGraph(num_users=1000, seed=42)
    generator = TweetGenerator(graph, num_urls=400, seed=42)

    initial_interval = generator.tweets(15_000)
    weekly_intervals = [generator.tweets(750) for _ in range(4)]

    job = propagation_tree_job()
    slider = Slider(job, WindowMode.APPEND)
    vanilla = VanillaRunner(job, WindowMode.APPEND)

    splits = make_tweet_splits(initial_interval, tweets_per_split=250)
    slider.initial_run(splits)
    vanilla.initial_run(splits)
    print(f"initial interval: {len(initial_interval)} tweets, "
          f"{len(splits)} splits\n")

    print("interval  tweets  time-speedup  work-speedup")
    for week, interval in enumerate(weekly_intervals, start=1):
        added = make_tweet_splits(interval, tweets_per_split=250)
        s = slider.advance(added, 0)
        v = vanilla.advance(added, 0)
        assert s.outputs == v.outputs
        speedup = s.report.speedup_over(v.report)
        print(f"week {week}    {len(interval):6d}  {speedup.time:12.1f}x "
              f"{speedup.work:12.1f}x")

    # Show the most viral URLs of the full history.
    outputs = s.outputs
    viral = sorted(outputs.items(), key=lambda kv: -kv[1]["edges"])[:5]
    print("\nmost viral URLs (by propagation edges):")
    print("url    posts  edges  spreaders  depth")
    for url, tree in viral:
        print(f"{url:<6} {tree['posts']:>5}  {tree['edges']:>5}  "
              f"{tree['spreaders']:>9}  {tree['depth']:>5}")


if __name__ == "__main__":
    main()

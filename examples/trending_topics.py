#!/usr/bin/env python3
"""Trending topics: a time-based sliding window over an event stream.

The scenario the paper's introduction motivates: a stream of tagged events
(think hashtags) analyzed over a one-hour window sliding every 10 minutes.
Uses the StreamDriver, which buckets timestamped records into slides and
drives Slider's variable-width contraction trees underneath — the analysis
code itself is a three-line MapReduce job.

Run:  python examples/trending_topics.py
"""

from repro import MapReduceJob, SumCombiner
from repro.common.rng import RngStream
from repro.slider.driver import StreamDriver

HOUR = 3600.0
TOPICS = [
    "launch", "outage", "election", "finals", "storm",
    "release", "concert", "traffic", "derby", "eclipse",
]


def synthetic_stream(duration: float, events_per_minute: int, seed: int = 3):
    """Events whose topic popularity drifts over time (trends emerge)."""
    rng = RngStream(seed, "examples.trending")
    t = 0.0
    step = 60.0 / events_per_minute
    while t < duration:
        # The "hot" topic rotates every 40 minutes; 50% of events hit it.
        hot = TOPICS[int(t // 2400) % len(TOPICS)]
        if rng.coin(0.5):
            topic = hot
        else:
            topic = TOPICS[int(rng.integers(0, len(TOPICS)))]
        yield (t, topic)
        t += step


def main() -> None:
    job = MapReduceJob(
        name="trending",
        map_fn=lambda event: [(event[1], 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )
    driver = StreamDriver(
        job,
        timestamp_fn=lambda event: event[0],
        slide=600.0,       # 10 minutes
        window=HOUR,       # 1 hour
        split_size=50,
    )

    print("time    window outputs (top 3)                      incremental work")
    for result in driver.feed(synthetic_stream(4 * HOUR, events_per_minute=30)):
        top = sorted(result.outputs.items(), key=lambda kv: -kv[1])[:3]
        pretty = ", ".join(f"{topic}:{count}" for topic, count in top)
        minutes = (result.run_index + 1) * 10
        print(f"{minutes:4d}min  {pretty:45s}  {result.report.work:8.0f}")

    print(
        f"\n{len(driver.results)} window updates; map tasks re-run only for "
        "each new 10-minute slide, everything else reused."
    )


if __name__ == "__main__":
    main()

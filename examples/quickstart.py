#!/usr/bin/env python3
"""Quickstart: incremental word count over a sliding window.

Writes a completely ordinary (non-incremental) MapReduce word-count job,
hands it to Slider, and slides the window a few times — printing how much
work each incremental run costs compared to recomputing from scratch.

Run:  python examples/quickstart.py
"""

from repro import MapReduceJob, Slider, SumCombiner, VanillaRunner, WindowMode
from repro.datagen.text import TextCorpusGenerator
from repro.mapreduce.types import make_splits


def main() -> None:
    # 1. The job: plain single-pass code, nothing incremental about it.
    job = MapReduceJob(
        name="wordcount",
        map_fn=lambda line: [(word, 1) for word in line.split()],
        combiner=SumCombiner(),
        num_reducers=4,
    )

    # 2. A windowed corpus: 200 splits of 10 lines each.
    generator = TextCorpusGenerator(seed=7, vocabulary_size=2000)
    splits = make_splits(generator.lines(2200), split_size=10)

    # 3. Drive Slider and the recompute-from-scratch baseline through the
    #    same slides: drop 5 old splits, append 5 new ones, each round.
    slider = Slider(job, mode=WindowMode.VARIABLE)
    vanilla = VanillaRunner(job, mode=WindowMode.VARIABLE)

    window = splits[:200]
    slider_report = slider.initial_run(window).report
    vanilla_report = vanilla.initial_run(window).report
    print(f"initial run: slider work {slider_report.work:10.0f}  "
          f"(vanilla {vanilla_report.work:10.0f})  <- one-time overhead")

    offset = 200
    for round_index in range(4):
        added = splits[offset : offset + 5]
        offset += 5
        s = slider.advance(added, removed=5)
        v = vanilla.advance(added, removed=5)
        assert s.outputs == v.outputs, "incremental output must match batch"
        speedup = s.report.speedup_over(v.report)
        reused_maps = 200 - s.new_map_tasks
        print(
            f"slide {round_index + 1}:     slider work {s.report.work:10.0f}  "
            f"(vanilla {v.report.work:10.0f})  -> {speedup.work:5.1f}x less work, "
            f"{reused_maps}/200 map tasks reused"
        )

    top = sorted(s.outputs.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop words in the current window:")
    for word, count in top:
        print(f"  {word:>8}  {count}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Running Slider on the simulated cluster, through machine crashes.

Demonstrates the §6 architecture end to end: a 24-machine cluster with a
few stragglers, the hybrid memoization-aware scheduler, the HDFS-like
block store feeding Map locality, and the fault-tolerant memoization layer
— a machine crashes before every other incremental run, and the analysis
keeps producing exact results while the shim I/O layer quietly falls back
to persistent replicas.

Run:  python examples/fault_tolerant_cluster.py
"""

from repro import MapReduceJob, Slider, SliderConfig, SumCombiner, WindowMode
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.machine import Cluster, ClusterConfig
from repro.cluster.scheduler import HybridScheduler
from repro.datagen.text import TextCorpusGenerator
from repro.mapreduce.runtime import BatchRuntime
from repro.mapreduce.types import make_splits


def main() -> None:
    cluster = Cluster(ClusterConfig(num_machines=24, slots_per_machine=2))
    stragglers = [m.machine_id for m in cluster.machines if m.straggle < 1.0]
    print(f"cluster: {len(cluster)} machines, stragglers: {stragglers}")

    job = MapReduceJob(
        name="wordcount",
        map_fn=lambda line: [(word, 1) for word in line.split()],
        combiner=SumCombiner(),
        num_reducers=4,
    )
    # The randomized tree memoizes its groups content-addressed through the
    # distributed cache, so crashed machines' state is visibly re-served
    # from replicas (the folding tree keeps its node cache process-local).
    slider = Slider(
        job,
        WindowMode.VARIABLE,
        config=SliderConfig(mode=WindowMode.VARIABLE, tree="randomized"),
        cluster=cluster,
        scheduler=HybridScheduler(),
    )
    injector = FaultInjector(
        cluster,
        slider=slider,
        plan=FaultPlan(crashes={1: [3], 3: [11]}),
    )

    generator = TextCorpusGenerator(seed=12, vocabulary_size=1500)
    splits = make_splits(generator.lines(1300), split_size=10)

    window = splits[:120]
    slider.initial_run(window)
    print(f"initial window: {len(window)} splits, "
          f"{slider.blocks.total_blocks()} blocks stored\n")

    offset = 120
    print("run  crashed  time    memo fallback reads   outputs exact?")
    for run_index in range(5):
        victims = injector.before_run(run_index)
        added = splits[offset : offset + 4]
        offset += 4
        window = window[4:] + list(added)
        result = slider.advance(added, removed=4)

        expected = BatchRuntime(job).run(window).outputs
        exact = result.outputs == expected
        fallbacks = slider.cache.stats.fallback_reads
        crashed = f"m{victims[0]}" if victims else "-"
        print(f"{run_index + 1:>3}  {crashed:>7}  {result.report.time:6.1f}  "
              f"{fallbacks:>19}   {exact}")
        assert exact

    print("\nall runs exact despite crashes; lost in-memory state was served "
          "from persistent replicas.")


if __name__ == "__main__":
    main()

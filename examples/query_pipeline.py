#!/usr/bin/env python3
"""Data-flow query processing (§5): an incremental analytics dashboard.

Declares Pig-Latin-style queries over a page-view stream and keeps them
updated as the window slides.  Multi-stage plans compile to pipelined
MapReduce jobs: the first stage uses the window-mode contraction tree, the
later stages use strawman trees over content-bucketed intermediates —
exactly Slider's multi-level strategy.

Run:  python examples/query_pipeline.py
"""

from repro.query.aggregates import Count, CountDistinct, SumField
from repro.query.pigmix import (
    PAGE_VIEW_SCHEMA,
    REVENUE,
    USER,
    QUERY_TERM,
    PigMixDataGenerator,
)
from repro.query.pipeline import BatchQueryRunner, IncrementalQueryPipeline
from repro.query.plan import Query
from repro.slider.window import WindowMode


def main() -> None:
    generator = PigMixDataGenerator(seed=99, num_users=300)
    splits = generator.splits(count=60, rows_per_split=50)

    # Dashboard query 1: revenue per user band — two pipelined jobs.
    revenue_bands = (
        Query.load(PAGE_VIEW_SCHEMA)
        .group_by(lambda r: r[USER], SumField(REVENUE))
        .group_by(lambda r: int(r[1] // 10.0), Count())
    )
    # Dashboard query 2: distinct users per search term, purchases only.
    engaged_terms = (
        Query.load(PAGE_VIEW_SCHEMA)
        .filter(lambda r: r[1] == "purchase")
        .group_by(lambda r: r[QUERY_TERM], CountDistinct(USER))
    )

    dashboards = {
        "revenue bands ($10 buckets)": revenue_bands,
        "purchasing users per term": engaged_terms,
    }

    for title, plan in dashboards.items():
        incremental = IncrementalQueryPipeline(plan, WindowMode.VARIABLE)
        batch = BatchQueryRunner(plan)
        incremental.initial_run(splits[:50])
        batch.initial_run(splits[:50])

        got = incremental.advance(splits[50:53], removed=3)
        want = batch.advance(splits[50:53], removed=3)
        assert sorted(map(repr, got.rows)) == sorted(map(repr, want.rows))

        speedup = want.report.work / got.report.work
        stages = " + ".join(f"{w:.0f}" for w in got.stage_works)
        print(f"{title}")
        print(f"  stages: {incremental.compiled.num_stages()}  "
              f"(per-stage incremental work: {stages})")
        print(f"  slide of 3/50 splits: {speedup:.1f}x less work than batch")
        for row in sorted(got.rows, key=repr)[:6]:
            print(f"    {row}")
        print()


if __name__ == "__main__":
    main()

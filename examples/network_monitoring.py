#!/usr/bin/env python3
"""Case study §8.2: Glasnost measurement-server monitoring.

Computes, for each measurement server, the median over user hosts of the
minimum RTT of their test runs — over the most recent three months of
traces, sliding monthly.  The monthly trace volumes reproduce the paper's
Table 3 exactly (they are solved from its window totals).

Run:  python examples/network_monitoring.py
"""

from repro import Slider, VanillaRunner, WindowMode
from repro.apps.glasnost import glasnost_job, make_glasnost_splits
from repro.datagen.glasnost import (
    TABLE3_MONTH_NAMES,
    TABLE3_MONTHLY_RUNS,
    GlasnostTraceGenerator,
)


def main() -> None:
    print("generating 11 months of measurement traces "
          f"({sum(TABLE3_MONTHLY_RUNS)} test runs)...")
    generator = GlasnostTraceGenerator(seed=2024, num_servers=3)
    month_splits = [
        make_glasnost_splits(generator.month_of_runs(m, count), runs_per_split=50)
        for m, count in enumerate(TABLE3_MONTHLY_RUNS)
    ]

    job = glasnost_job()
    slider = Slider(job, WindowMode.VARIABLE)
    vanilla = VanillaRunner(job, WindowMode.VARIABLE)

    window = month_splits[0] + month_splits[1] + month_splits[2]
    result = slider.initial_run(window)
    vanilla.initial_run(window)
    medians = ", ".join(
        f"server{s}={rtt:.1f}ms" for s, rtt in sorted(result.outputs.items())
    )
    print(f"\nJan-Mar: {medians}")

    print("\nwindow    runs   change%  time-speedup  work-speedup  medians")
    for step in range(1, 9):
        removed = len(month_splits[step - 1])
        added = month_splits[step + 2]
        s = slider.advance(added, removed)
        v = vanilla.advance(added, removed)
        assert s.outputs == v.outputs
        speedup = s.report.speedup_over(v.report)
        runs = sum(TABLE3_MONTHLY_RUNS[step : step + 3])
        change = 100.0 * TABLE3_MONTHLY_RUNS[step + 2] / runs
        label = f"{TABLE3_MONTH_NAMES[step]}-{TABLE3_MONTH_NAMES[step + 2]}"
        medians = " ".join(
            f"{rtt:.1f}" for _s, rtt in sorted(s.outputs.items())
        )
        print(f"{label:<9} {runs:>5}  {change:6.1f}%  {speedup.time:11.2f}x "
              f"{speedup.work:12.2f}x  [{medians}] ms")


if __name__ == "__main__":
    main()

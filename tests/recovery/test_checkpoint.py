"""Checkpoint/restore: kill-at-every-boundary bit-identity and guards."""

import pytest

from repro.common.errors import CheckpointError, CorruptionError
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.recovery.sweep import run_sweep, sweep_variant
from repro.slider.equivalence import SCENARIO_VARIANTS, _scenario_job, _scenario_split
from repro.slider.system import Slider
from repro.telemetry import SpanKind


def test_kill_restore_sweep_all_variants_bit_identical():
    report = run_sweep()
    assert {r["variant"] for r in report["variants"]} == {
        v for v, _ in SCENARIO_VARIANTS
    }
    assert report["equivalent"], report["variants"]
    assert report["mismatch_count"] == 0


@pytest.mark.parametrize("variant,mode_name", SCENARIO_VARIANTS)
def test_kill_restore_per_variant(variant, mode_name, tmp_path):
    result = sweep_variant(
        variant, mode_name, keep_checkpoint=tmp_path / "sample"
    )
    assert result["equivalent"], result["mismatches"]
    assert (tmp_path / "sample" / "MANIFEST.json").exists()


def test_restore_rejects_mismatched_job(tmp_path):
    engine = Slider(_scenario_job())
    engine.initial_run([_scenario_split(0)])
    engine.checkpoint(tmp_path / "ckpt")
    other = MapReduceJob(
        name="different-job",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )
    with pytest.raises(CheckpointError, match="restore with"):
        Slider.restore(tmp_path / "ckpt", other)


def test_checkpoint_refuses_mid_run(tmp_path):
    engine = Slider(_scenario_job())
    engine.initial_run([_scenario_split(0)])
    with engine.telemetry.span("window-update", SpanKind.RUN):
        with pytest.raises(CheckpointError, match="mid-run"):
            engine.checkpoint(tmp_path / "ckpt")


def test_restore_refuses_tampered_state(tmp_path):
    engine = Slider(_scenario_job())
    engine.initial_run([_scenario_split(i) for i in range(3)])
    engine.checkpoint(tmp_path / "ckpt")
    seg = tmp_path / "ckpt" / "state.seg"
    blob = seg.read_bytes()
    seg.write_bytes(blob[: len(blob) // 2] + b"\x00" + blob[len(blob) // 2 :])
    with pytest.raises(CorruptionError):
        Slider.restore(tmp_path / "ckpt", _scenario_job())


def test_restored_engine_reports_match_fresh_runs(tmp_path):
    """Telemetry totals survive the restore: the resumed run's report is a
    phase *delta*, so the replayed baseline must be exact."""
    baseline = Slider(_scenario_job())
    baseline.initial_run([_scenario_split(i) for i in range(4)])
    expected = baseline.advance([_scenario_split(9)], 1)

    engine = Slider(_scenario_job())
    engine.initial_run([_scenario_split(i) for i in range(4)])
    engine.checkpoint(tmp_path / "ckpt")
    resumed = Slider.restore(tmp_path / "ckpt", _scenario_job())
    got = resumed.advance([_scenario_split(9)], 1)

    assert got.outputs == expected.outputs
    assert got.report.work == expected.report.work
    assert got.report.breakdown == expected.report.breakdown
    assert got.report.time == expected.report.time

"""Unit tests for the on-disk checkpoint segment format."""

import json

import pytest

from repro.common.errors import CheckpointError, CorruptionError
from repro.recovery.segments import (
    MANIFEST_FILE,
    read_manifest,
    read_segment,
    write_segments,
)


def test_round_trip(tmp_path):
    segments = {"numbers": [1, 2, 3], "state": {"key": (4.0, "x")}}
    write_segments(tmp_path / "ckpt", segments, meta={"job": "j"})
    manifest = read_manifest(tmp_path / "ckpt")
    assert manifest["meta"] == {"job": "j"}
    assert read_segment(tmp_path / "ckpt", manifest, "numbers") == [1, 2, 3]
    assert read_segment(tmp_path / "ckpt", manifest, "state") == {
        "key": (4.0, "x")
    }


def test_segment_preserves_aliasing(tmp_path):
    shared = {"v": 1}
    write_segments(tmp_path, {"state": {"a": shared, "b": shared}}, meta={})
    state = read_segment(tmp_path, read_manifest(tmp_path), "state")
    assert state["a"] is state["b"]


def test_tampered_segment_raises_corruption_error(tmp_path):
    write_segments(tmp_path, {"state": list(range(100))}, meta={})
    blob = (tmp_path / "state.seg").read_bytes()
    (tmp_path / "state.seg").write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    with pytest.raises(CorruptionError, match="fingerprint"):
        read_segment(tmp_path, read_manifest(tmp_path), "state")


def test_truncated_segment_raises_corruption_error(tmp_path):
    write_segments(tmp_path, {"state": list(range(100))}, meta={})
    blob = (tmp_path / "state.seg").read_bytes()
    (tmp_path / "state.seg").write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CorruptionError):
        read_segment(tmp_path, read_manifest(tmp_path), "state")


def test_missing_manifest_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="missing"):
        read_manifest(tmp_path / "nowhere")


def test_missing_segment_raises_checkpoint_error(tmp_path):
    write_segments(tmp_path, {"state": 1}, meta={})
    manifest = read_manifest(tmp_path)
    with pytest.raises(CheckpointError, match="no segment"):
        read_segment(tmp_path, manifest, "stream")
    (tmp_path / "state.seg").unlink()
    with pytest.raises(CheckpointError, match="missing"):
        read_segment(tmp_path, manifest, "state")


def test_version_skew_raises_checkpoint_error(tmp_path):
    write_segments(tmp_path, {"state": 1}, meta={})
    manifest_path = tmp_path / MANIFEST_FILE
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 99
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="version"):
        read_manifest(tmp_path)


def test_foreign_format_raises_checkpoint_error(tmp_path):
    (tmp_path / MANIFEST_FILE).write_text(json.dumps({"format": "other"}))
    with pytest.raises(CheckpointError, match="not a"):
        read_manifest(tmp_path)


def test_unpicklable_segment_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="not picklable"):
        write_segments(tmp_path, {"state": lambda: None}, meta={})

"""Graceful degradation: poison quarantine, memo budgets, backing loss."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig
from repro.common.errors import SchedulingError
from repro.core.poison import PoisonPolicy
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.equivalence import _scenario_job, _scenario_split
from repro.slider.system import Slider, SliderConfig


class _BoomCombiner(SumCombiner):
    """Raises on one poisoned key; well-behaved everywhere else."""

    def merge(self, key, values):
        if key == "bad":
            raise RuntimeError("poisoned key")
        return super().merge(key, values)


def _poison_job(combiner=None) -> MapReduceJob:
    def map_fn(record):
        if record == "boom":
            raise ValueError("poison record")
        return [(record, 1)]

    return MapReduceJob(
        name="poison-job",
        map_fn=map_fn,
        combiner=combiner or SumCombiner(),
        num_reducers=2,
    )


def test_poison_record_quarantined_to_dead_letters():
    slider = Slider(
        _poison_job(),
        config=SliderConfig(poison_policy=PoisonPolicy(max_retries=2)),
    )
    result = slider.initial_run(
        [Split.from_records(["a", "boom", "b"], label="s0")]
    )
    assert result.outputs == {"a": 1, "b": 1}
    assert len(result.dead_letters) == 1
    letter = result.dead_letters[0]
    assert letter.stage == "map"
    assert letter.unit == "boom"
    assert letter.attempts == 3  # original + two retries
    assert letter.backoff == pytest.approx(
        PoisonPolicy(max_retries=2).total_backoff(3)
    )
    assert "ValueError" in letter.error
    assert slider.telemetry.counters["poison.dead_letters"] == 1


def test_poison_without_policy_propagates():
    slider = Slider(_poison_job())
    with pytest.raises(ValueError, match="poison record"):
        slider.initial_run([Split.from_records(["a", "boom"], label="s0")])


def test_poison_key_dropped_from_combine():
    slider = Slider(
        _poison_job(combiner=_BoomCombiner()),
        config=SliderConfig(poison_policy=PoisonPolicy(max_retries=1)),
    )
    result = slider.initial_run(
        [Split.from_records(["a", "bad", "bad", "b"], label="s0")]
    )
    assert result.outputs == {"a": 1, "b": 1}
    assert any(
        letter.stage == "combine" and letter.unit == "bad"
        for letter in result.dead_letters
    )


def test_dead_letters_reset_between_runs():
    slider = Slider(
        _poison_job(),
        config=SliderConfig(poison_policy=PoisonPolicy(max_retries=0)),
    )
    first = slider.initial_run(
        [Split.from_records(["a", "boom"], label="s0")]
    )
    assert len(first.dead_letters) == 1
    second = slider.advance([Split.from_records(["c"], label="s1")], 0)
    assert second.dead_letters == ()
    assert second.outputs == {"a": 1, "c": 1}


def test_memo_budget_degrades_toward_recomputation():
    # The randomized tree is the content-memoized variant; a zero budget
    # degrades every one of its sub-computations to recomputation.
    healthy = Slider(_scenario_job(), config=SliderConfig(tree="randomized"))
    budgeted = Slider(
        _scenario_job(), config=SliderConfig(tree="randomized", memo_budget=0)
    )
    for engine in (healthy, budgeted):
        engine.initial_run([_scenario_split(i) for i in range(6)])
    expected = healthy.advance([_scenario_split(10)], 2)
    got = budgeted.advance([_scenario_split(10)], 2)
    assert got.outputs == expected.outputs
    skipped = sum(t.memo.stats.skipped_stores for t in budgeted.trees)
    assert skipped > 0
    assert budgeted.telemetry.counters["memo.skipped_stores"] == skipped
    assert all(len(t.memo.entries) == 0 for t in budgeted.trees)


def test_backing_failure_degrades_to_local_only():
    cluster = Cluster(ClusterConfig(num_machines=4, straggler_fraction=0.0))
    config = SliderConfig(tree="randomized")
    slider = Slider(_scenario_job(), config=config, cluster=cluster)
    healthy = Slider(_scenario_job(), config=config)

    def fail(*args, **kwargs):
        raise OSError("cache backend unavailable")

    slider.cache.put = fail
    result = slider.initial_run([_scenario_split(i) for i in range(4)])
    expected = healthy.initial_run([_scenario_split(i) for i in range(4)])
    assert result.outputs == expected.outputs
    assert any(t.memo.degraded for t in slider.trees)
    assert slider.telemetry.counters["memo.degraded"] >= 1
    # Degraded mode keeps working locally across further advances.
    follow = slider.advance([_scenario_split(9)], 1)
    follow_expected = healthy.advance([_scenario_split(9)], 1)
    assert follow.outputs == follow_expected.outputs


def test_degraded_tables_rearm_at_next_run_start():
    """A backing failure degrades a table for *its* run only: the next
    run's start re-arms it (the backing may have been repaired in
    between), counts ``memo.degraded_resets``, and emits a
    ``memo.degraded_reset`` telemetry instant."""
    cluster = Cluster(ClusterConfig(num_machines=4, straggler_fraction=0.0))
    slider = Slider(
        _scenario_job(), config=SliderConfig(tree="randomized"), cluster=cluster
    )
    healthy = Slider(_scenario_job(), config=SliderConfig(tree="randomized"))

    original_put = slider.cache.put

    def fail(*args, **kwargs):
        raise OSError("cache backend unavailable")

    slider.cache.put = fail  # transient outage, this run only
    result = slider.initial_run([_scenario_split(i) for i in range(4)])
    expected = healthy.initial_run([_scenario_split(i) for i in range(4)])
    assert result.outputs == expected.outputs
    degraded = sum(1 for t in slider.trees if t.memo.degraded)
    assert degraded > 0

    slider.cache.put = original_put  # the backing "was repaired"
    follow = slider.advance([_scenario_split(9)], 1)
    follow_expected = healthy.advance([_scenario_split(9)], 1)
    assert follow.outputs == follow_expected.outputs
    # The run start re-armed every degraded table...
    assert slider.telemetry.counters["memo.degraded_resets"] == degraded
    assert any(
        event["name"] == "memo.degraded_reset"
        for event in slider.telemetry.instants
    )
    # ...and with the backing healthy again, nothing re-degraded.
    assert not any(t.memo.degraded for t in slider.trees)


def test_on_machine_failure_requires_a_cluster():
    slider = Slider(_scenario_job())
    slider.initial_run([_scenario_split(0)])
    with pytest.raises(SchedulingError, match="without a cluster"):
        slider.lifecycle.on_machine_failure(0)


def test_on_machine_failure_rejects_unknown_machine():
    cluster = Cluster(ClusterConfig(num_machines=3, straggler_fraction=0.0))
    slider = Slider(_scenario_job(), cluster=cluster)
    slider.initial_run([_scenario_split(0)])
    with pytest.raises(SchedulingError, match="unknown machine"):
        slider.lifecycle.on_machine_failure(99)

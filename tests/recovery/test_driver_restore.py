"""Driver resume and chaos-under-restore bit-identity."""

from repro.cluster.chaos import ChaosPlan, ChaosSchedule, MachineCrash
from repro.cluster.machine import Cluster, ClusterConfig
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.slider.driver import StreamDriver
from repro.slider.equivalence import _run_record, _scenario_job, _scenario_split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def count_job() -> MapReduceJob:
    return MapReduceJob(
        name="event-count",
        map_fn=lambda record: [(record[1], 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def make_driver(**kwargs) -> StreamDriver:
    defaults = dict(
        job=count_job(),
        timestamp_fn=lambda record: record[0],
        slide=10.0,
        window=30.0,
        split_size=4,
    )
    defaults.update(kwargs)
    return StreamDriver(**defaults)


def stream(end: float) -> list[tuple[float, str]]:
    return [(float(t), f"s{int(t // 10)}") for t in range(int(end))]


def test_driver_restore_resumes_bit_identically(tmp_path):
    full = stream(46)
    baseline = make_driver()
    baseline_results = baseline.feed(full)

    kill_at = 25  # mid-slide: records 20..24 are fed but unacknowledged
    victim = make_driver()
    prefix_results = victim.feed(full[:kill_at])
    assert victim._pending  # the unacknowledged tail exists
    pending_before = list(victim._pending)
    victim.checkpoint(tmp_path / "ckpt")
    del victim

    resumed = StreamDriver.restore(
        tmp_path / "ckpt", count_job(), timestamp_fn=lambda record: record[0]
    )
    assert resumed._pending == pending_before
    tail_results = resumed.feed(full[kill_at:])

    expected = [_run_record(r) for r in baseline_results]
    got = [_run_record(r) for r in prefix_results + tail_results]
    assert got == expected
    assert resumed.current_outputs() == baseline.current_outputs()


def test_driver_restore_replays_pending_tail_exactly_once(tmp_path):
    victim = make_driver()
    victim.feed(stream(25))
    victim.checkpoint(tmp_path / "ckpt")
    resumed = StreamDriver.restore(
        tmp_path / "ckpt", count_job(), timestamp_fn=lambda record: record[0]
    )
    # Crossing the next boundary closes the slide containing exactly the
    # replayed tail: five s2 records (t=20..24) and five more (t=25..29).
    produced = resumed.feed(stream(46)[25:])
    assert produced[0].outputs["s2"] == 10


def test_driver_flush_after_restore(tmp_path):
    victim = make_driver()
    victim.feed(stream(25))
    victim.checkpoint(tmp_path / "ckpt")
    resumed = StreamDriver.restore(
        tmp_path / "ckpt", count_job(), timestamp_fn=lambda record: record[0]
    )
    result = resumed.flush()
    assert result is not None
    assert result.outputs["s2"] == 5  # the replayed tail, nothing else


def _chaos_plan() -> ChaosPlan:
    return ChaosPlan(
        schedules={
            1: ChaosSchedule(
                crashes=[MachineCrash(time=0.5, machine_id=2)], seed=3
            ),
            2: ChaosSchedule(
                crashes=[MachineCrash(time=0.2, machine_id=5, recover_at=4.0)],
                seed=4,
            ),
        }
    )


def _chaos_slider() -> Slider:
    return Slider(
        _scenario_job(),
        WindowMode.VARIABLE,
        config=SliderConfig(tree="folding"),
        cluster=Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0)),
        chaos=_chaos_plan(),
    )


def test_chaos_and_restore_compose_bit_identically(tmp_path):
    """Machines crash in the same runs the engine is killed/restored; the
    resumed runs and their fault telemetry match the uninterrupted run."""
    steps = [
        [_scenario_split(i) for i in range(6)],
        [_scenario_split(10), _scenario_split(11)],
        [_scenario_split(12)],
    ]
    baseline = _chaos_slider()
    expected = [_run_record(baseline.initial_run(steps[0]))]
    expected.append(_run_record(baseline.advance(steps[1], 2)))
    expected.append(_run_record(baseline.advance(steps[2], 1)))
    baseline.verify_outputs()

    victim = _chaos_slider()
    got = [_run_record(victim.initial_run(steps[0]))]
    got.append(_run_record(victim.advance(steps[1], 2)))
    victim.checkpoint(tmp_path / "ckpt")
    del victim

    resumed = Slider.restore(tmp_path / "ckpt", _scenario_job())
    got.append(_run_record(resumed.advance(steps[2], 1)))
    resumed.verify_outputs()

    assert got == expected
    # Deterministic fault telemetry: the replayed-and-continued counter
    # totals equal the uninterrupted run's, fault events included.
    assert resumed.telemetry.counters == baseline.telemetry.counters

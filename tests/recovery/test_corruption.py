"""Injected corruption is detected and repaired; outputs never change."""

import pytest

from repro.cluster.chaos import ChaosPlan, ChaosSchedule, CorruptionEvent
from repro.cluster.machine import Cluster, ClusterConfig
from repro.common.errors import CorruptionError
from repro.recovery.repair import (
    _corrupt_copy,
    corruption_candidates,
    verify_restored,
)
from repro.slider.equivalence import _scenario_job, _scenario_split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def _run_scenario(variant: str, chaos=None):
    slider = Slider(
        _scenario_job(),
        WindowMode.VARIABLE,
        config=SliderConfig(tree=variant),
        cluster=Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0)),
        chaos=chaos,
    )
    results = [slider.initial_run([_scenario_split(i) for i in range(6)])]
    results.append(slider.advance([_scenario_split(10)], 2))
    results.append(slider.advance([_scenario_split(11)], 1))
    return slider, results


def _outputs(results):
    return [dict(result.outputs) for result in results]


def _corruption_plan(count=3, seed=5) -> ChaosPlan:
    return ChaosPlan(
        schedules={
            1: ChaosSchedule(
                corruptions=[CorruptionEvent(count=count)], seed=seed
            ),
            2: ChaosSchedule(
                corruptions=[CorruptionEvent(count=count, salt=1)], seed=seed
            ),
        }
    )


@pytest.mark.parametrize("variant", ["folding", "randomized", "strawman"])
def test_corruption_never_reaches_outputs(variant):
    _, clean = _run_scenario(variant)
    corrupted_engine, corrupted = _run_scenario(variant, chaos=_corruption_plan())
    assert _outputs(corrupted) == _outputs(clean)
    corrupted_engine.verify_outputs()
    injected = corrupted_engine.telemetry.counters.get(
        "recovery.corruptions_injected", 0
    )
    assert injected > 0


def test_eager_repair_is_charged_as_work():
    clean_engine, _ = _run_scenario("folding")
    engine, results = _run_scenario("folding", chaos=_corruption_plan())
    recovery = results[1].report.recovery
    assert recovery["corruptions_injected"] > 0
    assert recovery["corruptions_repaired"] > 0
    assert recovery["corruption_repair_work"] > 0
    # Corruption costs work, not correctness: total charged work strictly
    # exceeds the clean run's.
    assert engine.meter.total() > clean_engine.meter.total()


def test_repair_telemetry_is_deterministic():
    a, results_a = _run_scenario("folding", chaos=_corruption_plan())
    b, results_b = _run_scenario("folding", chaos=_corruption_plan())
    assert [r.report.recovery for r in results_a] == [
        r.report.recovery for r in results_b
    ]
    assert a.telemetry.counters == b.telemetry.counters


def test_corruption_candidates_are_deterministic():
    engine, _ = _run_scenario("folding")
    assert corruption_candidates(engine) == corruption_candidates(engine)
    assert corruption_candidates(engine), "retained state should be flippable"


def test_randomized_memo_corruption_heals_lazily():
    """Tainted memo entries are verified on next read and dropped; the
    backing replica (untouched by the bit-flip) serves the good copy."""
    _, clean = _run_scenario("randomized")
    engine, results = _run_scenario("randomized", chaos=_corruption_plan(count=4))
    assert _outputs(results) == _outputs(clean)
    engine.verify_outputs()


def test_verify_restored_raises_on_in_memory_corruption():
    engine, _ = _run_scenario("folding")
    assert verify_restored(engine) > 0
    tree = engine.trees[0]
    position = next(iter(sorted(tree._cache)))
    tree._cache[position] = _corrupt_copy(tree._cache[position], salt=7)
    with pytest.raises(CorruptionError, match="fingerprint"):
        verify_restored(engine)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.rng import RngStream
from repro.core.partition import Partition
from repro.mapreduce.combiners import SumCombiner


@pytest.fixture
def rng() -> RngStream:
    return RngStream(seed=1234, name="tests")


@pytest.fixture
def sum_combiner() -> SumCombiner:
    return SumCombiner()


def counts_partition(pairs: dict) -> Partition:
    """Build a Partition of key -> count entries."""
    return Partition(dict(pairs))


def leaf_seq(values: list[int]) -> list[Partition]:
    """One single-key partition per value; roots then sum the values.

    Each leaf also carries a unique positional key so leaves are
    distinguishable (distinct uids) even when values repeat.
    """
    return [
        Partition({"total": value, ("leaf", index): 1})
        for index, value in enumerate(values)
    ]


def root_total(partition: Partition) -> int:
    """The summed 'total' key of a root built from leaf_seq leaves."""
    return partition.get("total", 0)

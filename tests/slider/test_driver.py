"""Tests for the time-based StreamDriver."""

import pytest

from repro.common.errors import WindowError
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.slider.driver import StreamDriver


def count_job() -> MapReduceJob:
    # Records are (timestamp, key); count occurrences per key.
    return MapReduceJob(
        name="event-count",
        map_fn=lambda record: [(record[1], 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def make_driver(**kwargs) -> StreamDriver:
    defaults = dict(
        job=count_job(),
        timestamp_fn=lambda record: record[0],
        slide=10.0,
        window=30.0,
        split_size=4,
    )
    defaults.update(kwargs)
    return StreamDriver(**defaults)


def events(start, end, key, step=1.0):
    t = start
    while t < end:
        yield (t, key)
        t += step


def test_validation():
    with pytest.raises(WindowError):
        make_driver(slide=0)
    with pytest.raises(WindowError):
        make_driver(window=-5.0)
    with pytest.raises(WindowError):
        make_driver(window=5.0, slide=10.0)


def test_no_result_until_first_boundary():
    driver = make_driver()
    produced = driver.feed(events(0, 9, "a"))
    assert produced == []
    assert driver.current_outputs() == {}


def test_first_boundary_triggers_initial_run():
    driver = make_driver()
    produced = driver.feed(list(events(0, 9, "a")) + [(11.0, "b")])
    assert len(produced) == 1
    assert produced[0].outputs == {"a": 9}


def test_window_contents_match_duration():
    driver = make_driver()  # window 30, slide 10
    # Four slides of 10 distinct keys each; window holds last 3 slides.
    stream = (
        list(events(0, 10, "s0"))
        + list(events(10, 20, "s1"))
        + list(events(20, 30, "s2"))
        + list(events(30, 40, "s3"))
        + [(41.0, "s4")]  # pushes the 30-40 slide closed
    )
    produced = driver.feed(stream)
    final = produced[-1].outputs
    assert "s0" not in final  # expired
    assert final == {"s1": 10, "s2": 10, "s3": 10}


def test_append_only_mode_never_expires():
    driver = make_driver(window=None)
    stream = list(events(0, 10, "s0")) + list(events(10, 20, "s1")) + [(21.0, "x")]
    produced = driver.feed(stream)
    assert produced[-1].outputs == {"s0": 10, "s1": 10}
    assert driver.mode.value == "append"


def test_flush_emits_pending_records():
    driver = make_driver()
    driver.feed(list(events(0, 9, "a")) + [(11.0, "b")])
    result = driver.flush()
    assert result is not None
    assert result.outputs == {"a": 9, "b": 1}


def test_empty_slide_is_handled():
    driver = make_driver()
    # A gap of several slides with no records at all.
    produced = driver.feed([(5.0, "a"), (35.0, "b")])
    # Boundaries at 10, 20, 30 all closed; the first produced the initial run.
    assert len(produced) == 3
    assert produced[-1].outputs == {"a": 1}


def test_results_accumulate_reports():
    driver = make_driver()
    driver.feed(list(events(0, 25, "k")) + [(31.0, "k")])
    assert len(driver.results) == 3
    assert all(r.report.work >= 0 for r in driver.results)


def test_failed_slide_leaves_driver_state_intact(tmp_path):
    """A failure inside the engine must not half-close the slide: the
    stream cursor rolls back, so a checkpoint taken before the crash can
    resume without losing or duplicating records."""
    tripped = []

    def map_fn(record):
        if record[1] == "boom" and not tripped:
            tripped.append(record)
            raise RuntimeError("transient user-code failure")
        return [(record[1], 1)]

    job = MapReduceJob(
        name="flaky", map_fn=map_fn, combiner=SumCombiner(), num_reducers=2
    )
    driver = make_driver(job=job)
    driver.feed(list(events(0, 9, "a")) + [(9.5, "boom")])
    pending_before = list(driver._pending)
    driver.checkpoint(tmp_path / "ckpt")

    with pytest.raises(RuntimeError, match="transient"):
        driver.feed([(11.0, "b")])

    # Nothing was committed: no slide closed, the buffered records are
    # still pending, and the boundary record was not swallowed.
    assert driver.results == []
    assert driver._pending == pending_before
    assert driver._slide_index == 0
    assert not driver._ran_initial
    assert driver._live_batches == []

    # Recovery: restore the pre-crash checkpoint and replay the tail
    # (the transient failure has cleared); every record lands exactly once.
    resumed = StreamDriver.restore(
        tmp_path / "ckpt", job, timestamp_fn=lambda record: record[0]
    )
    assert resumed._pending == pending_before
    produced = resumed.feed([(11.0, "b")])
    assert len(produced) == 1
    assert produced[0].outputs == {"a": 9, "boom": 1}

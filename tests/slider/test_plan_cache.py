"""The plan cache: steady-state hits, invalidation, and replay identity.

The cache's correctness contract: a replayed advance is *driven by the
trees exactly like a fresh one* — same outputs, same work, same metered
breakdown — only the step re-emission (replanning) is skipped.  Its
safety contract: anything that could change the upcoming plan's shape
(config, job, chaos, non-steady motion, data-dependent planners) must
miss or bypass.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.chaos import ChaosPlan, ChaosSchedule
from repro.core.compile import PlanCache, compile_plan
from repro.core.plan import Plan
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.metrics import Phase
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

WINDOW = 8


def count_job(num_reducers=2, name="counts"):
    return MapReduceJob(
        name=name,
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=num_reducers,
    )


def split_of(i, spread=12, n=20):
    return Split.from_records(
        [f"w{(i * 7 + j) % spread}" for j in range(n)], label=f"s{i}"
    )


def make_slider(variant="folding", mode=WindowMode.VARIABLE, job=None, **kw):
    config = SliderConfig(mode=mode, tree=variant, **kw)
    return Slider(job or count_job(), mode, config=config)


def warmed_slider(variant="folding", mode=WindowMode.VARIABLE, **kw):
    """A slider driven through one full window period of steady slides."""
    slider = make_slider(variant, mode, **kw)
    slider.initial_run([split_of(i) for i in range(WINDOW)])
    removed = 0 if mode is WindowMode.APPEND else 1
    for k in range(WINDOW):
        slider.advance([split_of(WINDOW + k)], removed)
    return slider


class TestSteadyState:
    def test_folding_hits_after_one_window_period(self):
        slider = warmed_slider("folding")
        for k in range(12):
            result = slider.advance([split_of(100 + k)], 1)
            assert result.plan_cache_hit, k
            assert result.compiled is not None
        stats = slider.plan_cache.stats
        assert stats.hits == 12
        assert stats.misses == WINDOW  # the warmup period, nothing after

    def test_rotating_hits_after_one_window_period(self):
        slider = warmed_slider("rotating", WindowMode.FIXED)
        for k in range(6):
            assert slider.advance([split_of(100 + k)], 1).plan_cache_hit

    def test_coalescing_hits_from_second_advance(self):
        slider = make_slider("coalescing", WindowMode.APPEND)
        slider.initial_run([split_of(i) for i in range(4)])
        first = slider.advance([split_of(10)], 0)
        assert not first.plan_cache_hit
        for k in range(8):
            assert slider.advance([split_of(11 + k)], 0).plan_cache_hit

    def test_replay_serves_the_stored_plan_object(self):
        slider = warmed_slider("folding")
        hit = slider.advance([split_of(100)], 1)
        assert hit.plan is hit.compiled.plan
        # Replanning was skipped: the plan served is the one compiled
        # when this motion was first seen, not a fresh emission.
        assert hit.plan.label != f"incremental-{hit.run_index}"

    def test_replayed_outputs_and_work_match_uncached_twin(self):
        cached = warmed_slider("folding")
        plain = warmed_slider("folding", plan_cache=False)
        for k in range(6):
            a = cached.advance([split_of(50 + k)], 1)
            b = plain.advance([split_of(50 + k)], 1)
            assert a.plan_cache_hit and not b.plan_cache_hit
            assert a.outputs == b.outputs
            assert a.report.work == b.report.work
            assert a.report.breakdown == b.report.breakdown
        assert plain.plan_cache.stats.hits == 0
        assert plain.plan_cache.stats.misses == 0

    def test_uncacheable_variants_never_enter(self):
        for variant in ("randomized", "strawman"):
            slider = make_slider(variant)
            slider.initial_run([split_of(i) for i in range(4)])
            for k in range(3):
                assert not slider.advance([split_of(9 + k)], 1).plan_cache_hit
            stats = slider.plan_cache.stats
            assert stats.hits == 0 and stats.misses == 0, variant
            assert stats.uncacheable == 3, variant
            assert len(slider.plan_cache) == 0, variant


class TestInvalidation:
    def key_of(self, slider, added=1, removed=1):
        return slider.planner._plan_key([split_of(90 + i) for i in range(added)], removed)

    def test_any_config_change_misses(self):
        base = warmed_slider("folding")
        for change in (
            dict(rebuild_factor=3),
            dict(memo_budget=17),
            dict(plan_fusion=False),
            dict(seed=99),
            dict(memo_verify="off"),
        ):
            other = warmed_slider("folding", **change)
            assert self.key_of(base) != self.key_of(other), change

    def test_job_change_misses(self):
        base = warmed_slider("folding")
        renamed = warmed_slider("folding", job=count_job(name="other"))
        fan_out = warmed_slider("folding", job=count_job(num_reducers=3))
        assert self.key_of(base) != self.key_of(renamed)
        assert self.key_of(base) != self.key_of(fan_out)

    def test_motion_shape_is_part_of_the_key(self):
        slider = warmed_slider("folding")
        assert self.key_of(slider, added=1, removed=1) != self.key_of(
            slider, added=2, removed=1
        )
        assert self.key_of(slider, added=1, removed=1) != self.key_of(
            slider, added=1, removed=2
        )

    def test_bulk_jump_misses_then_recovers(self):
        slider = warmed_slider("folding")
        assert slider.advance([split_of(60)], 1).plan_cache_hit
        bulk = slider.advance([split_of(61), split_of(62), split_of(63)], 4)
        assert not bulk.plan_cache_hit  # never-seen motion over new structure
        assert slider.verify_outputs()

    def test_full_eviction_misses(self):
        slider = warmed_slider("folding")
        emptied = slider.advance([], WINDOW)
        assert not emptied.plan_cache_hit
        assert emptied.outputs == {}

    def test_chaos_bypasses_the_cache(self):
        # A schedule (even a calm one) means the compiled template cannot
        # be trusted: every run under chaos is keyed None and bypassed.
        config = SliderConfig(mode=WindowMode.VARIABLE, tree="folding")
        slider = Slider(
            count_job(),
            WindowMode.VARIABLE,
            config=config,
            chaos=ChaosSchedule(),
        )
        slider.initial_run([split_of(i) for i in range(4)])
        for k in range(3):
            assert not slider.advance([split_of(9 + k)], 1).plan_cache_hit
        stats = slider.plan_cache.stats
        assert stats.bypasses == 3
        assert stats.hits == 0 and stats.misses == 0

    def test_chaos_plan_bypasses_only_scheduled_runs(self):
        chaos = ChaosPlan(schedules={3: ChaosSchedule()})
        slider = Slider(
            count_job(), WindowMode.APPEND,
            config=SliderConfig(mode=WindowMode.APPEND, tree="coalescing"),
            chaos=chaos,
        )
        slider.initial_run([split_of(0)])
        hits = [slider.advance([split_of(1 + k)], 0).plan_cache_hit for k in range(5)]
        # Runs are numbered from the initial run; run 3 is scheduled.
        assert False in hits
        assert slider.plan_cache.stats.bypasses == 1

    def test_cache_disabled_by_config(self):
        slider = warmed_slider("folding", plan_cache=False)
        stats = slider.plan_cache.stats
        assert stats.hits == 0 and stats.misses == 0 and len(slider.plan_cache) == 0

    def test_capacity_validated(self):
        try:
            SliderConfig(plan_cache_capacity=0)
        except ValueError as exc:
            assert "plan_cache_capacity" in str(exc)
        else:  # pragma: no cover - defends the assertion below
            raise AssertionError("capacity 0 must be rejected")


class TestPlanCacheMechanics:
    def compiled(self, label):
        plan = Plan(label=label)
        plan.step("map", label=f"map:{label}", phase=Phase.MAP, n_inputs=1)
        return compile_plan(plan)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        for name in ("a", "b", "c"):
            cache.store((name,), self.compiled(name))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(("a",)) is None  # oldest went first
        assert cache.lookup(("c",)) is not None

    def test_lookup_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.store(("a",), self.compiled("a"))
        cache.store(("b",), self.compiled("b"))
        cache.lookup(("a",))
        cache.store(("c",), self.compiled("c"))
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("b",)) is None

    def test_stats_snapshot(self):
        cache = PlanCache()
        assert cache.stats.hit_rate == 0.0
        cache.lookup(("missing",))
        cache.store(("k",), self.compiled("k"))
        cache.lookup(("k",))
        snapshot = cache.stats.snapshot()
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5
        cache.clear()
        assert len(cache) == 0


# -- the property: caching is invisible to results -------------------------

motions = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 2)), min_size=1, max_size=10
)


@settings(max_examples=25, deadline=None)
@given(motions=motions, spread=st.integers(2, 12))
def test_cached_and_fresh_plans_structurally_identical(motions, spread):
    """Twin sliders over one random motion sequence: the cache-enabled
    twin must produce the same outputs, the same metered work, and a
    structurally identical plan on every run."""
    cached = make_slider("folding")
    plain = make_slider("folding", plan_cache=False)
    initial = [split_of(i, spread=spread) for i in range(4)]
    window = 4
    for slider in (cached, plain):
        slider.initial_run(list(initial))
    for step, (add, remove) in enumerate(motions):
        remove = min(remove, window)
        window += add - remove
        added = [
            split_of(20 + 5 * step + j, spread=spread) for j in range(add)
        ]
        a = cached.advance(list(added), remove)
        b = plain.advance(list(added), remove)
        assert a.outputs == b.outputs
        assert a.report.work == b.report.work
        assert (
            a.plan.structural_signature() == b.plan.structural_signature()
        )
        if a.plan_cache_hit:
            assert a.compiled.plan is a.plan
    # verify_outputs raises on divergence and returns the number of keys
    # checked — which is legitimately 0 when the motion emptied the window.
    assert cached.verify_outputs() == plain.verify_outputs()

"""Edge-case tests for the Slider engine."""

import pytest

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import BatchRuntime
from repro.mapreduce.types import Split, make_splits
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def word_job(num_reducers=3):
    return MapReduceJob(
        name="wc",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=num_reducers,
    )


CORPUS = [f"w{i % 5} w{i % 11} common" for i in range(30)]


def test_single_reducer():
    job = word_job(num_reducers=1)
    splits = make_splits(CORPUS, 2)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:10])
    result = slider.advance(splits[10:12], 2)
    expected = BatchRuntime(job).run(splits[2:12]).outputs
    assert result.outputs == expected


def test_many_reducers_some_empty():
    """More reducers than keys: empty partitions flow through the trees."""
    job = MapReduceJob(
        name="two-keys",
        map_fn=lambda x: [(x % 2, 1)],
        combiner=SumCombiner(),
        num_reducers=8,
    )
    splits = make_splits(list(range(20)), 2)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:8])
    result = slider.advance(splits[8:10], 1)
    expected = BatchRuntime(job).run(splits[1:10]).outputs
    assert result.outputs == expected


def test_zero_delta_advance_is_cheap_and_correct():
    job = word_job()
    splits = make_splits(CORPUS, 2)
    slider = Slider(job, WindowMode.VARIABLE)
    initial = slider.initial_run(splits[:10])
    unchanged = slider.advance([], 0)
    assert unchanged.outputs == initial.outputs
    assert unchanged.report.work < initial.report.work / 10


def test_fixed_mode_zero_delta():
    job = word_job()
    splits = make_splits(CORPUS, 2)
    slider = Slider(job, WindowMode.FIXED)
    initial = slider.initial_run(splits[:10])
    assert slider.advance([], 0).outputs == initial.outputs


def test_map_fn_emitting_nothing_for_some_records():
    job = MapReduceJob(
        name="sparse",
        map_fn=lambda x: [(x, 1)] if x % 3 == 0 else [],
        combiner=SumCombiner(),
        num_reducers=2,
    )
    splits = make_splits(list(range(30)), 3)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:8])
    result = slider.advance(splits[8:10], 2)
    expected = BatchRuntime(job).run(splits[2:10]).outputs
    assert result.outputs == expected


def test_reduce_memo_tracks_value_reversions():
    """A key whose count changes and then reverts must reduce correctly."""
    calls = []

    def noisy_reduce(key, value):
        calls.append(key)
        return value

    job = MapReduceJob(
        name="revert",
        map_fn=lambda x: [("k", x)],
        combiner=SumCombiner(),
        reduce_fn=noisy_reduce,
        num_reducers=1,
    )
    a = Split.from_records([5], label="a")
    b = Split.from_records([3], label="b")
    c = Split.from_records([3], label="c")  # same value, different split

    slider = Slider(job, WindowMode.VARIABLE)
    assert slider.initial_run([a, b]).outputs == {"k": 8}
    calls.clear()
    # Append c: the sum changes -> reduce re-runs for the key.
    result = slider.advance([c], removed=0)
    assert result.outputs == {"k": 11}
    assert calls == ["k"]
    # Drop a: the sum changes again -> reduce re-runs again.
    calls.clear()
    result = slider.advance([], removed=1)
    assert result.outputs == {"k": 6}
    assert calls == ["k"]
    # No change at all: the memoized reduce output is reused.
    calls.clear()
    result = slider.advance([], removed=0)
    assert result.outputs == {"k": 6}
    assert calls == []


def test_reused_split_after_gc_disabled_hits_map_memo():
    job = word_job()
    splits = make_splits(CORPUS, 2)
    config = SliderConfig(mode=WindowMode.VARIABLE, auto_gc=False)
    slider = Slider(job, WindowMode.VARIABLE, config=config)
    slider.initial_run(splits[:6])
    slider.advance([], removed=3)  # splits 0-2 leave, memo retained
    result = slider.advance(splits[:3], removed=0)  # they come back
    assert result.new_map_tasks == 0
    assert result.reused_map_tasks == 3


def test_config_mode_mismatch_is_reconciled():
    config = SliderConfig(mode=WindowMode.APPEND)
    slider = Slider(word_job(), WindowMode.FIXED, config=config)
    assert slider.config.mode is WindowMode.FIXED
    assert slider.config.tree_variant() == "rotating"


def test_unknown_tree_variant_rejected():
    config = SliderConfig(mode=WindowMode.VARIABLE, tree="btree")
    with pytest.raises(ValueError):
        Slider(word_job(), WindowMode.VARIABLE, config=config)


def test_background_preprocess_noop_for_variable_mode():
    job = word_job()
    splits = make_splits(CORPUS, 2)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:6])
    assert slider.background_preprocess() == 0.0


def test_window_emptied_and_refilled():
    job = word_job()
    splits = make_splits(CORPUS, 2)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:4])
    empty = slider.advance([], removed=4)
    assert empty.outputs == {}
    refilled = slider.advance(splits[4:8], 0)
    expected = BatchRuntime(job).run(splits[4:8]).outputs
    assert refilled.outputs == expected

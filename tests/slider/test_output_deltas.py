"""Tests for the output-delta reporting (changed/removed keys)."""

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider
from repro.slider.window import WindowMode


def count_job():
    return MapReduceJob(
        name="counts",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def split_of(records, label):
    return Split.from_records(records, label=label)


def test_initial_run_reports_all_keys_changed():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    result = slider.initial_run([split_of(["a", "b"], "s0")])
    assert result.changed_keys == {"a", "b"}
    assert result.removed_keys == frozenset()


def test_append_reports_only_affected_keys():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a", "b"], "s0")])
    result = slider.advance([split_of(["b", "c"], "s1")], 0)
    # 'a' is untouched, 'b' changed count, 'c' is new.
    assert result.changed_keys == {"b", "c"}
    assert result.removed_keys == frozenset()
    assert result.outputs == {"a": 1, "b": 2, "c": 1}


def test_removal_reports_disappearing_keys():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a"], "s0"), split_of(["b"], "s1")])
    result = slider.advance([], removed=1)  # drops the 'a' split
    assert result.removed_keys == {"a"}
    assert "a" not in result.outputs
    assert result.changed_keys == frozenset()


def test_no_change_reports_empty_delta():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a", "b"], "s0")])
    result = slider.advance([], 0)
    assert result.changed_keys == frozenset()
    assert result.removed_keys == frozenset()


def test_delta_composes_to_full_output():
    """Applying the deltas to the previous output reproduces the new one."""
    slider = Slider(count_job(), WindowMode.VARIABLE)
    previous = slider.initial_run(
        [split_of(["a", "b"], "s0"), split_of(["b", "c"], "s1")]
    ).outputs
    result = slider.advance([split_of(["c", "d"], "s2")], removed=1)

    patched = dict(previous)
    for key in result.removed_keys:
        patched.pop(key, None)
    for key in result.changed_keys:
        patched[key] = result.outputs[key]
    assert patched == result.outputs


def test_full_eviction_reports_everything_removed():
    """Sliding every split out empties the output and reports all keys as
    removed, none as changed."""
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a", "b"], "s0"), split_of(["c"], "s1")])
    result = slider.advance([], removed=2)
    assert result.outputs == {}
    assert result.removed_keys == {"a", "b", "c"}
    assert result.changed_keys == frozenset()


def test_full_eviction_then_refill():
    """A window emptied and refilled reports the new keys as changed."""
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a"], "s0")])
    slider.advance([], removed=1)
    result = slider.advance([split_of(["b", "b"], "s1")], removed=0)
    assert result.outputs == {"b": 2}
    assert result.changed_keys == {"b"}
    assert result.removed_keys == frozenset()


def test_collect_garbage_shrinks_space():
    """Memoized state for evicted splits is dropped by collect_garbage,
    and space() reflects the shrink."""
    from repro.slider.system import SliderConfig

    config = SliderConfig(mode=WindowMode.VARIABLE, auto_gc=False)
    slider = Slider(count_job(), WindowMode.VARIABLE, config=config)
    slider.initial_run(
        [split_of([f"k{i}", f"k{i}x"], f"s{i}") for i in range(6)]
    )
    # Slide most of the window out without garbage collection.
    slider.advance([split_of(["fresh"], "s9")], removed=5)
    before = slider.space()
    dropped = slider.collect_garbage()
    after = slider.space()
    assert dropped > 0
    assert after < before
    # Outputs are untouched by garbage collection.
    assert slider.verify_outputs() > 0


def test_auto_gc_keeps_space_bounded():
    """With auto_gc on (the default), sliding a fixed-size window does not
    accumulate memoized state for long-gone splits."""
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of([f"w{i}"], f"s{i}") for i in range(4)])
    sizes = []
    for step in range(8):
        result = slider.advance(
            [split_of([f"w{4 + step}"], f"s{4 + step}")], removed=1
        )
        sizes.append(result.report.space)
    # The window stays 4 splits wide; space must plateau, not grow
    # linearly with the number of runs.
    assert max(sizes[4:]) <= max(sizes[:4]) + 1e-9

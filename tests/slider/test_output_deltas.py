"""Tests for the output-delta reporting (changed/removed keys)."""

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider
from repro.slider.window import WindowMode


def count_job():
    return MapReduceJob(
        name="counts",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def split_of(records, label):
    return Split.from_records(records, label=label)


def test_initial_run_reports_all_keys_changed():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    result = slider.initial_run([split_of(["a", "b"], "s0")])
    assert result.changed_keys == {"a", "b"}
    assert result.removed_keys == frozenset()


def test_append_reports_only_affected_keys():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a", "b"], "s0")])
    result = slider.advance([split_of(["b", "c"], "s1")], 0)
    # 'a' is untouched, 'b' changed count, 'c' is new.
    assert result.changed_keys == {"b", "c"}
    assert result.removed_keys == frozenset()
    assert result.outputs == {"a": 1, "b": 2, "c": 1}


def test_removal_reports_disappearing_keys():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a"], "s0"), split_of(["b"], "s1")])
    result = slider.advance([], removed=1)  # drops the 'a' split
    assert result.removed_keys == {"a"}
    assert "a" not in result.outputs
    assert result.changed_keys == frozenset()


def test_no_change_reports_empty_delta():
    slider = Slider(count_job(), WindowMode.VARIABLE)
    slider.initial_run([split_of(["a", "b"], "s0")])
    result = slider.advance([], 0)
    assert result.changed_keys == frozenset()
    assert result.removed_keys == frozenset()


def test_delta_composes_to_full_output():
    """Applying the deltas to the previous output reproduces the new one."""
    slider = Slider(count_job(), WindowMode.VARIABLE)
    previous = slider.initial_run(
        [split_of(["a", "b"], "s0"), split_of(["b", "c"], "s1")]
    ).outputs
    result = slider.advance([split_of(["c", "d"], "s2")], removed=1)

    patched = dict(previous)
    for key in result.removed_keys:
        patched.pop(key, None)
    for key in result.changed_keys:
        patched[key] = result.outputs[key]
    assert patched == result.outputs

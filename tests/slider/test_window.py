"""Unit tests for window modes and delta validation."""

import pytest

from repro.common.errors import WindowError
from repro.slider.window import WindowDelta, WindowMode


def test_negative_counts_rejected():
    with pytest.raises(WindowError):
        WindowDelta(-1, 0).validate(WindowMode.VARIABLE, 10)
    with pytest.raises(WindowError):
        WindowDelta(0, -1).validate(WindowMode.VARIABLE, 10)


def test_remove_bounded_by_window():
    with pytest.raises(WindowError):
        WindowDelta(0, 11).validate(WindowMode.VARIABLE, 10)
    WindowDelta(0, 10).validate(WindowMode.VARIABLE, 10)  # exactly empties


def test_append_mode_forbids_removal():
    with pytest.raises(WindowError):
        WindowDelta(2, 1).validate(WindowMode.APPEND, 10)
    WindowDelta(5, 0).validate(WindowMode.APPEND, 10)


def test_fixed_mode_requires_balance():
    with pytest.raises(WindowError):
        WindowDelta(2, 3).validate(WindowMode.FIXED, 10)
    WindowDelta(3, 3).validate(WindowMode.FIXED, 10)


def test_variable_mode_accepts_any_legal_delta():
    WindowDelta(7, 2).validate(WindowMode.VARIABLE, 10)
    WindowDelta(0, 0).validate(WindowMode.VARIABLE, 10)

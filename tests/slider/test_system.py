"""Integration tests: the Slider engine end to end on a word-count job."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig
from repro.common.errors import WindowError
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import make_splits
from repro.slider.baseline import VanillaRunner
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


def word_count_job(num_reducers=3) -> MapReduceJob:
    return MapReduceJob(
        name="wordcount",
        map_fn=lambda line: [(word, 1) for word in line.split()],
        combiner=SumCombiner(),
        num_reducers=num_reducers,
    )


def lines(*texts):
    return list(texts)


def expected_counts(all_lines):
    counts = {}
    for line in all_lines:
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


CORPUS = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "a quick brown dog",
    "foxes and dogs play",
    "the fox sleeps",
    "dogs bark at the fox",
    "quick foxes jump",
]


@pytest.mark.parametrize("mode", list(WindowMode))
def test_initial_run_matches_vanilla(mode):
    job = word_count_job()
    splits = make_splits(CORPUS[:4], split_size=1)
    slider = Slider(job, mode=mode)
    vanilla = VanillaRunner(job, mode=mode)
    assert (
        slider.initial_run(splits).outputs == vanilla.initial_run(splits).outputs
    )


@pytest.mark.parametrize("mode", list(WindowMode))
def test_advance_matches_vanilla(mode):
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, mode=mode)
    vanilla = VanillaRunner(job, mode=mode)
    slider.initial_run(splits[:4])
    vanilla.initial_run(splits[:4])

    removed = {WindowMode.APPEND: 0, WindowMode.FIXED: 2, WindowMode.VARIABLE: 1}[
        mode
    ]
    added = splits[4:6]
    assert (
        slider.advance(added, removed).outputs
        == vanilla.advance(added, removed).outputs
    )


def test_variable_mode_multiple_slides_stay_correct():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, mode=WindowMode.VARIABLE)
    slider.initial_run(splits[:3])
    window = list(splits[:3])

    schedule = [(splits[3:5], 1), (splits[5:6], 2), (splits[6:8], 0)]
    for added, removed in schedule:
        window = window[removed:] + list(added)
        result = slider.advance(added, removed)
        expected = expected_counts(
            [line for split in window for line in split.records]
        )
        assert result.outputs == expected


def test_incremental_run_cheaper_than_vanilla():
    job = word_count_job()
    splits = make_splits(CORPUS * 32, split_size=1)  # 256 splits
    slider = Slider(job, mode=WindowMode.VARIABLE)
    vanilla = VanillaRunner(job)
    slider.initial_run(splits[:250])
    vanilla.initial_run(splits[:250])

    s = slider.advance(splits[250:252], 2)
    v = vanilla.advance(splits[250:252], 2)
    assert s.outputs == v.outputs
    assert s.report.work < v.report.work / 2
    # Map-side savings are near total: 2 new tasks vs 250.
    assert s.report.breakdown["map"] < v.report.breakdown["map"] / 50


def test_map_tasks_reused_across_runs():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, mode=WindowMode.VARIABLE)
    slider.initial_run(splits[:4])
    result = slider.advance(splits[4:6], 1)
    assert result.new_map_tasks == 2
    # Re-adding an already-seen split reuses its map output.
    result = slider.advance([splits[0]], 1)
    # splits[0] fell out of the window and was GC'd, so it re-runs.
    assert result.new_map_tasks in (0, 1)


def test_fixed_mode_rejects_unbalanced_slide():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, mode=WindowMode.FIXED)
    slider.initial_run(splits[:4])
    with pytest.raises(WindowError):
        slider.advance(splits[4:6], 1)


def test_append_mode_rejects_removal():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, mode=WindowMode.APPEND)
    slider.initial_run(splits[:4])
    with pytest.raises(WindowError):
        slider.advance(splits[4:5], 1)


def test_advance_before_initial_rejected():
    slider = Slider(word_count_job())
    with pytest.raises(WindowError):
        slider.advance([], 0)


def test_double_initial_rejected():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job)
    slider.initial_run(splits[:2])
    with pytest.raises(WindowError):
        slider.initial_run(splits[:2])


def test_strawman_variant_correct_but_slower_on_slides():
    job = word_count_job()
    splits = make_splits(CORPUS * 32, split_size=1)
    config_strawman = SliderConfig(mode=WindowMode.VARIABLE, tree="strawman")
    strawman = Slider(job, WindowMode.VARIABLE, config=config_strawman)
    folding = Slider(job, WindowMode.VARIABLE)
    strawman.initial_run(splits[:250])
    folding.initial_run(splits[:250])

    s = strawman.advance(splits[250:252], 2)
    f = folding.advance(splits[250:252], 2)
    assert s.outputs == f.outputs
    assert f.report.work < s.report.work


def test_randomized_variant_correct():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    config = SliderConfig(mode=WindowMode.VARIABLE, tree="randomized", seed=11)
    slider = Slider(job, WindowMode.VARIABLE, config=config)
    vanilla = VanillaRunner(job)
    slider.initial_run(splits[:5])
    vanilla.initial_run(splits[:5])
    assert (
        slider.advance(splits[5:7], 3).outputs
        == vanilla.advance(splits[5:7], 3).outputs
    )


def test_cluster_time_simulation_produces_finite_time():
    job = word_count_job()
    splits = make_splits(CORPUS * 4, split_size=1)
    cluster = Cluster(ClusterConfig(num_machines=8, straggler_fraction=0.0))
    slider = Slider(job, WindowMode.VARIABLE, cluster=cluster)
    result = slider.initial_run(splits[:24])
    assert 0 < result.report.time < result.report.work
    result = slider.advance(splits[24:26], 2)
    assert result.report.time > 0


def test_background_preprocess_charges_background_phase():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    config = SliderConfig(mode=WindowMode.FIXED, split_mode=True)
    slider = Slider(job, WindowMode.FIXED, config=config)
    slider.initial_run(splits[:4])
    charged = slider.background_preprocess()
    assert charged > 0
    result = slider.advance(splits[4:6], 2)
    window_lines = [
        line for split in splits[2:6] for line in split.records
    ]
    assert result.outputs == expected_counts(window_lines)


def test_gc_drops_out_of_window_map_outputs():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:4])
    slider.advance(splits[4:6], 4)
    live = {split.uid for split in slider.window}
    assert set(slider.map_memo) == live


def test_space_accounting_positive_after_runs():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, WindowMode.VARIABLE)
    slider.initial_run(splits[:4])
    assert slider.space() > 0


def test_current_outputs_matches_last_run():
    job = word_count_job()
    splits = make_splits(CORPUS, split_size=1)
    slider = Slider(job, WindowMode.VARIABLE)
    result = slider.initial_run(splits[:4])
    assert slider.current_outputs() == result.outputs

"""Golden plan shapes per variant, and plan memo-cache independence.

The plan is the memo-independent artifact of a run: what a window update
*will* compute, before the cache decides what actually runs.  Two suites
pin that down:

* golden shape tests — node counts, op mix, cache-edge counts, and level
  structure for every tree variant on the initial run and a mixed
  advance, frozen as literals so planner changes are deliberate;
* memo-independence — emptying every memo cache between runs must not
  change the plan (signature-identical) nor the outputs, for every
  variant and (via hypothesis) across random window movements.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

VARIANTS = [
    ("folding", WindowMode.VARIABLE),
    ("randomized", WindowMode.VARIABLE),
    ("strawman", WindowMode.VARIABLE),
    ("rotating", WindowMode.FIXED),
    ("coalescing", WindowMode.APPEND),
]

#: Captured from the fixed scenario below: 6-split initial run, then
#: advance by [s10, s11] removing 2 (0 in append mode).
GOLDEN_SHAPES = {
    "folding": {
        "initial": {
            "steps": 20,
            "ops": {"map": 6, "combine": 12, "reduce": 2},
            "cache_edges": 6,
            "levels": {1: 6, 2: 4, 3: 2},
        },
        "advance": {
            "steps": 14,
            "ops": {"map": 2, "combine": 10, "reduce": 2},
            "cache_edges": 2,
            "levels": {1: 4, 2: 4, 3: 2},
        },
    },
    "randomized": {
        "initial": {
            "steps": 13,
            "ops": {"map": 6, "combine": 5, "reduce": 2},
            "cache_edges": 11,
            "levels": {0: 2, 1: 2, 2: 1},
        },
        "advance": {
            "steps": 6,
            "ops": {"map": 2, "combine": 2, "reduce": 2},
            "cache_edges": 4,
            "levels": {0: 2},
        },
    },
    "strawman": {
        "initial": {
            "steps": 18,
            "ops": {"map": 6, "combine": 10, "reduce": 2},
            "cache_edges": 6,
            "levels": {0: 6, 1: 2, 2: 2},
        },
        "advance": {
            "steps": 14,
            "ops": {"map": 2, "combine": 10, "reduce": 2},
            "cache_edges": 2,
            "levels": {0: 6, 1: 2, 2: 2},
        },
    },
    "rotating": {
        "initial": {
            "steps": 32,
            "ops": {"map": 6, "combine": 24, "reduce": 2},
            "cache_edges": 6,
            "levels": {1: 6, 2: 4, 3: 2},
        },
        "advance": {
            "steps": 20,
            "ops": {"map": 2, "combine": 16, "reduce": 2},
            "cache_edges": 2,
            "levels": {1: 4, 2: 4, 3: 4},
        },
    },
    "coalescing": {
        "initial": {
            "steps": 10,
            "ops": {"map": 6, "combine": 2, "reduce": 2},
            "cache_edges": 6,
            "levels": {},
        },
        "advance": {
            "steps": 8,
            "ops": {"map": 2, "combine": 4, "reduce": 2},
            "cache_edges": 2,
            "levels": {},
        },
    },
}


def count_job():
    return MapReduceJob(
        name="counts",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def split_of(i, spread=12, n=20):
    return Split.from_records(
        [f"w{(i * 7 + j) % spread}" for j in range(n)], label=f"s{i}"
    )


def make_slider(variant, mode):
    return Slider(
        count_job(), mode, config=SliderConfig(mode=mode, tree=variant)
    )


def clear_memos(slider: Slider) -> None:
    """Empty every memo cache, leaving window/tree structure intact."""
    for tree in slider.trees:
        tree.memo.entries.clear()
    slider.map_memo.clear()
    for per_reducer in slider.reduce_memo:
        per_reducer.clear()


# ---------------------------------------------------------------------------
# golden shapes


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_plan_shape_matches_golden(variant, mode):
    slider = make_slider(variant, mode)
    initial = slider.initial_run([split_of(i) for i in range(6)])
    assert initial.plan is not None
    assert initial.plan.shape() == GOLDEN_SHAPES[variant]["initial"]
    removed = 0 if mode is WindowMode.APPEND else 2
    advance = slider.advance([split_of(10), split_of(11)], removed)
    assert advance.plan.shape() == GOLDEN_SHAPES[variant]["advance"]


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_plan_steps_have_contiguous_uids(variant, mode):
    slider = make_slider(variant, mode)
    result = slider.initial_run([split_of(i) for i in range(6)])
    assert [s.uid for s in result.plan.steps] == list(range(len(result.plan)))


# ---------------------------------------------------------------------------
# memo independence


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_plan_is_memo_cache_independent(variant, mode):
    """A cold-cache run plans exactly what a warm-cache run plans."""
    warm = make_slider(variant, mode)
    cold = make_slider(variant, mode)
    warm_initial = warm.initial_run([split_of(i) for i in range(6)])
    cold_initial = cold.initial_run([split_of(i) for i in range(6)])
    assert warm_initial.plan.signature() == cold_initial.plan.signature()

    clear_memos(cold)
    removed = 0 if mode is WindowMode.APPEND else 2
    warm_adv = warm.advance([split_of(10), split_of(11)], removed)
    cold_adv = cold.advance([split_of(10), split_of(11)], removed)
    assert warm_adv.plan.signature() == cold_adv.plan.signature()
    assert warm_adv.outputs == cold_adv.outputs
    # The cold run can only have recomputed more, never less.
    assert cold_adv.report.work >= warm_adv.report.work


@settings(max_examples=20, deadline=None)
@given(
    moves=st.lists(
        st.tuples(st.integers(1, 3), st.integers(0, 2)),
        min_size=1,
        max_size=4,
    )
)
def test_folding_plan_memo_independent_across_movements(moves):
    """Random variable-window movements: plans never depend on the cache."""
    warm = make_slider("folding", WindowMode.VARIABLE)
    cold = make_slider("folding", WindowMode.VARIABLE)
    warm.initial_run([split_of(i) for i in range(4)])
    cold.initial_run([split_of(i) for i in range(4)])
    window = 4
    next_id = 4
    for added, removed in moves:
        removed = min(removed, window - 1)
        splits = [split_of(next_id + j) for j in range(added)]
        next_id += added
        window += added - removed
        clear_memos(cold)
        warm_result = warm.advance(splits, removed)
        cold_result = cold.advance(splits, removed)
        assert warm_result.plan.signature() == cold_result.plan.signature()
        assert warm_result.outputs == cold_result.outputs

"""The task-graph IR recorded per run, and its equivalence to the meter.

The core invariant of the refactor: the WorkMeter totals are a *derived
view* of the task graph — per-phase work summed over graph nodes equals
what the legacy metering charged (up to float summation order), for every
tree variant and every kind of window movement.
"""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import Split
from repro.metrics import Phase
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode

VARIANTS = [
    ("folding", WindowMode.VARIABLE),
    ("randomized", WindowMode.VARIABLE),
    ("strawman", WindowMode.VARIABLE),
    ("rotating", WindowMode.FIXED),
    ("coalescing", WindowMode.APPEND),
]


def count_job(num_reducers=2):
    return MapReduceJob(
        name="counts",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=num_reducers,
    )


def split_of(i, spread=12, n=20):
    return Split.from_records(
        [f"w{(i * 7 + j) % spread}" for j in range(n)], label=f"s{i}"
    )


def make_slider(variant, mode, cluster=None, **config_kwargs):
    config = SliderConfig(mode=mode, tree=variant, **config_kwargs)
    return Slider(count_job(), mode, config=config, cluster=cluster)


def assert_graph_matches_meter(result):
    """Graph-derived work equals the meter's per-run breakdown, per phase."""
    graph = result.graph
    assert graph is not None
    graph.topological_order()  # validates acyclicity as a side effect
    by_phase = {
        phase.value: amount for phase, amount in graph.work_by_phase().items()
    }
    breakdown = {
        name: amount
        for name, amount in result.report.breakdown.items()
        if name != Phase.BACKGROUND.value
    }
    for name, amount in breakdown.items():
        assert by_phase.get(name, 0.0) == pytest.approx(amount), name
    for name in by_phase:
        assert name in breakdown or by_phase[name] == pytest.approx(0.0)
    assert graph.total_work() == pytest.approx(result.report.work)


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_graph_work_equals_meter_work(variant, mode):
    slider = make_slider(variant, mode)
    result = slider.initial_run([split_of(i) for i in range(6)])
    assert_graph_matches_meter(result)
    removed = 0 if mode is WindowMode.APPEND else 2
    result = slider.advance([split_of(10), split_of(11)], removed)
    assert_graph_matches_meter(result)
    # A no-op advance also balances (pure memo-read runs).
    result = slider.advance([], 0)
    assert_graph_matches_meter(result)


@pytest.mark.parametrize("variant,mode", VARIANTS)
def test_graph_taxonomy(variant, mode):
    slider = make_slider(variant, mode)
    # Disjoint keyspaces per split: sliding touches only the keys of the
    # splits that actually moved, leaving the rest to memoized reuse.
    initial = slider.initial_run(
        [Split.from_records([f"k{i}"] * 8, label=f"s{i}") for i in range(6)]
    )
    counts = initial.graph.counts_by_kind()
    assert counts["map"] == 6
    assert counts.get("reduce", 0) == len(initial.changed_keys)
    removed = 0 if mode is WindowMode.APPEND else 1
    narrow = Split.from_records(["k0"] * 8, label="narrow")
    result = slider.advance([narrow], removed)
    counts = result.graph.counts_by_kind()
    assert counts["map"] == 1
    # Unchanged keys must be served from memoized state.
    assert counts.get("memo_read", 0) > 0


def test_reduce_nodes_depend_on_combines():
    slider = make_slider("folding", WindowMode.VARIABLE)
    slider.initial_run([split_of(i) for i in range(4)])
    graph = slider.advance([split_of(9)], 1).graph
    reduce_nodes = [n for n in graph.nodes if n.kind == "reduce"]
    assert reduce_nodes
    for node in reduce_nodes:
        assert node.reducer is not None
        assert node.deps, "reduce must consume this run's tree output"


def test_map_outputs_feed_combines():
    slider = make_slider("folding", WindowMode.VARIABLE)
    slider.initial_run([split_of(i) for i in range(4)])
    graph = slider.advance([split_of(9)], 0).graph
    kinds = {n.uid: n.kind for n in graph.nodes}
    feeding = {
        kinds[d]
        for n in graph.nodes
        if n.kind in ("combine", "pass_through")
        for d in n.deps
    }
    # The fresh split's shuffle output is consumed by the tree.
    assert "shuffle" in feeding or "map" in feeding


def test_background_work_not_recorded():
    """Background pre-processing runs between windows and must not leak
    into any run's graph."""
    slider = make_slider(
        "rotating", WindowMode.FIXED, split_mode=True, bucket_size=1
    )
    slider.initial_run([split_of(i) for i in range(4)])
    first = slider.advance([split_of(10)], 1)
    slider.background_preprocess()
    second = slider.advance([split_of(11)], 1)
    for result in (first, second):
        assert all(
            node.phase is not Phase.BACKGROUND for node in result.graph.nodes
        )
        assert_graph_matches_meter(result)


def test_record_graph_shim_is_gone():
    """The deprecation window elapsed: the plan/graph IR is the run, and
    SliderConfig no longer carries the dead knob at all."""
    with pytest.raises(TypeError, match="record_graph"):
        SliderConfig(mode=WindowMode.VARIABLE, record_graph=False)
    slider = Slider(count_job(), WindowMode.VARIABLE)
    result = slider.initial_run([split_of(0)])
    assert result.graph is not None
    assert result.plan is not None
    result = slider.advance([split_of(1)], 0)
    assert result.graph is not None
    assert result.plan is not None


def test_dag_time_model_validates():
    SliderConfig(time_model="dag")
    with pytest.raises(ValueError, match="time model"):
        SliderConfig(time_model="warp")


class TestDagTimeModel:
    """The acceptance property: under time_model="dag", graph-derived work
    equals the meter's work for every run, outputs stay correct, and the
    simulated time respects the graph's critical path."""

    def quiet_cluster(self, n=8):
        return Cluster(
            ClusterConfig(num_machines=n, straggler_fraction=0.0)
        )

    @pytest.mark.parametrize("variant,mode", VARIANTS)
    def test_dag_replay_property(self, variant, mode):
        slider = make_slider(
            variant, mode, cluster=self.quiet_cluster(), time_model="dag"
        )
        results = [slider.initial_run([split_of(i) for i in range(6)])]
        removed = 0 if mode is WindowMode.APPEND else 1
        results.append(slider.advance([split_of(10)], removed))
        results.append(slider.advance([split_of(11)], removed))
        for result in results:
            assert_graph_matches_meter(result)
            # Makespan can never beat the critical path (fetch penalties
            # and queueing only add to it).
            assert result.report.time >= (
                result.graph.critical_path_length() - 1e-9
            )
        slider.verify_outputs()

    def test_waves_default_unchanged_by_dag_availability(self):
        """The legacy two-wave replay is byte-identical across two
        identically configured engines (graphs are always recorded)."""
        recorded = make_slider(
            "folding", WindowMode.VARIABLE, cluster=self.quiet_cluster()
        )
        bare = make_slider(
            "folding", WindowMode.VARIABLE, cluster=self.quiet_cluster()
        )
        for slider in (recorded, bare):
            slider.initial_run([split_of(i) for i in range(6)])
        r1 = recorded.advance([split_of(10)], 1)
        r2 = bare.advance([split_of(10)], 1)
        assert r1.report.time == r2.report.time
        assert r1.report.work == r2.report.work

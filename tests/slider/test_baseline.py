"""Unit tests for the recompute-from-scratch baseline runner."""

import pytest

from repro.cluster.machine import Cluster, ClusterConfig
from repro.common.errors import WindowError
from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import make_splits
from repro.slider.baseline import VanillaRunner
from repro.slider.window import WindowMode


def word_job():
    return MapReduceJob(
        name="wc",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=2,
    )


def test_lifecycle_validation():
    runner = VanillaRunner(word_job())
    with pytest.raises(WindowError):
        runner.advance([], 0)
    runner.initial_run(make_splits(["a"], 1))
    with pytest.raises(WindowError):
        runner.initial_run(make_splits(["a"], 1))


def test_mode_validation_enforced():
    runner = VanillaRunner(word_job(), mode=WindowMode.APPEND)
    runner.initial_run(make_splits(["a", "b"], 1))
    with pytest.raises(WindowError):
        runner.advance(make_splits(["c"], 1), removed=1)


def test_every_run_costs_the_full_window():
    runner = VanillaRunner(word_job())
    splits = make_splits(["a b"] * 20, 1)
    initial = runner.initial_run(splits[:10])
    later = runner.advance(splits[10:12], removed=2)
    # Same window size -> roughly the same work; no reuse whatsoever.
    assert later.report.work == pytest.approx(initial.report.work, rel=0.2)
    assert later.new_map_tasks == 10


def test_background_preprocess_is_noop():
    runner = VanillaRunner(word_job())
    assert runner.background_preprocess() == 0.0


def test_cluster_time_differs_from_work():
    cluster = Cluster(ClusterConfig(num_machines=4, straggler_fraction=0.0))
    runner = VanillaRunner(word_job(), cluster=cluster)
    result = runner.initial_run(make_splits(["a b c"] * 12, 1))
    assert 0 < result.report.time < result.report.work

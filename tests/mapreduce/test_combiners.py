"""Unit and property tests for the combiner library.

Associativity (all combiners) and commutativity (all except ListConcat)
are the algebraic contracts the contraction trees rely on; hypothesis
checks them over random value multisets.
"""

import pytest
from hypothesis import given, strategies as st

from repro.mapreduce.combiners import (
    CountCombiner,
    KSmallestCombiner,
    ListConcatCombiner,
    MaxCombiner,
    MeanCombiner,
    MinCombiner,
    SetUnionCombiner,
    SumCombiner,
    TopKCombiner,
    VectorSumCombiner,
)


# -- unit behaviour ----------------------------------------------------------


def test_sum_and_count():
    assert SumCombiner().merge("k", [1, 2, 3]) == 6
    assert CountCombiner().merge("k", [1, 1, 1]) == 3


def test_min_max():
    assert MinCombiner().merge("k", [3, 1, 2]) == 1
    assert MaxCombiner().merge("k", [3, 1, 2]) == 3


def test_mean_pairs():
    combiner = MeanCombiner()
    assert combiner.merge("k", [(1, 10.0), (2, 6.0)]) == (3, 16.0)


def test_topk_keeps_largest():
    combiner = TopKCombiner(k=2)
    merged = combiner.merge("k", [((3.0, "a"),), ((5.0, "b"), (1.0, "c"))])
    assert merged == ((5.0, "b"), (3.0, "a"))


def test_topk_validation():
    with pytest.raises(ValueError):
        TopKCombiner(k=0)


def test_ksmallest_keeps_smallest():
    combiner = KSmallestCombiner(k=2)
    merged = combiner.merge("k", [((3.0, "a"),), ((5.0, "b"), (1.0, "c"))])
    assert merged == ((1.0, "c"), (3.0, "a"))


def test_ksmallest_validation():
    with pytest.raises(ValueError):
        KSmallestCombiner(k=-1)


def test_set_union():
    combiner = SetUnionCombiner()
    merged = combiner.merge("k", [frozenset({1}), frozenset({2, 3})])
    assert merged == frozenset({1, 2, 3})
    assert combiner.value_size(merged) == 3.0


def test_list_concat_not_commutative():
    combiner = ListConcatCombiner()
    assert not combiner.commutative
    assert combiner.merge("k", [(1, 2), (3,)]) == (1, 2, 3)


def test_vector_sum():
    combiner = VectorSumCombiner()
    merged = combiner.merge("k", [(1, (1.0, 2.0)), (2, (3.0, 4.0))])
    assert merged == (3, (4.0, 6.0))


def test_vector_sum_empty_values():
    assert VectorSumCombiner().merge("k", [(0, ())]) == (0, ())


def test_merge_cost_scales_with_input_size():
    combiner = KSmallestCombiner(k=10)
    small = combiner.merge_cost("k", [((1.0, "a"),)] * 2)
    large = combiner.merge_cost("k", [((1.0, "a"), (2.0, "b"), (3.0, "c"))] * 4)
    assert large > small


# -- algebraic contracts (property-based) -----------------------------------

numeric_values = st.integers(-1000, 1000)
entry_lists = st.lists(
    st.tuples(st.floats(0, 100), st.text(max_size=3)), max_size=4
).map(tuple)
set_values = st.frozensets(st.integers(0, 20), max_size=5)
mean_values = st.tuples(st.integers(1, 10), st.integers(-100, 100))
vector_values = st.tuples(
    st.integers(1, 5),
    st.tuples(st.integers(-10, 10), st.integers(-10, 10)).map(
        lambda t: (float(t[0]), float(t[1]))
    ),
)

CASES = [
    (SumCombiner(), numeric_values),
    (MinCombiner(), numeric_values),
    (MaxCombiner(), numeric_values),
    (MeanCombiner(), mean_values),
    (TopKCombiner(3), entry_lists),
    (KSmallestCombiner(3), entry_lists),
    (SetUnionCombiner(), set_values),
    (VectorSumCombiner(), vector_values),
]


@pytest.mark.parametrize(
    "combiner,strategy", CASES, ids=lambda c: type(c).__name__
)
def test_associativity(combiner, strategy):
    @given(a=strategy, b=strategy, c=strategy)
    def check(a, b, c):
        left = combiner.merge("k", [combiner.merge("k", [a, b]), c])
        right = combiner.merge("k", [a, combiner.merge("k", [b, c])])
        assert left == right

    check()


@pytest.mark.parametrize(
    "combiner,strategy",
    [case for case in CASES if case[0].commutative],
    ids=lambda c: type(c).__name__,
)
def test_commutativity(combiner, strategy):
    @given(a=strategy, b=strategy)
    def check(a, b):
        assert combiner.merge("k", [a, b]) == combiner.merge("k", [b, a])

    check()

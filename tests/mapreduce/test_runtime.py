"""Unit tests for the vanilla batch runtime."""

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.runtime import BatchRuntime
from repro.mapreduce.types import make_splits


def word_job(**cost_kwargs):
    return MapReduceJob(
        name="wc",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=3,
        costs=CostModel(**cost_kwargs),
    )


def test_outputs_are_correct():
    runtime = BatchRuntime(word_job())
    splits = make_splits(["a b", "b c", "a a"], split_size=1)
    result = runtime.run(splits)
    assert result.outputs == {"a": 3, "b": 2, "c": 1}


def test_empty_input():
    result = BatchRuntime(word_job()).run([])
    assert result.outputs == {}
    # Reduce tasks still exist (empty partitions), map tasks do not.
    kinds = [t.kind for t in result.tasks]
    assert kinds.count("map") == 0
    assert kinds.count("reduce") == 3


def test_task_records_cover_all_tasks():
    splits = make_splits(["a"] * 5, split_size=1)
    result = BatchRuntime(word_job()).run(splits)
    kinds = [t.kind for t in result.tasks]
    assert kinds.count("map") == 5
    assert kinds.count("reduce") == 3
    assert all(t.cost >= 0 for t in result.tasks)


def test_work_scales_linearly_with_window():
    runtime = BatchRuntime(word_job())
    small = runtime.run(make_splits(["a b c"] * 10, 1)).work
    runtime2 = BatchRuntime(word_job())
    large = runtime2.run(make_splits(["a b c"] * 40, 1)).work
    assert large > 3.0 * small


def test_reduce_fn_is_applied():
    job = MapReduceJob(
        name="doubling",
        map_fn=lambda x: [(x % 2, 1)],
        combiner=SumCombiner(),
        reduce_fn=lambda key, value: value * 10,
        num_reducers=2,
    )
    result = BatchRuntime(job).run(make_splits([0, 1, 2, 3], 2))
    assert result.outputs == {0: 20, 1: 20}


def test_map_cost_model_respected():
    cheap = BatchRuntime(word_job(map_cost_per_record=1.0)).run(
        make_splits(["a"] * 10, 1)
    )
    pricey = BatchRuntime(word_job(map_cost_per_record=50.0)).run(
        make_splits(["a"] * 10, 1)
    )
    assert pricey.meter.snapshot()["map"] == 50 * cheap.meter.snapshot()["map"]

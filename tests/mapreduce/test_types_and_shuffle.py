"""Unit tests for splits, windows, partitioning, and map-task execution."""

import pytest

from repro.mapreduce.combiners import SumCombiner
from repro.mapreduce.job import CostModel, MapReduceJob
from repro.mapreduce.shuffle import (
    HashPartitioner,
    run_map_task,
    shuffle_map_outputs,
)
from repro.mapreduce.types import Split, SplitWindow, make_splits
from repro.metrics import Phase, WorkMeter


# -- splits ------------------------------------------------------------------


def test_split_uid_is_content_based():
    a = Split.from_records(["x", "y"], label="s")
    b = Split.from_records(["x", "y"], label="s")
    assert a.uid == b.uid


def test_split_uid_depends_on_label_and_content():
    base = Split.from_records(["x"], label="s")
    assert base.uid != Split.from_records(["x"], label="t").uid
    assert base.uid != Split.from_records(["y"], label="s").uid


def test_make_splits_chops_evenly():
    splits = make_splits(list(range(10)), split_size=3)
    assert [len(s) for s in splits] == [3, 3, 3, 1]
    assert splits[0].records == (0, 1, 2)


def test_make_splits_validation():
    with pytest.raises(ValueError):
        make_splits([1], split_size=0)


# -- windows -----------------------------------------------------------------


def test_window_append_and_drop():
    window = SplitWindow()
    splits = make_splits(list(range(6)), 2)
    window.append(splits)
    assert len(window) == 3
    dropped = window.drop_front(2)
    assert dropped == splits[:2]
    assert list(window) == splits[2:]
    assert window.total_records() == 2


def test_window_drop_validation():
    window = SplitWindow()
    window.append(make_splits([1, 2], 1))
    with pytest.raises(ValueError):
        window.drop_front(3)
    with pytest.raises(ValueError):
        window.drop_front(-1)


# -- partitioner ---------------------------------------------------------------


def test_partitioner_is_stable_and_in_range():
    partitioner = HashPartitioner(4)
    for key in ["a", "b", ("x", 1), 42]:
        p = partitioner.partition(key)
        assert 0 <= p < 4
        assert p == partitioner.partition(key)


def test_partitioner_spreads_keys():
    partitioner = HashPartitioner(4)
    buckets = {partitioner.partition(f"key{i}") for i in range(100)}
    assert buckets == {0, 1, 2, 3}


def test_partitioner_validation():
    with pytest.raises(ValueError):
        HashPartitioner(0)


# -- map task -------------------------------------------------------------------


def word_job():
    return MapReduceJob(
        name="wc",
        map_fn=lambda line: [(w, 1) for w in line.split()],
        combiner=SumCombiner(),
        num_reducers=2,
        costs=CostModel(map_cost_per_record=2.0),
    )


def test_run_map_task_partitions_by_key():
    job = word_job()
    partitioner = HashPartitioner(2)
    outputs = run_map_task(job, ["a b a"], partitioner)
    assert len(outputs) == 2
    merged = {}
    for part in outputs:
        merged.update(part.entries)
    assert merged == {"a": 2, "b": 1}


def test_run_map_task_charges_meter():
    job = word_job()
    meter = WorkMeter()
    run_map_task(job, ["a b", "c d"], HashPartitioner(2), meter)
    assert meter.by_phase[Phase.MAP] == 4.0  # 2 records x cost 2
    assert meter.by_phase[Phase.SHUFFLE] > 0


def test_shuffle_transposes_outputs():
    job = word_job()
    partitioner = HashPartitioner(2)
    m0 = run_map_task(job, ["a"], partitioner)
    m1 = run_map_task(job, ["b"], partitioner)
    per_reducer = shuffle_map_outputs([m0, m1], 2)
    assert len(per_reducer) == 2
    assert len(per_reducer[0]) == 2  # one leaf per map task, in order
    assert per_reducer[0][0] is m0[0]
    assert per_reducer[1][1] is m1[1]


def test_shuffle_validates_partition_count():
    with pytest.raises(ValueError):
        shuffle_map_outputs([[None]], 2)


# -- job validation ---------------------------------------------------------------


def test_job_requires_positive_reducers():
    with pytest.raises(ValueError):
        MapReduceJob(
            name="bad",
            map_fn=lambda r: [],
            combiner=SumCombiner(),
            num_reducers=0,
        )


def test_job_requires_associative_combiner():
    class Broken(SumCombiner):
        associative = False

    with pytest.raises(ValueError):
        MapReduceJob(name="bad", map_fn=lambda r: [], combiner=Broken())


def test_with_reducers_copies_job():
    job = word_job()
    wider = job.with_reducers(8)
    assert wider.num_reducers == 8
    assert wider.name == job.name
    assert job.num_reducers == 2

"""Unit tests for deterministic RNG streams."""

from repro.common.rng import RngStream, derive_rng


def test_same_seed_same_sequence():
    a = RngStream(1, "x")
    b = RngStream(1, "x")
    assert list(a.integers(0, 100, size=10)) == list(b.integers(0, 100, size=10))


def test_different_names_are_independent():
    a = RngStream(1, "x")
    b = RngStream(1, "y")
    assert list(a.integers(0, 1 << 30, size=8)) != list(
        b.integers(0, 1 << 30, size=8)
    )


def test_child_streams_are_stable():
    root = RngStream(5)
    assert root.child("sub").name == "root/sub"
    a = RngStream(5).child("sub").integers(0, 1000, size=5)
    b = RngStream(5).child("sub").integers(0, 1000, size=5)
    assert list(a) == list(b)


def test_consuming_one_stream_does_not_shift_another():
    """The classic simulator pitfall this module exists to prevent."""
    _a1 = RngStream(9, "a")  # stream "a" exists but is never consumed
    b1 = RngStream(9, "b")
    b1_seq = list(b1.integers(0, 1000, size=5))

    a2 = RngStream(9, "a")
    _ = a2.integers(0, 1000, size=100)  # heavy use of stream a
    b2 = RngStream(9, "b")
    assert list(b2.integers(0, 1000, size=5)) == b1_seq


def test_coin_respects_extremes():
    rng = RngStream(3, "coins")
    assert not rng.coin(0.0)
    assert rng.coin(1.0)


def test_derive_rng_path():
    stream = derive_rng(7, "datagen", "text")
    assert stream.name == "root/datagen/text"


def test_distributions_produce_expected_shapes():
    rng = RngStream(11, "dist")
    assert len(rng.uniform(size=4)) == 4
    assert len(rng.normal(size=3)) == 3
    assert len(rng.exponential(2.0, size=5)) == 5
    assert all(z >= 1 for z in rng.zipf(1.5, size=10))
    values = [1, 2, 3, 4]
    picked = rng.choice(values, size=2, replace=False)
    assert len(set(int(p) for p in picked)) == 2

"""Unit tests for stable hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.hashing import content_id, stable_hash, stable_hash_pair


def test_stable_across_calls():
    assert stable_hash("hello") == stable_hash("hello")
    assert stable_hash((1, "a", 2.5)) == stable_hash((1, "a", 2.5))


def test_known_types_supported():
    for value in [b"bytes", "str", 3, 2.5, True, None, (1, (2, 3)), [1, 2]]:
        assert isinstance(stable_hash(value), int)


def test_type_distinction():
    # Values that are == in Python but different types hash differently.
    assert stable_hash(1) != stable_hash("1")
    assert stable_hash(1) != stable_hash(1.0)
    assert stable_hash(True) != stable_hash(1)


def test_salt_derives_independent_families():
    assert stable_hash("x", salt="a") != stable_hash("x", salt="b")


def test_frozenset_order_independent():
    assert stable_hash(frozenset({"a", "b", "c"})) == stable_hash(
        frozenset({"c", "a", "b"})
    )
    assert stable_hash((1, frozenset({1, 2}))) == stable_hash(
        (1, frozenset({2, 1}))
    )


def test_nested_structures():
    value = ("key", (1, [2.5, None], frozenset({("a", 1)})))
    assert stable_hash(value) == stable_hash(value)


def test_unhashable_type_rejected():
    with pytest.raises(TypeError):
        stable_hash(object())
    with pytest.raises(TypeError):
        stable_hash({"dict": 1})


def test_pair_and_content_id():
    assert stable_hash_pair(1, 2) != stable_hash_pair(2, 1)
    assert content_id("a", 1) == content_id("a", 1)
    assert content_id("a", 1) != content_id("a", 2)


def test_64_bit_range():
    for value in ["x", 123, (1, 2, 3)]:
        h = stable_hash(value)
        assert 0 <= h < (1 << 64)


@given(st.lists(st.integers()))
def test_list_tuple_equivalent(xs):
    # Lists and tuples encode identically (both are sequences).
    assert stable_hash(xs) == stable_hash(tuple(xs))


@given(
    st.tuples(st.integers(), st.text(), st.floats(allow_nan=False)),
    st.tuples(st.integers(), st.text(), st.floats(allow_nan=False)),
)
def test_distinct_tuples_rarely_collide(a, b):
    if a != b:
        assert stable_hash(a) != stable_hash(b)


@given(st.sets(st.integers(), min_size=0, max_size=10))
def test_set_hash_matches_frozenset(s):
    assert stable_hash(s) == stable_hash(frozenset(s))

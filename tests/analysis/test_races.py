"""Plan-level race detection: the happens-before model, conflicts, and
fusion proof obligations — on hand-built violating plans and on the real
planners' output."""

from __future__ import annotations

import pytest

from repro.analysis.races import (
    analyze_compiled,
    analyze_plan,
    check_fused,
    find_races,
    happens_before,
    plan_footprints,
    step_footprint,
)
from repro.core.compile import compile_plan
from repro.core.plan import FusedStep, Plan, PlanStep
from repro.metrics import Phase


def error_rules(findings):
    return sorted(f.rule for f in findings if f.severity == "error")


# -- the happens-before model ------------------------------------------------


def test_map_steps_are_concurrent():
    plan = Plan()
    plan.step("map", label="map:0x1", phase=Phase.MAP, memo_uid=0x1)
    plan.step("map", label="map:0x2", phase=Phase.MAP, memo_uid=0x2)
    a, b = plan_footprints(plan)
    assert not happens_before(a, b) and not happens_before(b, a)


def test_map_barrier_orders_map_before_combine():
    plan = Plan()
    plan.step("map", label="map:0x1", phase=Phase.MAP, memo_uid=0x1)
    plan.step("combine", label="c:L0.0", phase=Phase.CONTRACTION, reducer=0)
    a, b = plan_footprints(plan)
    assert happens_before(a, b)


def test_same_lane_steps_are_ordered():
    plan = Plan()
    plan.step("combine", label="c1", phase=Phase.CONTRACTION, reducer=0)
    plan.step("combine", label="c2", phase=Phase.CONTRACTION, reducer=0)
    a, b = plan_footprints(plan)
    assert happens_before(a, b) and not happens_before(b, a)


def test_cross_reducer_steps_are_concurrent():
    plan = Plan()
    plan.step("combine", label="c1", phase=Phase.CONTRACTION, reducer=0)
    plan.step("combine", label="c2", phase=Phase.CONTRACTION, reducer=1)
    a, b = plan_footprints(plan)
    assert not happens_before(a, b) and not happens_before(b, a)


# -- conflicts ---------------------------------------------------------------


def test_duplicate_map_memo_uid_is_a_race():
    plan = Plan()
    plan.step("map", label="map:0x9", phase=Phase.MAP, memo_uid=0x9)
    plan.step("map", label="map:0x9", phase=Phase.MAP, memo_uid=0x9)
    findings = analyze_plan(plan)
    assert error_rules(findings) == ["races.plan-conflict"]


def test_cross_lane_memo_sharing_is_benign_idempotent():
    plan = Plan()
    plan.step(
        "combine", label="c:L0.0", phase=Phase.CONTRACTION,
        reducer=0, memo_uid=0xAB,
    )
    plan.step(
        "combine", label="c:L0.1", phase=Phase.CONTRACTION,
        reducer=1, memo_uid=0xAB,
    )
    findings = analyze_plan(plan)
    assert error_rules(findings) == []
    assert [f.rule for f in findings] == ["races.idempotent-write"]


def test_disjoint_reducers_have_no_findings():
    plan = Plan()
    plan.step("map", label="map:0x1", phase=Phase.MAP, memo_uid=0x1)
    plan.step(
        "combine", label="c:L0.0", phase=Phase.CONTRACTION,
        reducer=0, memo_uid=0x10,
    )
    plan.step(
        "combine", label="c:L0.1", phase=Phase.CONTRACTION,
        reducer=1, memo_uid=0x20,
    )
    plan.step("reduce", label="reduce:0", phase=Phase.REDUCE, reducer=0)
    plan.step("reduce", label="reduce:1", phase=Phase.REDUCE, reducer=1)
    assert analyze_plan(plan) == []


def test_engine_lane_serializes_unattributed_steps():
    plan = Plan()
    plan.step("combine", label="c1", phase=Phase.CONTRACTION, memo_uid=0x5)
    plan.step("combine", label="c2", phase=Phase.CONTRACTION, memo_uid=0x5)
    assert analyze_plan(plan) == []  # same engine lane: ordered


def test_footprint_shapes():
    step = PlanStep(uid=0, op="reduce", label="reduce:3", reducer=3)
    fp = step_footprint(step)
    assert "reduce_memo:reducer:3" in fp.writes
    assert "tree:reducer:3" in fp.reads


def test_find_races_returns_pairs():
    plan = Plan()
    plan.step("map", label="m", phase=Phase.MAP, memo_uid=0x7)
    plan.step("map", label="m", phase=Phase.MAP, memo_uid=0x7)
    races = find_races(plan_footprints(plan))
    assert len(races) == 1
    assert races[0].resources == frozenset({"map_memo:0x7"})
    assert not races[0].benign


# -- fusion obligations ------------------------------------------------------


def _combine_step(uid, memo_uid, reducer=0):
    return PlanStep(
        uid=uid, op="combine", label=f"c:L0.{uid}",
        phase=Phase.CONTRACTION, memo_uid=memo_uid, reducer=reducer,
    )


def test_fused_memo_overlap_fires():
    group = FusedStep(
        kind="combine-run", start=0, count=2, reducer=0,
        steps=(_combine_step(0, 0xAA), _combine_step(1, 0xAA)),
    )
    findings = check_fused([group])
    assert error_rules(findings) == ["races.fused-memo-overlap"]


def test_fused_mixed_lane_fires():
    group = FusedStep(
        kind="combine-run", start=0, count=2, reducer=0,
        steps=(
            _combine_step(0, 0x1, reducer=0),
            _combine_step(1, 0x2, reducer=1),
        ),
    )
    findings = check_fused([group])
    assert error_rules(findings) == ["races.fused-mixed-lane"]


def test_fused_hint_on_noncombine_fires():
    visit = PlanStep(uid=0, op="visit", label="v", phase=Phase.MEMO_READ)
    group = FusedStep(kind="visit-run", start=0, count=2, steps=(visit,))
    findings = check_fused([group], kernel_hints=(True,))
    assert error_rules(findings) == ["races.fused-hint-noncombine"]


def test_clean_fused_group_passes():
    group = FusedStep(
        kind="combine-run", start=0, count=2, reducer=0,
        steps=(_combine_step(0, 0x1), _combine_step(1, 0x2)),
    )
    assert check_fused([group]) == []


# -- real planner output -----------------------------------------------------


@pytest.mark.parametrize(
    "variant,mode",
    [
        ("folding", "variable"),
        ("randomized", "variable"),
        ("strawman", "variable"),
        ("rotating", "fixed"),
        ("coalescing", "append"),
    ],
)
def test_real_plans_are_race_free(variant, mode):
    from repro.mapreduce.combiners import SumCombiner
    from repro.mapreduce.job import MapReduceJob
    from repro.mapreduce.types import Split
    from repro.slider.system import Slider, SliderConfig
    from repro.slider.window import WindowMode

    job = MapReduceJob(
        name="race-scan",
        map_fn=lambda record: [(record, 1)],
        combiner=SumCombiner(),
        num_reducers=2,
    )
    window_mode = {
        "variable": WindowMode.VARIABLE,
        "fixed": WindowMode.FIXED,
        "append": WindowMode.APPEND,
    }[mode]
    engine = Slider(
        job,
        mode=window_mode,
        config=SliderConfig(tree=variant, mode=window_mode),
    )
    splits = [
        Split.from_records([f"w{(i * 3 + j) % 7}" for j in range(8)], label=f"s{i}")
        for i in range(6)
    ]
    results = [engine.initial_run(splits[:4])]
    removed = 0 if window_mode is WindowMode.APPEND else 1
    results.append(engine.advance([splits[4]], removed))
    results.append(engine.advance([splits[5]], removed))
    for result in results:
        findings = analyze_plan(result.plan, where=f"{variant}:{result.run_index}")
        assert error_rules(findings) == [], [f.render() for f in findings]
        if result.compiled is not None:
            fused_findings = analyze_compiled(result.compiled)
            assert error_rules(fused_findings) == []

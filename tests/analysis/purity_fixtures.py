"""Intentional contract violations, one per purity/determinism rule.

These functions exist so the test suite can prove each rule *fires*; none
of them is ever executed.  Keep one violation per function so the tests
can assert rule -> fixture exactly.
"""

from __future__ import annotations

import datetime
import os
import random
import secrets
import subprocess
import time
import uuid

import numpy as np

from repro.analysis import trusted
from repro.common.hashing import stable_hash
from repro.common.rng import RngStream

# -- nondeterminism ---------------------------------------------------------


def unseeded_random(record):
    """purity.nondeterminism.random — module-level random."""
    yield (record, random.random())


def unseeded_numpy_random(record):
    """purity.nondeterminism.random — numpy's global generator."""
    yield (record, np.random.rand())


def reads_clock(record):
    """purity.nondeterminism.time."""
    yield (record, time.time())


def reads_wallclock_datetime(record):
    """purity.nondeterminism.time — datetime.now()."""
    yield (record, datetime.datetime.now())


def draws_entropy(record):
    """purity.nondeterminism.entropy — os.urandom."""
    return os.urandom(8)


def draws_secrets(record):
    """purity.nondeterminism.entropy — secrets module."""
    return secrets.token_bytes(8)


def fresh_uuid(record):
    """purity.nondeterminism.entropy — uuid4."""
    yield (record, uuid.uuid4())


def uses_builtin_hash(record):
    """purity.nondeterminism.hash — randomized per process for str."""
    yield (hash(record), 1)


def uses_id(record):
    """purity.nondeterminism.id — address-dependent."""
    yield (id(record), 1)


def iterates_set(records):
    """purity.nondeterminism.iteration-order — set comprehension order."""
    return list({r for r in records})


def pops_dict_item(record, table):
    """purity.nondeterminism.iteration-order — popitem takes 'last' item."""
    return table.popitem()


# -- impurity ---------------------------------------------------------------

TOTALS: dict = {}


def writes_global(record):
    """purity.impurity.global-write."""
    global TOTALS
    TOTALS = {}
    yield (record, 1)


def mutates_argument(records):
    """purity.impurity.arg-mutation — append on a parameter."""
    records.append(1)
    return records


def assigns_into_argument(table, record):
    """purity.impurity.arg-mutation — subscript store on a parameter."""
    table[record] = 1
    return table


def does_console_io(record):
    """purity.impurity.io — print."""
    print(record)
    yield (record, 1)


def opens_file(record):
    """purity.impurity.io — open()."""
    with open("/tmp/x") as handle:
        return handle.read()


def shells_out(record):
    """purity.impurity.io — subprocess."""
    return subprocess.run(["true"])


def closure_nonlocal_write(records):
    """purity.impurity.global-write — nonlocal rebinding in a helper."""
    counter = 0

    def bump(record):
        nonlocal counter
        counter += 1
        return counter

    return [bump(r) for r in records]


# -- indirect: the violation lives in a helper the checker must follow ----


def _helper_with_violation(record):
    return random.random()


def violation_in_helper(record):
    """The checker follows plain-Python helper calls (depth-limited)."""
    yield (record, _helper_with_violation(record))


# -- clean functions: must produce no findings ------------------------------


def clean_map(record):
    """Pure, deterministic — the checker must stay silent."""
    key, value = record
    yield (key, value * 2)


def clean_seeded_rng(records):
    """Seeded repro.common.rng streams are allowlisted."""
    stream = RngStream(seed=7, name="fixture")
    return [stream.uniform(0, 1) for _ in records]


def clean_stable_hash(record):
    """repro.common.hashing.stable_hash is the sanctioned hash."""
    yield (stable_hash(record), 1)


def clean_sorted_set(records):
    """Sorting a set before consuming it is deterministic."""
    return sorted({r for r in records})


def clean_local_mutation(records):
    """Mutating a local copy is pure."""
    out = list(records)
    out.append(0)
    return out


def clean_seeded_numpy(record):
    """Explicitly seeded numpy generators are allowed."""
    generator = np.random.default_rng(1234)
    return generator.normal()


@trusted("audited 2026-08: wraps a C extension the AST walker cannot see")
def trusted_escape_hatch(record):
    """@trusted suppresses analysis (but leaves an INFO breadcrumb)."""
    yield (hash(record), random.random())

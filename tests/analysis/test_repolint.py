"""The repo-internal lint rules fire on violating sources and respect the
documented escape hatches."""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_file, lint_package


def lint_source(tmp_path: Path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, tmp_path)


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


def test_charge_outside_span_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def work(meter):
            meter.charge("map", 1.0)
        """,
    )
    assert rules_of(findings) == ["lint.span-hygiene"]
    assert findings[0].line == 3


def test_charge_inside_span_is_clean(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def work(meter, telemetry):
            with telemetry.span("map"):
                meter.charge("map", 1.0)
        """,
    )
    assert findings == []


def test_def_line_marker_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def helper(meter):  # analysis: charge-in-caller-span
            meter.charge("map", 1.0)
        """,
    )
    assert findings == []


def test_marker_on_outer_def_covers_nested_function(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def helper(meter):  # analysis: charge-in-caller-span
            def inner():
                meter.charge("map", 1.0)
            return inner
        """,
    )
    assert findings == []


def test_charge_method_implementation_is_exempt(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Meter:
            def charge(self, phase, amount):
                self.backbone.charge(phase, amount)
        """,
    )
    assert findings == []


def test_span_block_does_not_leak_past_its_body(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def work(meter, telemetry):
            with telemetry.span("map"):
                pass
            meter.charge("map", 1.0)
        """,
    )
    assert rules_of(findings) == ["lint.span-hygiene"]


def test_bare_telemetry_fires_outside_entry_points(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.telemetry import Telemetry

        def build():
            return Telemetry()
        """,
        name="cluster/thing.py",
    )
    assert "lint.bare-telemetry" in rules_of(findings)


def test_labeled_telemetry_is_clean(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.telemetry import Telemetry

        def build():
            return Telemetry(label="bench")
        """,
        name="cluster/thing.py",
    )
    assert findings == []


def test_entry_point_may_build_bare_telemetry(tmp_path):
    source = """
        from repro.telemetry import Telemetry

        def fallback():
            return Telemetry()
        """
    assert lint_source(tmp_path, source, name="metrics.py") == []
    assert lint_source(tmp_path, source, name="telemetry/core.py") == []


def test_core_importing_slider_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.slider.system import Slider
        """,
        name="core/plan.py",
    )
    assert rules_of(findings) == ["lint.layering"]
    assert "repro.slider" in findings[0].message


def test_core_importing_cluster_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import repro.cluster.executor
        """,
        name="core/execute.py",
    )
    assert rules_of(findings) == ["lint.layering"]


def test_core_relative_import_upward_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from ..slider import system
        """,
        name="core/tree.py",
    )
    assert rules_of(findings) == ["lint.layering"]


def test_core_importing_common_is_clean(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.common.hashing import stable_hash
        from .memo import MemoTable
        """,
        name="core/plan.py",
    )
    assert findings == []


def test_substrate_importing_recovery_fires(tmp_path):
    # repro.recovery is the top of the stack: no lower layer may pull it in.
    for module in ("core/memo.py", "cluster/cache.py", "mapreduce/shuffle.py"):
        findings = lint_source(
            tmp_path,
            """
            from repro.recovery.checkpoint import write_checkpoint
            """,
            name=module,
        )
        assert rules_of(findings) == ["lint.layering"], module
        assert "repro.recovery" in findings[0].message


def test_slider_importing_recovery_is_clean(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.recovery.checkpoint import write_checkpoint
        """,
        name="slider/system.py",
    )
    assert findings == []


def test_slider_may_import_core_and_cluster(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.core.plan import Plan
        from repro.cluster.executor import execute_dag
        """,
        name="slider/execution.py",
    )
    assert findings == []


def test_planner_importing_compiler_fires(tmp_path):
    # Planners emit plans; they must never see the compile layer, or plans
    # stop being a planner-agnostic exchange format.
    for module in ("core/base.py", "core/folding.py", "core/rotating.py"):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.compile import compile_plan
            """,
            name=module,
        )
        assert rules_of(findings) == ["lint.layering"], module
        assert "repro.core.compile" in findings[0].message


def test_compiler_importing_executor_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.core.execute import PlanExecutor
        """,
        name="core/compile/compiler.py",
    )
    assert rules_of(findings) == ["lint.layering"]
    assert "repro.core.execute" in findings[0].message


def test_compiler_importing_planners_or_slider_fires(tmp_path):
    for source in (
        "from repro.core.base import ContractionTree",
        "from repro.slider.system import Slider",
    ):
        findings = lint_source(
            tmp_path, source, name="core/compile/kernels.py"
        )
        assert rules_of(findings) == ["lint.layering"], source


def test_compiler_may_import_plan_ir_and_partitions(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.core.plan import FusedStep, Plan
        from repro.core.partition import Partition
        """,
        name="core/compile/compiler.py",
    )
    assert findings == []


def test_executor_may_import_compiler(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.core.compile import CompiledPlan, kernel_for
        """,
        name="core/execute.py",
    )
    assert findings == []


def test_oversized_module_fires(tmp_path):
    source = "\n".join(f"x{i} = {i}" for i in range(501))
    findings = lint_source(tmp_path, source, name="core/big.py")
    assert rules_of(findings) == ["lint.module-size"]
    assert "501 lines" in findings[0].message


def test_module_at_cap_is_clean(tmp_path):
    source = "\n".join(f"x{i} = {i}" for i in range(500))
    findings = lint_source(tmp_path, source, name="core/fits.py")
    assert findings == []


def test_syntax_error_reported_not_raised(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert rules_of(findings) == ["lint.syntax"]


def test_repo_package_is_lint_clean():
    package_root = Path(repro.__file__).resolve().parent
    findings = lint_package(package_root)
    assert findings == [], [f.render() for f in findings]

"""Effect inference: read/write sets, propagation, and findings."""

from __future__ import annotations

from repro.analysis.effects import (
    EffectSummary,
    effect_findings,
    infer_effects,
    summarize_functions,
)
from repro.analysis import trusted

_COUNTER = {"n": 0}
_LIMIT = 10  # immutable global: reads are effect-free


def _writes_global(record):
    _COUNTER["n"] += 1
    return record


def _reads_mutable_global(record):
    return record if _COUNTER["n"] else None


def _reads_immutable_global(record):
    return record % _LIMIT


def _mutates_argument(values):
    values.append(0)
    return values


def _calls_helper(record):
    return _writes_global(record)


def _pure(record):
    total = sum(range(record))
    return total * 2


def _global_stmt():
    global _LIMIT
    _LIMIT = 11


def _touches_memo(memo, key):
    found = memo.lookup(key)
    if found is None:
        memo.store(key, 1)
    return found


def _charges_telemetry(meter, amount):
    meter.charge("map", amount)
    return amount


def _does_io(record):
    print(record)
    return record


@trusted(reason="audited for the effects test")
def _trusted_writer(record):
    _COUNTER["n"] += 1
    return record


def rules_of(findings):
    return sorted(f.rule for f in findings if f.severity == "error")


def test_pure_function_is_effect_free():
    summary = infer_effects(_pure)
    assert summary.effect_free
    assert summary.reads == frozenset()
    assert summary.writes == frozenset()


def test_global_write_detected():
    summary = infer_effects(_writes_global)
    assert any(r.startswith("global:") and "_COUNTER" in r for r in summary.writes)
    assert not summary.effect_free


def test_global_statement_detected():
    summary = infer_effects(_global_stmt)
    assert any("_LIMIT" in r for r in summary.writes)


def test_mutable_global_read_detected():
    summary = infer_effects(_reads_mutable_global)
    assert any("_COUNTER" in r for r in summary.reads)
    assert summary.effect_free  # reads alone carry no write


def test_immutable_global_read_is_effect_free():
    summary = infer_effects(_reads_immutable_global)
    assert summary.reads == frozenset()


def test_argument_mutation_detected():
    summary = infer_effects(_mutates_argument)
    assert "arg:values" in summary.writes


def test_helper_effects_propagate():
    summary = infer_effects(_calls_helper)
    assert any("_COUNTER" in r for r in summary.writes)


def test_memo_access_detected():
    summary = infer_effects(_touches_memo)
    assert "memo" in summary.reads
    assert "memo" in summary.writes


def test_telemetry_write_detected():
    summary = infer_effects(_charges_telemetry)
    assert "telemetry" in summary.writes


def test_trusted_function_summarizes_effect_free():
    summary = infer_effects(_trusted_writer)
    assert summary.trusted == "audited for the effects test"
    assert summary.effect_free


def test_conflicts_between_summaries():
    writer = infer_effects(_writes_global)
    reader = infer_effects(_reads_mutable_global)
    pure = infer_effects(_pure)
    assert writer.conflicts_with(reader)
    assert not pure.conflicts_with(reader)
    assert writer.conflicts_with(writer)  # write/write on the same global


def test_findings_flag_shared_writes():
    findings = effect_findings([("map", _writes_global)])
    assert rules_of(findings) == ["effects.shared-write"]


def test_findings_flag_io():
    findings = effect_findings([("map", _does_io)])
    assert "effects.shared-write" in rules_of(findings)


def test_findings_flag_memo_access():
    findings = effect_findings([("map", _touches_memo)])
    assert "effects.memo-access" in rules_of(findings)


def test_findings_allow_exempted_resources():
    findings = effect_findings(
        [("kernel", _touches_memo)], allowed=frozenset({"memo"})
    )
    assert rules_of(findings) == []


def test_findings_clean_on_pure_function():
    findings = effect_findings([("map", _pure)])
    assert findings == []


def test_trusted_yields_info_note():
    findings = effect_findings([("map", _trusted_writer)])
    assert [f.rule for f in findings] == ["effects.trusted"]
    assert findings[0].severity == "info"


def test_summarize_functions_batch():
    summaries = summarize_functions(
        [("map", _pure), ("reduce", _writes_global)]
    )
    assert summaries["map"].effect_free
    assert not summaries["reduce"].effect_free
    assert isinstance(summaries["map"], EffectSummary)


def test_shipped_corpus_is_effect_clean():
    from repro.analysis.targets import registry_targets

    for target in registry_targets():
        findings = effect_findings(
            target.functions, allowed=frozenset({"memo", "telemetry"})
        )
        errors = [f for f in findings if f.severity == "error"]
        assert errors == [], f"{target.name}: {[f.render() for f in errors]}"

"""``python -m repro.analysis`` exit codes and module scanning."""

from __future__ import annotations

import sys
import textwrap

import pytest

from repro.analysis.cli import main
from repro.analysis.targets import module_targets


@pytest.fixture
def user_module(tmp_path, monkeypatch):
    """Create an importable throwaway module and return a writer for it."""
    monkeypatch.syspath_prepend(str(tmp_path))
    created = []

    def write(name: str, source: str):
        (tmp_path / f"{name}.py").write_text(textwrap.dedent(source))
        created.append(name)
        return name

    yield write
    for name in created:
        sys.modules.pop(name, None)


CLEAN_MODULE = """
    from repro.mapreduce import JobSpec, SumCombiner

    def _map(record):
        yield (record % 4, 1)

    def wordcount_job():
        return JobSpec(name="wc", map_fn=_map, combiner=SumCombiner())
"""

DIRTY_MODULE = """
    import random

    from repro.mapreduce import JobSpec, SumCombiner

    def _map(record):
        yield (record, random.random())

    def sampling_job():
        return JobSpec(name="sampler", map_fn=_map, combiner=SumCombiner())
"""

MISLABELED_MODULE = """
    from repro.mapreduce import JobSpec, SumCombiner

    class BadMean(SumCombiner):
        def merge(self, key, values):
            return sum(values) / len(values)

    def _map(record):
        yield (0, float(record))

    def mean_job():
        return JobSpec(name="bad-mean", map_fn=_map, combiner=BadMean())
"""


def test_clean_module_exits_zero(user_module, capsys):
    name = user_module("clean_fixture_mod", CLEAN_MODULE)
    assert main([name]) == 0
    assert "OK" in capsys.readouterr().out


def test_purity_violation_exits_nonzero(user_module, capsys):
    name = user_module("dirty_fixture_mod", DIRTY_MODULE)
    assert main([name]) == 1
    out = capsys.readouterr().out
    assert "purity.nondeterminism.random" in out
    assert "FAIL" in out


def test_law_violation_exits_nonzero(user_module, capsys):
    name = user_module("mislabeled_fixture_mod", MISLABELED_MODULE)
    assert main([name, "--no-purity"]) == 1
    assert "laws.associativity" in capsys.readouterr().out


def test_rule_gating_flags(user_module):
    name = user_module("dirty_gated_mod", DIRTY_MODULE)
    # the only violation is a purity one; skipping purity makes it pass
    assert main([name, "--no-purity"]) == 0


def test_unimportable_module_exits_two(capsys):
    assert main(["no_such_module_xyz"]) == 2
    assert "cannot import" in capsys.readouterr().err


def test_no_arguments_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


LINT_ONLY = [
    "--self", "--no-laws", "--no-purity", "--no-effects",
    "--no-races", "--no-shared",
]


def test_self_lint_only_passes(capsys):
    # the full --self corpus runs in CI; here just the (fast) lint half
    assert main(LINT_ONLY) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "certificate:" not in out  # both passes gated off: no certs


def test_self_certification_flags(capsys, tmp_path):
    cert_dir = tmp_path / "certs"
    args = [
        "--self", "--no-laws", "--no-purity", "--no-effects", "--no-lint",
        "--certificates", str(cert_dir),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert out.count("parallel-safe") == 5
    assert sorted(p.name for p in cert_dir.glob("*.json")) == [
        "coalescing.json", "folding.json", "randomized.json",
        "rotating.json", "strawman.json",
    ]


def test_sarif_flag_writes_log(capsys, tmp_path):
    import json

    path = tmp_path / "findings.sarif"
    assert main(LINT_ONLY + ["--sarif", str(path)]) == 0
    capsys.readouterr()
    log = json.loads(path.read_text())
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["tool"]["driver"]["name"] == "repro-analysis"


def test_trust_audit_table_printed(capsys):
    assert main(LINT_ONLY) == 0
    assert "trusted marks" in capsys.readouterr().out


def test_module_scan_finds_job_factories(user_module):
    import importlib

    name = user_module("scan_fixture_mod", CLEAN_MODULE)
    module = importlib.import_module(name)
    targets = module_targets(module)
    assert [t.name for t in targets] == ["wordcount_job()"]
    roles = [role for role, _fn in targets[0].functions]
    assert "map" in roles and "combiner.merge" in roles

"""The law harness falsifies mislabeled combiner algebras with concrete
hypothesis counterexamples, and passes every shipped combiner."""

from __future__ import annotations

import pytest

from repro.analysis import check_combiner_laws
from repro.mapreduce.combiners import (
    Combiner,
    ListConcatCombiner,
    MeanCombiner,
    MinCombiner,
    SumCombiner,
    TopKCombiner,
)


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class BadMeanCombiner(SumCombiner):
    """Mean-of-means, deliberately mislabeled as associative.

    merge([a, b]) averages, so merge(merge(a,b),c) weights c at 1/2 while
    merge(a,merge(b,c)) weights a at 1/2 — associativity fails on almost
    any triple with distinct values.  (The honest encoding is
    MeanCombiner's (count, total) pairs.)
    """

    def merge(self, key, values):
        return sum(values) / len(values)


class NotCommutativeConcat(ListConcatCombiner):
    """Concatenation deliberately mislabeled as commutative."""

    commutative = True


class UnstableFingerprint(SumCombiner):
    """Fingerprint depends on object identity — unhashable by design."""

    def fingerprint(self, value):
        return object()


class NegativeSize(SumCombiner):
    """value_size violates non-negativity."""

    def value_size(self, value) -> float:
        return -1.0


class CrashingMerge(SumCombiner):
    """Merge raises — the harness must report, not propagate."""

    def merge(self, key, values):
        raise RuntimeError("boom")


class UnknownDomain(Combiner):
    """No registered leaf strategy and no law_leaves(): warn, don't guess."""

    def merge(self, key, values):
        return values[0]


def test_nonassociative_combiner_is_falsified_with_counterexample():
    findings = check_combiner_laws(BadMeanCombiner())
    associativity = [f for f in findings if f.rule == "laws.associativity"]
    assert associativity, rules_of(findings)
    # The finding carries the concrete hypothesis counterexample.
    message = associativity[0].message
    assert "merge(merge(a,b),c) != merge(a,merge(b,c))" in message
    assert "a=" in message and "b=" in message and "c=" in message
    assert associativity[0].severity == "error"


def test_noncommutative_combiner_is_falsified():
    findings = check_combiner_laws(NotCommutativeConcat())
    assert "laws.commutativity" in rules_of(findings)
    message = next(
        f.message for f in findings if f.rule == "laws.commutativity"
    )
    assert "merge(a,b) != merge(b,a)" in message


def test_unstable_fingerprint_is_caught():
    findings = check_combiner_laws(UnstableFingerprint())
    assert "laws.merge-consistency" in rules_of(findings)


def test_negative_value_size_is_caught():
    findings = check_combiner_laws(NegativeSize())
    assert "laws.cost-sanity" in rules_of(findings)


def test_crashing_merge_reports_instead_of_raising():
    findings = check_combiner_laws(CrashingMerge())
    assert findings, "a crashing merge must surface as findings"
    assert any("crash" in f.message for f in findings)


def test_unknown_domain_warns_once():
    findings = check_combiner_laws(UnknownDomain())
    assert rules_of(findings) == {"laws.no-strategy"}
    assert all(f.severity == "warning" for f in findings)


@pytest.mark.parametrize(
    "combiner",
    [SumCombiner(), MinCombiner(), MeanCombiner(), TopKCombiner(3),
     ListConcatCombiner()],
    ids=lambda c: type(c).__name__,
)
def test_shipped_combiners_pass(combiner):
    findings = check_combiner_laws(combiner, max_examples=25)
    assert findings == [], [f.render() for f in findings]


def test_falsification_is_deterministic():
    # derandomized hypothesis: the same counterexample every run.
    first = check_combiner_laws(BadMeanCombiner())
    second = check_combiner_laws(BadMeanCombiner())
    assert [f.message for f in first] == [f.message for f in second]

"""JobSpec.validate() and negative-path contract rejection across the
tree constructors — errors carry the repo error type and name the job."""

from __future__ import annotations

import pytest

from repro.common.errors import CombinerContractError, ReproError
from repro.core.coalescing import CoalescingTree
from repro.core.folding import FoldingTree
from repro.core.randomized import RandomizedFoldingTree
from repro.core.rotating import RotatingTree
from repro.core.strawman import StrawmanTree
from repro.mapreduce import JobSpec, ListConcatCombiner, SumCombiner
from repro.mapreduce.job import MapReduceJob
from repro.slider.system import Slider, SliderConfig
from repro.slider.window import WindowMode


class NonAssociative(SumCombiner):
    associative = False


class BadMeanCombiner(SumCombiner):
    """Mislabeled: claims associativity but averages."""

    def merge(self, key, values):
        return sum(values) / len(values)


def _map(record):
    yield (0, 1)


def make_job(combiner, name="fixture-job"):
    return JobSpec(name=name, map_fn=_map, combiner=combiner)


# -- JobSpec surface --------------------------------------------------------


def test_jobspec_is_the_mapreducejob():
    assert JobSpec is MapReduceJob


def test_constructor_rejects_nonassociative_naming_the_job():
    with pytest.raises(CombinerContractError, match="'no-assoc'"):
        make_job(NonAssociative(), name="no-assoc")


def test_contract_error_is_a_valueerror():
    # callers written against the original plain-ValueError signature
    with pytest.raises(ValueError):
        make_job(NonAssociative())
    with pytest.raises(ReproError):
        make_job(NonAssociative())


def test_validate_passes_clean_job():
    report = make_job(SumCombiner()).validate(
        check_laws=True, check_purity=True
    )
    assert report.ok


def test_validate_falsifies_mislabeled_combiner_naming_the_job():
    job = make_job(BadMeanCombiner(), name="mean-of-means")
    with pytest.raises(CombinerContractError, match="'mean-of-means'") as excinfo:
        job.validate(check_laws=True)
    assert "associative" in str(excinfo.value)


def test_validate_is_lazy_by_default():
    # without opt-in flags validate is a cheap no-op pass
    report = make_job(SumCombiner()).validate()
    assert report.ok and not report.findings


# -- every tree constructor rejects a non-associative combiner --------------


TREE_CONSTRUCTORS = [
    FoldingTree,
    RandomizedFoldingTree,
    RotatingTree,
    CoalescingTree,
    StrawmanTree,
]


@pytest.mark.parametrize(
    "tree_cls", TREE_CONSTRUCTORS, ids=lambda cls: cls.__name__
)
def test_tree_rejects_nonassociative(tree_cls):
    with pytest.raises(CombinerContractError, match="associative"):
        tree_cls(NonAssociative())


def test_rotating_tree_rejects_noncommutative():
    # ListConcatCombiner is associative but declares commutative = False
    with pytest.raises(CombinerContractError, match="commutative"):
        RotatingTree(ListConcatCombiner())


def test_noncommutative_is_fine_for_order_preserving_trees():
    FoldingTree(ListConcatCombiner())
    CoalescingTree(ListConcatCombiner())
    StrawmanTree(ListConcatCombiner())


# -- the engine names the offending job -------------------------------------


def test_slider_fixed_mode_names_job_on_contract_violation():
    job = make_job(ListConcatCombiner(), name="concat-window")
    with pytest.raises(CombinerContractError) as excinfo:
        Slider(job, WindowMode.FIXED)  # FIXED -> rotating tree
    message = str(excinfo.value)
    assert "'concat-window'" in message
    assert "rotating" in message


def test_slider_explicit_variant_names_job():
    job = make_job(ListConcatCombiner(), name="concat-window")
    config = SliderConfig(mode=WindowMode.VARIABLE, tree="rotating")
    with pytest.raises(CombinerContractError, match="'concat-window'"):
        Slider(job, WindowMode.VARIABLE, config=config)


def test_slider_accepts_noncommutative_in_variable_mode():
    job = make_job(ListConcatCombiner(), name="concat-window")
    Slider(job, WindowMode.VARIABLE)  # folding tree: order-preserving

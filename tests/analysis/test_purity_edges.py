"""Purity-checker edge cases: lambdas in default arguments, comprehension
scoping, walrus assignments, and decorated helpers.

Each case pins down behavior the main suite's one-rule-per-fixture layout
does not exercise: constructs where scoping or source extraction could
plausibly confuse the AST walker into a false positive or a miss."""

from __future__ import annotations

import functools
import random

from repro.analysis import analyze_callable


def rules_of(findings):
    return sorted({f.rule for f in findings})


def errors_of(findings):
    return [f for f in findings if f.severity == "error"]


# -- lambdas in default arguments -------------------------------------------


def _default_lambda_clean(record, key=lambda r: r % 4):
    return [(key(record), 1)]


def _default_lambda_dirty(record, jitter=lambda: random.random()):
    return [(record, jitter())]


def test_clean_lambda_default_is_clean():
    assert errors_of(analyze_callable(_default_lambda_clean)) == []


def test_dirty_lambda_default_is_flagged():
    findings = analyze_callable(_default_lambda_dirty)
    assert any("random" in rule for rule in rules_of(findings))


def test_lambda_value_analyzes_standalone():
    # the lambda expression itself, extracted by line+argcount
    fn = _default_lambda_dirty.__defaults__[0]
    findings = analyze_callable(fn)
    assert any("random" in rule for rule in rules_of(findings))


# -- comprehension scoping ---------------------------------------------------


def _comprehension_shadows_param(records):
    # the comprehension target shadows nothing and leaks nothing (py3
    # scoping); must not be mistaken for a global read or arg mutation
    return [record * 2 for record in records]


def _nested_comprehension(records):
    return {
        key: [value + 1 for value in values]
        for key, values in records
    }


def _comprehension_over_global(records):
    return [r for r in records if r in _LOOKUP]


_LOOKUP = {1, 2, 3}  # module-level; reads are fine, iteration order is not


def _comprehension_orders_set(records):
    return sorted({r for r in records})  # sorting a set comp: deterministic


def test_comprehension_targets_are_local():
    assert errors_of(analyze_callable(_comprehension_shadows_param)) == []


def test_nested_comprehension_is_clean():
    assert errors_of(analyze_callable(_nested_comprehension)) == []


def test_comprehension_membership_against_global_is_clean():
    assert errors_of(analyze_callable(_comprehension_over_global)) == []


def test_sorted_set_comprehension_is_clean():
    # sorting canonicalizes the set's order; must not fire set-order rule
    findings = analyze_callable(_comprehension_orders_set)
    assert errors_of(findings) == []


# -- walrus assignments ------------------------------------------------------


def _walrus_local(records):
    out = []
    for r in records:
        if (doubled := r * 2) > 4:
            out.append(doubled)
    return out


def _walrus_in_comprehension(records):
    return [y for r in records if (y := r + 1) > 0]


def _walrus_feeding_random(records):
    return [(r, x) for r in records if (x := random.random()) > 0.5]


def test_walrus_target_is_local():
    assert errors_of(analyze_callable(_walrus_local)) == []


def test_walrus_in_comprehension_is_local():
    assert errors_of(analyze_callable(_walrus_in_comprehension)) == []


def test_walrus_value_still_checked():
    findings = analyze_callable(_walrus_feeding_random)
    assert any("random" in rule for rule in rules_of(findings))


# -- decorated helpers -------------------------------------------------------


def _passthrough(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


@_passthrough
def _decorated_clean(record):
    return record + 1


@_passthrough
def _decorated_dirty(record):
    return record + random.random()


def _calls_decorated_helper(record):
    return _decorated_dirty(record)


def test_decorated_clean_helper_is_clean():
    assert errors_of(analyze_callable(_decorated_clean)) == []


def test_decorated_dirty_helper_is_flagged():
    # source extraction must see through functools.wraps
    findings = analyze_callable(_decorated_dirty)
    assert any("random" in rule for rule in rules_of(findings))


def test_dirty_decorated_helper_propagates_to_caller():
    findings = analyze_callable(_calls_decorated_helper)
    assert any("random" in rule for rule in rules_of(findings))


def test_partial_of_decorated_function_unwraps():
    bound = functools.partial(_decorated_dirty, 3)
    findings = analyze_callable(bound)
    assert any("random" in rule for rule in rules_of(findings))

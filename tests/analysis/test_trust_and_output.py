"""The trusted-reason lint rule, the stale-trust audit, deterministic
findings output, and the SARIF exporter."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import trusted
from repro.analysis.findings import AnalysisReport, Finding, finalize
from repro.analysis.repolint import lint_file
from repro.analysis.sarif import to_sarif, write_sarif
from repro.analysis.trustaudit import audit_trusted, render_table


def lint_source(tmp_path: Path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path, tmp_path)


def rules_of(findings):
    return [f.rule for f in findings]


# -- lint.trusted-reason -----------------------------------------------------


def test_bare_trusted_decorator_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        @trusted
        def helper():
            return 1
        """,
    )
    assert rules_of(findings) == ["lint.trusted-reason"]


def test_trusted_without_reason_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        @trusted()
        def helper():
            return 1
        """,
    )
    assert rules_of(findings) == ["lint.trusted-reason"]


def test_trusted_empty_reason_fires(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        @trusted(reason="  ")
        def helper():
            return 1
        """,
    )
    assert rules_of(findings) == ["lint.trusted-reason"]


def test_trusted_with_reason_is_clean(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        from repro.analysis import trusted

        @trusted(reason="reads a seeded RngStream")
        def helper():
            return 1
        """,
    )
    assert findings == []


def test_qualified_trusted_is_checked(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import repro.analysis as analysis

        @analysis.trusted
        def helper():
            return 1
        """,
    )
    assert rules_of(findings) == ["lint.trusted-reason"]


def test_other_decorators_ignored(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        @property
        def helper(self):
            return 1
        """,
    )
    assert findings == []


# -- stale-trust audit -------------------------------------------------------

_STATE = {"n": 0}


@trusted(reason="debug print kept on purpose in this fixture")
def _active_mark(record):
    print(record)  # the mark suppresses a real I/O finding
    return record


@trusted(reason="was impure before the 2026 refactor")
def _stale_mark(record):
    return record * 2  # now pure: the mark suppresses nothing


def _unmarked(record):
    return record


def test_active_mark_reported_with_suppressed_rules():
    entries, findings = audit_trusted([("map", _active_mark)])
    assert len(entries) == 1
    assert entries[0].status == "active"
    assert entries[0].suppressed
    assert findings == []


def test_stale_mark_yields_warning():
    entries, findings = audit_trusted([("map", _stale_mark)])
    assert entries[0].status == "stale"
    assert rules_of(findings) == ["lint.stale-trusted"]
    assert findings[0].severity == "warning"


def test_unmarked_functions_skipped():
    entries, findings = audit_trusted([("map", _unmarked)])
    assert entries == [] and findings == []


def test_audit_table_renders_reasons():
    entries, _ = audit_trusted(
        [("map", _active_mark), ("reduce", _stale_mark)]
    )
    table = render_table(entries)
    assert "trusted marks (2):" in table
    assert "[active]" in table and "[stale]" in table
    assert "2026 refactor" in table
    assert render_table([]) == "trusted marks: none"


# -- deterministic findings output -------------------------------------------


def _finding(rule="r.a", where="b.py", line=1, message="m", severity="error"):
    return Finding(
        rule=rule, message=message, where=where, line=line, severity=severity
    )


def test_finalize_sorts_by_location_then_rule():
    scrambled = [
        _finding(where="z.py", line=9),
        _finding(where="a.py", line=5, rule="r.b"),
        _finding(where="a.py", line=5, rule="r.a"),
        _finding(where="a.py", line=2),
    ]
    ordered = finalize(scrambled)
    assert [(f.where, f.line, f.rule) for f in ordered] == [
        ("a.py", 2, "r.a"),
        ("a.py", 5, "r.a"),
        ("a.py", 5, "r.b"),
        ("z.py", 9, "r.a"),
    ]


def test_finalize_deduplicates():
    finding = _finding()
    assert finalize([finding, finding, finding]) == [finding]


def test_report_render_is_deterministic():
    first = AnalysisReport()
    second = AnalysisReport()
    a, b = _finding(where="x.py"), _finding(where="y.py")
    first.extend([a, b, a])
    second.extend([b, a])
    assert first.render(verbose=True) == second.render(verbose=True)
    assert "2 finding(s)" in first.render()


# -- SARIF export ------------------------------------------------------------


def test_sarif_shape():
    log = to_sarif(
        [
            _finding(where="src/repro/x.py", line=7),
            _finding(
                where="job:wordcount", line=None, severity="info", rule="r.i"
            ),
        ]
    )
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analysis"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {"r.a", "r.i"}
    results = run["results"]
    assert len(results) == 2
    by_rule = {r["ruleId"]: r for r in results}
    physical = by_rule["r.a"]["locations"][0]["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "src/repro/x.py"
    assert physical["region"]["startLine"] == 7
    logical = by_rule["r.i"]["locations"][0]["logicalLocations"]
    assert logical == [{"fullyQualifiedName": "job:wordcount"}]
    assert by_rule["r.i"]["level"] == "note"


def test_sarif_file_roundtrip_and_stability(tmp_path):
    findings = [_finding(), _finding(where="a.py", line=3)]
    first, second = tmp_path / "a.sarif", tmp_path / "b.sarif"
    write_sarif(findings, first)
    write_sarif(list(reversed(findings)), second)
    assert first.read_text() == second.read_text()  # order-insensitive
    parsed = json.loads(first.read_text())
    assert parsed["runs"][0]["results"]

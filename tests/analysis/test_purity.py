"""Each purity/determinism rule fires on its intentional-violation fixture,
and stays silent on the clean corpus."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_callable, analyze_functions, is_trusted, trusted
from repro.analysis.findings import INFO

from tests.analysis import purity_fixtures as fx


def rules_of(fn) -> set[str]:
    return {finding.rule for finding in analyze_callable(fn)}


VIOLATIONS = [
    (fx.unseeded_random, "purity.nondeterminism.random"),
    (fx.unseeded_numpy_random, "purity.nondeterminism.random"),
    (fx.reads_clock, "purity.nondeterminism.time"),
    (fx.reads_wallclock_datetime, "purity.nondeterminism.time"),
    (fx.draws_entropy, "purity.nondeterminism.entropy"),
    (fx.draws_secrets, "purity.nondeterminism.entropy"),
    (fx.fresh_uuid, "purity.nondeterminism.entropy"),
    (fx.uses_builtin_hash, "purity.nondeterminism.hash"),
    (fx.uses_id, "purity.nondeterminism.id"),
    (fx.iterates_set, "purity.nondeterminism.iteration-order"),
    (fx.pops_dict_item, "purity.nondeterminism.iteration-order"),
    (fx.writes_global, "purity.impurity.global-write"),
    (fx.mutates_argument, "purity.impurity.arg-mutation"),
    (fx.assigns_into_argument, "purity.impurity.arg-mutation"),
    (fx.does_console_io, "purity.impurity.io"),
    (fx.opens_file, "purity.impurity.io"),
    (fx.shells_out, "purity.impurity.io"),
    (fx.closure_nonlocal_write, "purity.impurity.global-write"),
    (fx.violation_in_helper, "purity.nondeterminism.random"),
]

CLEAN = [
    fx.clean_map,
    fx.clean_seeded_rng,
    fx.clean_stable_hash,
    fx.clean_sorted_set,
    fx.clean_local_mutation,
    fx.clean_seeded_numpy,
]


@pytest.mark.parametrize(
    "fn,rule", VIOLATIONS, ids=[fn.__name__ for fn, _ in VIOLATIONS]
)
def test_rule_fires(fn, rule):
    assert rule in rules_of(fn), (
        f"{fn.__name__} should trigger {rule}, got {rules_of(fn)}"
    )


@pytest.mark.parametrize("fn", CLEAN, ids=[fn.__name__ for fn in CLEAN])
def test_clean_functions_stay_clean(fn):
    findings = analyze_callable(fn)
    assert findings == [], [f.render() for f in findings]


def test_findings_carry_location():
    findings = analyze_callable(fx.unseeded_random)
    assert findings
    finding = findings[0]
    assert finding.where.endswith("unseeded_random")
    assert "purity_fixtures" in finding.location()
    assert finding.line > 0


def test_trusted_suppresses_with_breadcrumb():
    assert is_trusted(fx.trusted_escape_hatch)
    findings = analyze_callable(fx.trusted_escape_hatch)
    assert len(findings) == 1
    assert findings[0].severity == INFO
    assert "audited 2026-08" in findings[0].message


def test_trusted_requires_reason():
    with pytest.raises(ValueError):
        trusted("")
    with pytest.raises(ValueError):
        trusted("   ")


def test_analyze_functions_batches_roles():
    report_findings = analyze_functions(
        [("map", fx.unseeded_random), ("reduce", fx.clean_map)]
    )
    assert all("unseeded_random" in f.where for f in report_findings)


def test_builtin_callables_are_skipped():
    # C-level callables have no AST; the checker must not crash or flag.
    assert analyze_callable(len) == []
    assert analyze_callable(max) == []

"""Shared-state certificates: audit rules on violating values, and the
full certification pass over all five tree variants."""

from __future__ import annotations

import io
import pickle
import threading

import pytest

from repro.analysis.shared import (
    CERTIFIED_VARIANTS,
    ParallelSafetyCertificate,
    audit_value,
    certificate_findings,
    certify_variant,
)


def rules_of(findings):
    return sorted(f.rule for f in findings if f.severity == "error")


class Opaque:
    """Picklable, but its default repr embeds the object address."""


# -- audit rules on violating values ----------------------------------------


def test_plain_data_passes():
    assert audit_value({"a": [1, 2, (3, "x")]}, "fixture") == []


def test_unpicklable_value_flagged():
    assert rules_of(audit_value(lambda x: x, "fixture")) == [
        "shared.unpicklable"
    ]


def test_open_file_is_process_local():
    rules = rules_of(audit_value(io.StringIO("x"), "fixture"))
    assert "shared.process-local" in rules


def test_nested_handle_found():
    payload = {"results": [{"log": io.BytesIO(b"")}]}
    rules = rules_of(audit_value(payload, "fixture"))
    assert "shared.process-local" in rules


def test_lock_inside_object_found():
    class Holder:
        def __init__(self):
            self.guard = threading.Lock()

    rules = rules_of(audit_value(Holder(), "fixture"))
    assert "shared.process-local" in rules


def test_generator_is_process_local():
    gen = (i for i in range(3))
    rules = rules_of(audit_value({"cursor": gen}, "fixture"))
    assert "shared.process-local" in rules


def test_default_repr_is_identity_dependent():
    assert rules_of(audit_value(Opaque(), "fixture")) == ["shared.identity"]


def test_identity_insensitive_audit_allows_default_repr():
    assert audit_value(Opaque(), "fixture", identity_sensitive=False) == []


def test_unstable_fingerprint_flagged():
    findings = audit_value(
        (1, 2, 3), "fixture", fingerprint=lambda value: id(value)
    )
    assert rules_of(findings) == ["shared.identity"]


def test_stable_fingerprint_passes():
    findings = audit_value(
        (1, 2, 3), "fixture", fingerprint=lambda value: hash(value)
    )
    assert findings == []


def test_findings_carry_where():
    findings = audit_value(lambda: None, "variant:memo:0xbeef")
    assert findings[0].where == "variant:memo:0xbeef"


# -- certificates ------------------------------------------------------------


@pytest.mark.parametrize("variant,mode", CERTIFIED_VARIANTS)
def test_variant_certifies_parallel_safe(variant, mode):
    cert = certify_variant(variant, mode, advances=2)
    assert cert.verdict == "parallel-safe", [
        f.render() for f in cert.errors
    ]
    assert cert.runs == 3
    assert cert.steps_analyzed > 0
    assert cert.values_audited > 0
    assert cert.checks["effects"]["errors"] == 0
    assert cert.checks["races"]["errors"] == 0
    assert cert.checks["shared"]["errors"] == 0


def test_certificate_dict_is_machine_readable():
    cert = certify_variant("folding", "variable", advances=1)
    payload = cert.to_dict()
    assert payload["schema"].startswith("parallel-safety-certificate/")
    assert payload["verdict"] == "parallel-safe"
    assert set(payload["checks"]) == {"effects", "races", "shared"}
    # the certificate itself must cross a process boundary
    assert pickle.loads(pickle.dumps(payload)) == payload
    import json

    json.dumps(payload)  # and serialize to JSON for artifact upload


def test_unsafe_certificate_yields_summary_error():
    from repro.analysis.findings import ERROR, Finding

    cert = ParallelSafetyCertificate(
        variant="folding", mode="variable", job="j"
    )
    cert.findings.append(
        Finding(
            rule="shared.unpicklable",
            message="x",
            where="fixture",
            severity=ERROR,
        )
    )
    findings = certificate_findings([cert])
    assert "certificate.unsafe" in rules_of(findings)


def test_safe_certificates_yield_no_errors():
    cert = ParallelSafetyCertificate(
        variant="folding", mode="variable", job="j"
    )
    assert certificate_findings([cert]) == []
